//! Umbrella crate for the SC'98 "Pthreads for Dynamic and Irregular
//! Parallelism" reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! integration tests (`tests/`); the substance lives in the member crates:
//!
//! * [`ptdf`] — the space-efficient Pthreads-style runtime (the paper's
//!   contribution) over a deterministic virtual-time SMP.
//! * [`ptdf_fiber`] — stackful coroutines with hand-written context
//!   switching.
//! * [`ptdf_smp`] — the virtual machine model (cost model, caches, memory
//!   system, lock contention).
//! * [`ptdf_dag`] — abstract fork-join graph analysis (Figure 1, space
//!   bounds).
//! * [`ptdf_apps`] — the seven parallel benchmarks.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured results.

pub use ptdf;
pub use ptdf_apps;
pub use ptdf_dag;
pub use ptdf_fiber;
pub use ptdf_smp;
