#!/usr/bin/env bash
# Regenerates every table and figure of the SC'98 reproduction.
#
# Usage:
#   ./repro.sh          # scaled-down sizes (minutes)
#   ./repro.sh --full   # the paper's problem sizes (tens of minutes)
#
# Output: text tables on stdout and CSVs under target/experiments/.

set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "--full" ]]; then
    export REPRO_FULL=1
    echo "== full (paper-size) reproduction =="
else
    echo "== scaled-down reproduction (pass --full for the paper's sizes) =="
fi

benches=(
    fig01_graph
    fig03_overheads
    fig05_matmul_native
    fig06_breakdown
    fig07_matmul_sched
    fig08_table
    fig09_memory
    fig10_fft
    fig11_granularity
    ablate_quota
    ablate_stealing
    ablate_sensitivity
    scale16
)

cargo build --release --benches -p ptdf-bench

for b in "${benches[@]}"; do
    echo
    echo "##### $b"
    cargo bench -q -p ptdf-bench --bench "$b"
done

echo
echo "##### plot_figures"
cargo bench -q -p ptdf-bench --bench plot_figures

echo
echo "All CSVs and SVG figures are in target/experiments/. See EXPERIMENTS.md"
echo "for the paper-vs-measured record."
