//! Tracked memory allocation: the reproduction of the paper's instrumented
//! `malloc`/`free` (§4 item 2).
//!
//! Applications route their significant allocations through [`rt_alloc`] /
//! [`rt_free`] (or the RAII [`TrackedBuf`]). In a runtime with the DF
//! policy, allocations are charged against the current thread's per-quantum
//! memory quota `K`:
//!
//! * an allocation that drives the quota to (or below) zero **preempts** the
//!   thread — it re-enters the ready queue at its depth-first position and
//!   receives a fresh quota on its next dispatch;
//! * an allocation of `m > K` bytes first inserts `δ = ⌈m/K⌉` no-op *dummy
//!   threads* to the left of the allocating thread, so that the processors
//!   must burn `δ` scheduling quanta (giving leftward, serially-earlier
//!   threads a chance to run) before the large allocation proceeds.
//!
//! The paper forks the dummies as a binary tree (the Pthreads interface only
//! has binary fork); this reproduction inserts them directly as `δ` sibling
//! entries, which preserves the throttle (δ quanta of scheduler work) while
//! charging all creation costs to the allocating thread. See DESIGN.md.

use std::collections::HashMap;
use std::fmt;

use ptdf_smp::Prng;

use crate::runtime::{suspend_current, with_active, ActiveCtx};
use crate::thread::YieldReason;

// ---------------------------------------------------------------------------
// Allocation ledger
// ---------------------------------------------------------------------------

/// Per-thread slice of the allocation ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ThreadLedger {
    /// Thread id (the `ThreadId`'s raw value).
    pub thread: u32,
    /// Bytes this thread allocated via `rt_alloc`.
    pub allocated: u64,
    /// Bytes this thread freed via `rt_free`.
    pub freed: u64,
    /// TLS slot bytes currently attributed to this thread.
    pub tls_bytes: u64,
}

/// End-of-run summary of the allocation ledger: what leaked, what
/// double-freed, and what the failure injector did. Available on
/// [`crate::Report::leaks`] when the run was configured with
/// [`crate::Config::with_ledger`].
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LeakReport {
    /// Total bytes allocated through `rt_alloc` over the run.
    pub total_allocated: u64,
    /// Total bytes freed through `rt_free` over the run.
    pub total_freed: u64,
    /// Bytes allocated but never freed (`0` in a leak-free run).
    pub leaked_bytes: u64,
    /// TLS bytes still attributed at run end (`0` once every thread's slots
    /// were destroyed at exit).
    pub tls_leaked_bytes: u64,
    /// Frees that underflowed the machine's live byte count — double frees.
    pub free_underflows: u64,
    /// Allocation failures injected by the seeded failure injector.
    pub injected_failures: u64,
    /// Threads with a non-zero net balance (allocated ≠ freed or resident
    /// TLS bytes), sorted by thread id. Cross-thread handoff (one thread
    /// allocates, another frees) legitimately produces entries here; the
    /// run-level totals above are the leak verdict.
    pub per_thread: Vec<ThreadLedger>,
}

impl LeakReport {
    /// True when nothing leaked and nothing double-freed.
    pub fn is_clean(&self) -> bool {
        self.leaked_bytes == 0 && self.tls_leaked_bytes == 0 && self.free_underflows == 0
    }
}

/// The allocation ledger: exact, per-thread attribution of tracked memory,
/// plus the seeded allocation-failure injector. Owned by the runtime when
/// armed via [`crate::Config::with_ledger`]; replaces "a bare counter" with
/// accounting that can name the thread behind every leaked byte.
#[derive(Debug)]
pub(crate) struct Ledger {
    per_thread: HashMap<u32, ThreadLedger>,
    total_allocated: u64,
    total_freed: u64,
    total_tls: u64,
    injector: Option<Injector>,
}

#[derive(Debug)]
struct Injector {
    prng: Prng,
    rate: u64,
    injected: u64,
}

impl Ledger {
    /// A ledger; `fail` = `(seed, rate)` arms the failure injector.
    pub(crate) fn new(fail: Option<(u64, u64)>) -> Self {
        Ledger {
            per_thread: HashMap::new(),
            total_allocated: 0,
            total_freed: 0,
            total_tls: 0,
            injector: fail.map(|(seed, rate)| Injector {
                prng: Prng::new(seed ^ 0x1ED6_E20F_A117_B17E),
                rate,
                injected: 0,
            }),
        }
    }

    fn entry(&mut self, thread: u32) -> &mut ThreadLedger {
        self.per_thread.entry(thread).or_insert(ThreadLedger {
            thread,
            ..ThreadLedger::default()
        })
    }

    pub(crate) fn charge_alloc(&mut self, thread: u32, bytes: u64) {
        self.total_allocated += bytes;
        self.entry(thread).allocated += bytes;
    }

    pub(crate) fn charge_free(&mut self, thread: u32, bytes: u64) {
        self.total_freed += bytes;
        self.entry(thread).freed += bytes;
    }

    pub(crate) fn charge_tls(&mut self, thread: u32, bytes: u64) {
        self.total_tls += bytes;
        self.entry(thread).tls_bytes += bytes;
    }

    pub(crate) fn release_tls(&mut self, thread: u32, bytes: u64) {
        self.total_tls = self.total_tls.saturating_sub(bytes);
        let e = self.entry(thread);
        e.tls_bytes = e.tls_bytes.saturating_sub(bytes);
    }

    /// Consults the failure injector for one fallible allocation request.
    /// Returns `true` when the request must fail.
    pub(crate) fn should_fail(&mut self) -> bool {
        match self.injector.as_mut() {
            Some(inj) => {
                let fail = inj.prng.chance(1, inj.rate);
                if fail {
                    inj.injected += 1;
                }
                fail
            }
            None => false,
        }
    }

    /// Builds the end-of-run report; `free_underflows` comes from the
    /// machine's checked-free counter.
    pub(crate) fn report(&self, free_underflows: u64) -> LeakReport {
        let mut per_thread: Vec<ThreadLedger> = self
            .per_thread
            .values()
            .filter(|t| t.allocated != t.freed || t.tls_bytes != 0)
            .copied()
            .collect();
        per_thread.sort_by_key(|t| t.thread);
        LeakReport {
            total_allocated: self.total_allocated,
            total_freed: self.total_freed,
            leaked_bytes: self.total_allocated.saturating_sub(self.total_freed),
            tls_leaked_bytes: self.total_tls,
            free_underflows,
            injected_failures: self.injector.as_ref().map_or(0, |i| i.injected),
            per_thread,
        }
    }
}

/// Error returned by [`try_rt_alloc`] when the seeded failure injector
/// rejects the request (modelling `malloc` returning `NULL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Requested size in bytes.
    pub bytes: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allocation of {} bytes failed (injected)", self.bytes)
    }
}

impl std::error::Error for AllocError {}

/// Registers an allocation of `bytes` with the active context, charging
/// allocation costs and enforcing the DF memory quota. Returns after the
/// (possibly delayed) allocation is accounted.
pub fn rt_alloc(bytes: u64) {
    let rc = match with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => Some(rc.clone()),
        Some(ActiveCtx::Serial(rc)) => {
            rc.borrow_mut().machine.alloc(0, bytes);
            None
        }
        None => None,
    }) {
        Some(rc) => rc,
        None => return,
    };

    // Quota enforcement (DF policy only).
    let quota = rc.borrow().policy.quota();
    if let Some(k) = quota {
        if bytes > k {
            // Large allocation: insert δ = ⌈bytes/K⌉ dummy threads at our
            // depth-first position and preempt; the allocation proceeds on
            // redispatch. The dummies are forked lazily as a binary tree
            // (the Pthreads interface only has binary fork, §4 item 2), so
            // only O(log δ) of them are live at once per processor.
            let delta = bytes.div_ceil(k.max(1));
            {
                let mut inner = rc.borrow_mut();
                // Lenient on context: an allocating destructor during stall
                // teardown has no current thread; skip the bookkeeping.
                let Some((cur, p)) = inner.cur else {
                    return;
                };
                if inner.trace.is_some() {
                    let at = inner.machine.clock(p);
                    let tr = inner.trace.as_mut().expect("checked");
                    tr.event(
                        at,
                        p,
                        Some(cur.0),
                        crate::trace::EventKind::DummyInsert { count: delta },
                    );
                }
                inner.create_dummy_tree(cur, p, delta);
            }
            suspend_current(&rc, YieldReason::Preempted);
        }
    }

    let over_quota = {
        let mut inner = rc.borrow_mut();
        let Some((cur, p)) = inner.cur else {
            return;
        };
        inner.machine.alloc(p, bytes);
        if let Some(ledger) = inner.ledger.as_mut() {
            ledger.charge_alloc(cur.0, bytes);
        }
        if quota.is_some() {
            let t = &mut inner.threads[cur.index()];
            t.quota -= bytes as i64;
            t.quota <= 0
        } else {
            false
        }
    };
    if over_quota {
        // "When the counter reaches zero, the thread is preempted."
        suspend_current(&rc, YieldReason::Preempted);
    } else {
        crate::runtime::maybe_timeslice(&rc);
    }
}

/// Registers a free of `bytes` with the active context.
///
/// A free of more bytes than are live (a double free in the modelled
/// program) is no longer silently saturated away: the machine counts it
/// into `MemStats::free_underflows`, records a trace event (surfaced as a
/// violation by [`crate::check_trace`]), and the leak report shows it.
pub fn rt_free(bytes: u64) {
    with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => {
            // During engine teardown (forced unwind) the context may be
            // mid-borrow; skip accounting rather than double-panic.
            if let Ok(mut inner) = rc.try_borrow_mut() {
                if let Some((cur, p)) = inner.cur {
                    let _underflow = inner.machine.free(p, bytes);
                    if let Some(ledger) = inner.ledger.as_mut() {
                        ledger.charge_free(cur.0, bytes);
                    }
                }
            }
        }
        Some(ActiveCtx::Serial(rc)) => {
            let _ = rc.borrow_mut().machine.free(0, bytes);
        }
        None => {}
    });
}

/// Fallible variant of [`rt_alloc`]: consults the run's seeded failure
/// injector ([`crate::Config::with_alloc_failures`]) before accounting.
/// Returns `Err` without charging anything when the injector rejects the
/// request; otherwise behaves exactly like [`rt_alloc`]. Without an armed
/// injector this never fails.
pub fn try_rt_alloc(bytes: u64) -> Result<(), AllocError> {
    let fail = with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => rc
            .borrow_mut()
            .ledger
            .as_mut()
            .is_some_and(Ledger::should_fail),
        _ => false,
    });
    if fail {
        return Err(AllocError { bytes });
    }
    rt_alloc(bytes);
    Ok(())
}

/// A heap buffer whose size is tracked by the active run's memory model.
///
/// The buffer is a real `Vec<T>` (the benchmarks compute real results in
/// it); construction charges `rt_alloc(len * size_of::<T>())` and drop
/// charges the matching `rt_free`.
#[derive(Debug)]
pub struct TrackedBuf<T> {
    data: Vec<T>,
    bytes: u64,
}

impl<T> TrackedBuf<T> {
    /// Tracks an existing vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        let bytes = (data.capacity() * std::mem::size_of::<T>()) as u64;
        rt_alloc(bytes);
        TrackedBuf { data, bytes }
    }

    /// Allocates `n` copies of `value`.
    pub fn filled(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        Self::from_vec(vec![value; n])
    }

    /// Allocates `n` default-valued elements.
    pub fn zeroed(n: usize) -> Self
    where
        T: Default + Clone,
    {
        Self::filled(T::default(), n)
    }

    /// Tracked size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Consumes the buffer, releasing the tracking, and returns the vector.
    pub fn into_vec(mut self) -> Vec<T> {
        rt_free(self.bytes);
        self.bytes = 0;
        std::mem::take(&mut self.data)
    }
}

impl<T> std::ops::Deref for TrackedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for TrackedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for TrackedBuf<T> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            rt_free(self.bytes);
        }
    }
}
