//! Tracked memory allocation: the reproduction of the paper's instrumented
//! `malloc`/`free` (§4 item 2).
//!
//! Applications route their significant allocations through [`rt_alloc`] /
//! [`rt_free`] (or the RAII [`TrackedBuf`]). In a runtime with the DF
//! policy, allocations are charged against the current thread's per-quantum
//! memory quota `K`:
//!
//! * an allocation that drives the quota to (or below) zero **preempts** the
//!   thread — it re-enters the ready queue at its depth-first position and
//!   receives a fresh quota on its next dispatch;
//! * an allocation of `m > K` bytes first inserts `δ = ⌈m/K⌉` no-op *dummy
//!   threads* to the left of the allocating thread, so that the processors
//!   must burn `δ` scheduling quanta (giving leftward, serially-earlier
//!   threads a chance to run) before the large allocation proceeds.
//!
//! The paper forks the dummies as a binary tree (the Pthreads interface only
//! has binary fork); this reproduction inserts them directly as `δ` sibling
//! entries, which preserves the throttle (δ quanta of scheduler work) while
//! charging all creation costs to the allocating thread. See DESIGN.md.

use crate::runtime::{suspend_current, with_active, ActiveCtx};
use crate::thread::YieldReason;

/// Registers an allocation of `bytes` with the active context, charging
/// allocation costs and enforcing the DF memory quota. Returns after the
/// (possibly delayed) allocation is accounted.
pub fn rt_alloc(bytes: u64) {
    let rc = match with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => Some(rc.clone()),
        Some(ActiveCtx::Serial(rc)) => {
            rc.borrow_mut().machine.alloc(0, bytes);
            None
        }
        None => None,
    }) {
        Some(rc) => rc,
        None => return,
    };

    // Quota enforcement (DF policy only).
    let quota = rc.borrow().policy.quota();
    if let Some(k) = quota {
        if bytes > k {
            // Large allocation: insert δ = ⌈bytes/K⌉ dummy threads at our
            // depth-first position and preempt; the allocation proceeds on
            // redispatch. The dummies are forked lazily as a binary tree
            // (the Pthreads interface only has binary fork, §4 item 2), so
            // only O(log δ) of them are live at once per processor.
            let delta = bytes.div_ceil(k.max(1));
            {
                let mut inner = rc.borrow_mut();
                let (cur, p) = inner.cur.expect("rt_alloc outside a thread");
                if inner.trace.is_some() {
                    let at = inner.machine.clock(p);
                    let tr = inner.trace.as_mut().expect("checked");
                    tr.event(
                        at,
                        p,
                        Some(cur.0),
                        crate::trace::EventKind::DummyInsert { count: delta },
                    );
                }
                inner.create_dummy_tree(cur, p, delta);
            }
            suspend_current(&rc, YieldReason::Preempted);
        }
    }

    let over_quota = {
        let mut inner = rc.borrow_mut();
        let (cur, p) = inner.cur.expect("rt_alloc outside a thread");
        inner.machine.alloc(p, bytes);
        if quota.is_some() {
            let t = &mut inner.threads[cur.index()];
            t.quota -= bytes as i64;
            t.quota <= 0
        } else {
            false
        }
    };
    if over_quota {
        // "When the counter reaches zero, the thread is preempted."
        suspend_current(&rc, YieldReason::Preempted);
    } else {
        crate::runtime::maybe_timeslice(&rc);
    }
}

/// Registers a free of `bytes` with the active context.
pub fn rt_free(bytes: u64) {
    with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => {
            // During engine teardown (forced unwind) the context may be
            // mid-borrow; skip accounting rather than double-panic.
            if let Ok(mut inner) = rc.try_borrow_mut() {
                if let Some((_, p)) = inner.cur {
                    inner.machine.free(p, bytes);
                }
            }
        }
        Some(ActiveCtx::Serial(rc)) => rc.borrow_mut().machine.free(0, bytes),
        None => {}
    });
}

/// A heap buffer whose size is tracked by the active run's memory model.
///
/// The buffer is a real `Vec<T>` (the benchmarks compute real results in
/// it); construction charges `rt_alloc(len * size_of::<T>())` and drop
/// charges the matching `rt_free`.
#[derive(Debug)]
pub struct TrackedBuf<T> {
    data: Vec<T>,
    bytes: u64,
}

impl<T> TrackedBuf<T> {
    /// Tracks an existing vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        let bytes = (data.capacity() * std::mem::size_of::<T>()) as u64;
        rt_alloc(bytes);
        TrackedBuf { data, bytes }
    }

    /// Allocates `n` copies of `value`.
    pub fn filled(value: T, n: usize) -> Self
    where
        T: Clone,
    {
        Self::from_vec(vec![value; n])
    }

    /// Allocates `n` default-valued elements.
    pub fn zeroed(n: usize) -> Self
    where
        T: Default + Clone,
    {
        Self::filled(T::default(), n)
    }

    /// Tracked size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Consumes the buffer, releasing the tracking, and returns the vector.
    pub fn into_vec(mut self) -> Vec<T> {
        rt_free(self.bytes);
        self.bytes = 0;
        std::mem::take(&mut self.data)
    }
}

impl<T> std::ops::Deref for TrackedBuf<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        &self.data
    }
}

impl<T> std::ops::DerefMut for TrackedBuf<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for TrackedBuf<T> {
    fn drop(&mut self) {
        if self.bytes > 0 {
            rt_free(self.bytes);
        }
    }
}
