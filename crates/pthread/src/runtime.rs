//! The execution engine: drives fibers over the virtual SMP under the
//! selected scheduling policy.
//!
//! The engine is a conservative discrete-event simulation. All fibers run on
//! the single host thread, but each is dispatched on behalf of a *virtual
//! processor* whose clock advances by modelled costs. The engine always
//! dispatches on the processor with the smallest clock, and every scheduler
//! entry carries the virtual time at which it was published, so causality
//! holds: a processor never consumes an event from its own future.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::rc::Rc;

use ptdf_fiber::{Coroutine, ForcedUnwind, Stack, StackPool, Step};
use ptdf_smp::{Machine, Prng, ProcId, VirtTime};

use crate::config::{Attr, Config, SchedKind};
use crate::mem::Ledger;
use crate::report::Report;
use crate::sched::{make_policy, Policy, Pop};
use crate::sentinel::{DeadlockError, DeadlockInfo, RunError, StallInfo, StalledThread};
use crate::thread::{
    Fiber, JoinError, JoinHandle, Kind, Slot, TState, Tcb, ThreadId, Wait, YieldReason,
};
use crate::trace::{BlockReason, EventKind, Trace, TraceMeta};

/// A TLS-destructor hook: called with an exiting thread's id, it drops the
/// thread's slot in one [`crate::TlsKey`]'s map and returns the released
/// byte count (pthread TSD-destructor semantics). Registered lazily, once
/// per key per run; holds only the key's own map, never the runtime.
pub(crate) type TlsCleaner = Box<dyn Fn(ThreadId) -> u64>;

/// Runtime internals; shared between the engine loop and the API functions
/// (via the thread-local [`ActiveCtx`]).
pub(crate) struct Inner {
    pub machine: Machine,
    pub policy: Box<dyn Policy>,
    pub threads: Vec<Tcb>,
    /// Direct-handoff slot per processor: a preempt-on-fork child
    /// (`resume = false`, full dispatch) or a time-sliced fiber
    /// (`resume = true`, cost-free continuation).
    pub handoff: Vec<Option<(ThreadId, bool)>>,
    /// Processors that found the scheduler empty; woken on publish.
    pub parked: Vec<bool>,
    /// Live (non-exited) threads of any kind.
    pub live: usize,
    /// Currently executing (thread, processor); set before each resume.
    pub cur: Option<(ThreadId, ProcId)>,
    pub default_stack: u64,
    pub fiber_stack: usize,
    /// Flight-recorder trace, when enabled. Every hook below tests this
    /// `Option`'s discriminant and nothing else when tracing is off.
    pub trace: Option<Trace>,
    /// Runtime half of the host-phase profiler, when armed
    /// ([`Config::with_host_profile`]): sched-pop, dispatch and trace-alloc
    /// timings. The machine half (heap/charge/lock) lives in
    /// [`Machine`]; both are folded into `RunStats::host_phase` at the end
    /// of the run. One `Option` discriminant test per hook when off.
    host_prof: Option<Box<ptdf_smp::HostPhaseStats>>,
    /// Engine-level schedule perturbation stream, when enabled
    /// ([`Config::perturb_seed`]): same-timestamp tie-breaks, wake-order
    /// shuffles, and injected preemptions all draw from this generator, so
    /// one seed fixes the whole explored schedule.
    pub perturb: Option<Prng>,
    /// Recycles real (host) fiber stacks across spawns; see
    /// `ptdf_fiber::StackPool`. Completed fibers return their stack here and
    /// the next spawn reuses it, canary re-armed.
    pub stack_pool: StackPool,
    /// Allocation ledger, when armed ([`Config::with_ledger`]).
    pub ledger: Option<Ledger>,
    /// TLS-destructor hooks, one per [`crate::TlsKey`] touched this run.
    pub tls_cleaners: Vec<TlsCleaner>,
    /// This run's identity for lazy TLS-cleaner registration (keys outlive
    /// runs, so each key re-registers once per run).
    pub run_token: u64,
    /// Next per-run sync-object id (assigned lazily at an object's first
    /// engine interaction, so ids are dense and engine-order deterministic).
    next_sync_id: u32,
    /// Waits-for cycles detected so far (delivered via [`Report::deadlocks`]).
    pub deadlocks: Vec<DeadlockInfo>,
    /// Current holders of each *contended* sync object, published by the
    /// primitives at block/handoff time only — the uncontended fast path
    /// never touches this map, keeping sentinel bookkeeping off the hot
    /// path. An entry exists exactly while the object has queued waiters.
    holders: HashMap<u32, Vec<ThreadId>>,
    /// Chaos fault-injection stream, when armed ([`Config::with_chaos`]):
    /// lock-holder preemption storms, delayed wake delivery and spurious
    /// condvar wakeups all draw from this generator.
    pub chaos: Option<Prng>,
}

/// What kind of execution context the calling code is inside.
pub(crate) enum ActiveCtx {
    /// Inside `Runtime`-driven parallel execution.
    Par(Rc<RefCell<Inner>>),
    /// Inside a `run_serial` baseline execution.
    Serial(Rc<RefCell<crate::serial::SerialCtx>>),
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveCtx>> = const { RefCell::new(None) };
}

/// Runs `f` with the active context (if any).
pub(crate) fn with_active<R>(f: impl FnOnce(Option<&ActiveCtx>) -> R) -> R {
    ACTIVE.with(|a| f(a.borrow().as_ref()))
}

struct TlsGuard;

impl Drop for TlsGuard {
    fn drop(&mut self) {
        ACTIVE.with(|a| *a.borrow_mut() = None);
    }
}

fn install(ctx: ActiveCtx) -> TlsGuard {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        assert!(
            slot.is_none(),
            "ptdf runtime is not reentrant: run()/run_serial() called from \
             inside an active run"
        );
        *slot = Some(ctx);
    });
    TlsGuard
}

pub(crate) fn install_serial(ctx: Rc<RefCell<crate::serial::SerialCtx>>) -> impl Drop {
    install(ActiveCtx::Serial(ctx))
}

impl Inner {
    fn new(config: &Config) -> Self {
        let mut machine =
            Machine::new(config.processors, config.cost.clone(), config.default_stack);
        if config.trace {
            machine.enable_recording(config.trace_alloc_threshold);
        }
        if let Some(seed) = config.perturb_seed {
            machine.enable_perturbation(seed);
        }
        if let Some(limit) = config.space_bound {
            machine.arm_space_bound(limit);
        }
        if config.host_profile {
            machine.enable_host_profile();
        }
        static RUN_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        Inner {
            machine,
            policy: make_policy(config),
            threads: Vec::new(),
            handoff: vec![None; config.processors],
            parked: vec![false; config.processors],
            live: 0,
            cur: None,
            default_stack: config.default_stack,
            fiber_stack: config.fiber_stack,
            trace: config.trace.then(|| {
                Trace::new(TraceMeta {
                    scheduler: config.scheduler.name().to_string(),
                    processors: config.processors,
                    default_stack: config.default_stack,
                    quota: matches!(
                        config.scheduler,
                        SchedKind::Df | SchedKind::DfLocal | SchedKind::DfDeques
                    )
                    .then_some(config.quota),
                    perturb_seed: config.perturb_seed,
                    chaos_seed: config.chaos_seed,
                })
            }),
            // Distinct stream from the machine-level jitter generator: the
            // engine draws at different points than the cost model, and
            // xoring a constant keeps the two sequences uncorrelated.
            perturb: config
                .perturb_seed
                .map(|s| Prng::new(s ^ 0x0051_CED0_5EED_F00D)),
            host_prof: config.host_profile.then(|| {
                Box::new(ptdf_smp::HostPhaseStats {
                    enabled: true,
                    ..ptdf_smp::HostPhaseStats::default()
                })
            }),
            stack_pool: StackPool::new(config.stack_pool_cap),
            ledger: config
                .ledger
                .then(|| Ledger::new(config.alloc_fail_rate.map(|r| (config.seed, r)))),
            tls_cleaners: Vec::new(),
            run_token: RUN_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            next_sync_id: 0,
            deadlocks: Vec::new(),
            holders: HashMap::new(),
            // Distinct stream from both perturbation generators, for the
            // same decorrelation reason.
            chaos: config
                .chaos_seed
                .map(|s| Prng::new(s ^ 0xC4A0_5F00_D5EE_D001)),
        }
    }

    /// Opens a host-phase timing window iff the profiler is armed
    /// ([`Config::with_host_profile`]); one `Option` discriminant test and
    /// no clock read when off.
    fn prof_start(&self) -> Option<std::time::Instant> {
        self.host_prof.is_some().then(std::time::Instant::now)
    }

    /// Closes a window opened by [`Inner::prof_start`] into one phase of
    /// the runtime half of the profile.
    fn prof_close(
        &mut self,
        t0: Option<std::time::Instant>,
        phase: fn(&mut ptdf_smp::HostPhaseStats) -> &mut ptdf_smp::PhaseStat,
    ) {
        if let (Some(t0), Some(hp)) = (t0, self.host_prof.as_deref_mut()) {
            phase(hp).record(t0);
        }
    }

    /// Hands out a host stack for a new fiber, recycling through the pool.
    pub fn acquire_fiber_stack(&mut self) -> Stack {
        let stack = self.stack_pool.acquire(self.fiber_stack);
        self.sample_pool_cached();
        stack
    }

    /// Returns a completed fiber's host stack to the pool.
    fn recycle_fiber_stack(&mut self, stack: Stack) {
        self.stack_pool.release(stack);
        self.sample_pool_cached();
    }

    /// Samples the pool's cached-byte count into the flight recorder, so the
    /// `host_pool_cached` track shows recycling behaviour over virtual time.
    fn sample_pool_cached(&mut self) {
        if self.trace.is_none() {
            return;
        }
        let at = match self.cur {
            Some((_, p)) => self.machine.clock(p),
            None => self.machine.clock(0),
        };
        let bytes = self.stack_pool.stats().cached_bytes;
        self.trace
            .as_mut()
            .expect("checked")
            .sample_pool_cached(at, bytes);
    }

    fn tcb(&mut self, t: ThreadId) -> &mut Tcb {
        &mut self.threads[t.index()]
    }

    /// Charges one scheduler-queue operation on `p` (global lock for
    /// serialized policies, local cost otherwise).
    pub fn sched_op(&mut self, p: ProcId) {
        if self.policy.global_lock() {
            self.machine.sched_lock(p);
        } else {
            let cs = self.machine.cost().sched_cs;
            self.machine
                .charge(p, ptdf_smp::Bucket::SchedCs, cs);
        }
    }

    /// Wakes one parked processor for an event published at time `at`
    /// (wake-one semantics, like an OS run queue: each published entry wakes
    /// one waiter; waking everyone would model a thundering herd on the
    /// scheduler lock that real schedulers avoid).
    fn unpark(&mut self, at: VirtTime) {
        let victim = (0..self.parked.len())
            .filter(|&q| self.parked[q])
            .min_by_key(|&q| self.machine.clock(q));
        if let Some(q) = victim {
            let q = self.perturb_tie_break(q, |inner, r| inner.parked[r]);
            self.parked[q] = false;
            self.machine.idle_until(q, at);
        }
    }

    /// Under perturbation, re-picks uniformly among the processors tied with
    /// `best` at its clock value (and admitted by `eligible`); the plain
    /// engine always breaks ties toward the lowest index, which hides any
    /// schedule that needs the other order.
    fn perturb_tie_break(
        &mut self,
        best: ProcId,
        eligible: impl Fn(&Inner, ProcId) -> bool,
    ) -> ProcId {
        if self.perturb.is_none() {
            return best;
        }
        let t = self.machine.clock(best);
        let ties: Vec<ProcId> = (0..self.parked.len())
            .filter(|&q| eligible(self, q) && self.machine.clock(q) == t)
            .collect();
        if ties.len() <= 1 {
            return best;
        }
        let prng = self.perturb.as_mut().expect("checked");
        ties[prng.below(ties.len() as u64) as usize]
    }

    /// Shuffles a multi-thread wake batch when perturbation is on: delivery
    /// order of simultaneous wakes is a genuine schedule degree of freedom
    /// (barrier release, `notify_all`, rwlock reader admission).
    pub fn shuffle_wake_order(&mut self, batch: &mut [ThreadId]) {
        if let Some(prng) = self.perturb.as_mut() {
            prng.shuffle(batch);
        }
    }

    /// Allocates a per-run sync-object id (dense, engine-order stable).
    pub fn alloc_sync_id(&mut self) -> u32 {
        let id = self.next_sync_id;
        self.next_sync_id += 1;
        id
    }

    /// Lazily assigns a per-run id to a sync object at its first engine
    /// interaction, memoized in the object's `cell`.
    pub fn sync_id_for(&mut self, cell: &std::cell::Cell<Option<u32>>) -> u32 {
        match cell.get() {
            Some(id) => id,
            None => {
                let id = self.alloc_sync_id();
                cell.set(Some(id));
                id
            }
        }
    }

    /// Records a wake-capable sync operation — notify, post, lock handoff,
    /// barrier completion — with what the primitive observed and claimed
    /// atomically. The happens-before checker ([`crate::check_trace`]) uses
    /// these to catch lost notifies without reconstructing wait-list state
    /// from interleaved per-processor timestamps.
    pub fn note_sync(&mut self, reason: BlockReason, obj: u32, waiters: u64, woken: u64) {
        if self.trace.is_none() {
            return;
        }
        // Lenient on context: stall-teardown destructors release primitives
        // with no current thread; their bookkeeping is best-effort.
        let Some((tid, p)) = self.cur else {
            return;
        };
        let now = self.machine.clock(p);
        let tr = self.trace.as_mut().expect("checked");
        tr.event(
            now,
            p,
            Some(tid.0),
            EventKind::Notify {
                reason,
                obj,
                waiters,
                woken,
            },
        );
    }

    /// Creates a thread record. `enqueue_override` forces queue insertion
    /// (used for the root and for dummies) even under preempt-on-fork.
    /// Returns the new thread id and whether the caller (the forking
    /// parent) must yield so the child is direct-handed to its processor.
    pub fn create_thread(
        &mut self,
        parent: Option<ThreadId>,
        on_proc: ProcId,
        attr: Attr,
        fiber: Option<Fiber>,
        kind: Kind,
    ) -> (ThreadId, bool) {
        let reserved = attr.stack_size.unwrap_or(self.default_stack);
        let committed = self.machine.thread_create(on_proc, reserved);
        let id = ThreadId(self.threads.len() as u32);
        let prio = attr.priority;
        let mut tcb = Tcb::new(kind, attr, reserved);
        tcb.stack_committed = committed;
        tcb.fiber = fiber;
        self.threads.push(tcb);
        self.live += 1;
        // Preempt-on-fork hands the child straight to the parent's
        // processor — but only within the parent's priority level; a child
        // at a different level goes through the queue so that priority
        // semantics hold (paper §2.1: the space-efficient policy operates
        // *within* a priority level).
        let handoff_child = kind == Kind::User
            && self.policy.preempt_on_fork()
            && parent
                .map(|par| self.threads[par.index()].attr.priority == prio)
                .unwrap_or(false);
        let now = self.machine.clock(on_proc);
        if self.trace.is_some() {
            let t0 = self.prof_start();
            let tr = self.trace.as_mut().expect("checked");
            tr.event(
                now,
                on_proc,
                Some(id.0),
                EventKind::Spawn {
                    parent: parent.map(|t| t.0),
                },
            );
            self.prof_close(t0, |hp| &mut hp.trace_alloc);
        }
        self.sched_op(on_proc);
        self.policy
            .on_create(id, parent, prio, !handoff_child, now, on_proc);
        if !handoff_child {
            self.threads[id.index()].state = TState::Ready;
            self.threads[id.index()].ready_since = now;
            self.unpark(now);
        }
        if kind == Kind::Dummy {
            self.machine.count_dummy();
        }
        (id, handoff_child)
    }

    /// Creates the root(s) of a lazy binary tree of `count` dummy threads
    /// at `parent`'s depth-first position: up to two roots are created now,
    /// each expanding (when dispatched) into two more, and so on.
    pub fn create_dummy_tree(&mut self, parent: ThreadId, p: ProcId, count: u64) {
        let left = count / 2;
        let right = count - left;
        for part in [left, right] {
            if part > 0 {
                let (id, _) =
                    self.create_thread(Some(parent), p, Attr::default(), None, Kind::Dummy);
                self.threads[id.index()].dummy_remaining = part;
            }
        }
    }

    /// Marks `t` ready. The publish time is the waking processor's clock or
    /// the thread's own suspension time, whichever is later — a wake must
    /// not resume a thread earlier (in virtual time) than it blocked.
    pub fn make_ready(&mut self, t: ThreadId, p: ProcId) {
        debug_assert!(matches!(
            self.threads[t.index()].state,
            TState::Blocked | TState::Created
        ));
        let mut now = self
            .machine
            .clock(p)
            .max(self.threads[t.index()].blocked_at);
        // Chaos fault: delayed wake delivery — the wake is published up to
        // 2 µs later than the primitive issued it, exactly like an IPI that
        // sat in a pending-interrupt register. Still causally sound (never
        // earlier than the suspension).
        if let Some(chaos) = self.chaos.as_mut() {
            now = VirtTime::from_ns(now.as_ns() + chaos.below(2_001));
        }
        let (prio, affinity) = {
            let tcb = &self.threads[t.index()];
            (tcb.attr.priority, tcb.last_proc)
        };
        self.threads[t.index()].state = TState::Ready;
        self.threads[t.index()].ready_since = now;
        // The wake supersedes any waits-for edge or armed deadline (the
        // stale heap entry is discarded lazily; `timed_out` is untouched —
        // only a real deadline firing sets it).
        self.threads[t.index()].wait = None;
        self.threads[t.index()].deadline = None;
        let waker = self.cur.map(|(w, _)| w.0);
        if self.trace.is_some() {
            let t0 = self.prof_start();
            let tr = self.trace.as_mut().expect("checked");
            tr.event(now, p, Some(t.0), EventKind::Wake { waker });
            self.prof_close(t0, |hp| &mut hp.trace_alloc);
        }
        self.sched_op(p);
        self.policy.on_ready(t, prio, now, p, affinity);
        self.unpark(now);
    }

    /// Registers the current thread as blocked (caller must already have
    /// put it on some wait queue) — to be followed by a `Blocked` suspend.
    /// `target` is the join target when the wait is on a thread's exit;
    /// together with `obj` it forms the thread's waits-for edge.
    pub fn block_current(
        &mut self,
        reason: BlockReason,
        obj: Option<u32>,
        target: Option<ThreadId>,
    ) -> (ThreadId, ProcId) {
        let (tid, p) = self.cur.expect("block outside a thread");
        let now = self.machine.clock(p);
        let t = &mut self.threads[tid.index()];
        t.state = TState::Blocked;
        t.blocked_at = now;
        t.wait = Some(Wait {
            reason,
            obj,
            target,
        });
        if self.trace.is_some() {
            let t0 = self.prof_start();
            let tr = self.trace.as_mut().expect("checked");
            tr.event(now, p, Some(tid.0), EventKind::Block { reason, obj });
            self.prof_close(t0, |hp| &mut hp.trace_alloc);
        }
        self.policy.on_block(tid);
        self.sched_op(p);
        (tid, p)
    }

    /// Arms a timed wait for the current thread: call between
    /// [`Inner::block_current`] and the `Blocked` suspend. Returns the
    /// armed absolute deadline.
    pub fn arm_timed_wait(&mut self, timeout: VirtTime) -> VirtTime {
        let (tid, p) = self.cur.expect("timed wait outside a thread");
        let now = self.machine.clock(p);
        let deadline = VirtTime::from_ns(now.as_ns().saturating_add(timeout.as_ns()));
        self.threads[tid.index()].deadline = Some(deadline);
        self.machine.arm_deadline(p, deadline, u64::from(tid.0));
        deadline
    }

    /// Consumes the current thread's timeout flag: `true` exactly when its
    /// last wake came from the deadline heap rather than the primitive.
    pub fn consume_timeout(&mut self) -> bool {
        match self.cur {
            Some((tid, _)) => std::mem::take(&mut self.threads[tid.index()].timed_out),
            None => false,
        }
    }

    /// Whether `t` is currently blocked (false for the out-of-bounds
    /// outside-a-runtime sentinel id). Wake paths use this to skip waiters
    /// that a timeout already woke.
    pub fn thread_is_blocked(&self, t: ThreadId) -> bool {
        self.threads
            .get(t.index())
            .is_some_and(|tcb| tcb.state == TState::Blocked)
    }

    /// Publishes the holder set of a contended sync object (or retires the
    /// entry when `holders` is empty). Primitives call this only on their
    /// contended paths, so the map stays off the uncontended hot path.
    pub fn note_holders(&mut self, obj: u32, holders: Vec<ThreadId>) {
        if holders.is_empty() {
            self.holders.remove(&obj);
        } else {
            self.holders.insert(obj, holders);
        }
    }

    /// Walks the waits-for graph from a prospective edge — `me` about to
    /// block on `obj` (follow its published holders) or on thread `target`
    /// (join) — and returns the cycle if one would close. Called *before*
    /// the thread enqueues, so a detected deadlock leaves every queue
    /// untouched and the caller can unwind instead of blocking.
    pub fn check_for_cycle(
        &mut self,
        me: ThreadId,
        obj: Option<u32>,
        target: Option<ThreadId>,
    ) -> Option<DeadlockInfo> {
        fn successors(holders: &HashMap<u32, Vec<ThreadId>>, w: &Wait) -> Vec<ThreadId> {
            if let Some(t) = w.target {
                return vec![t];
            }
            match (w.reason, w.obj) {
                // Only ownership waits have a well-defined "who must act"
                // edge; condvar/semaphore/barrier waits can be satisfied by
                // anyone and get no outgoing edge (no false positives).
                (BlockReason::Mutex | BlockReason::RwRead | BlockReason::RwWrite, Some(o)) => {
                    holders.get(&o).cloned().unwrap_or_default()
                }
                _ => Vec::new(),
            }
        }
        fn walk(
            threads: &[Tcb],
            holders: &HashMap<u32, Vec<ThreadId>>,
            me: ThreadId,
            t: ThreadId,
            path: &mut Vec<(ThreadId, Option<u32>)>,
            seen: &mut std::collections::HashSet<ThreadId>,
        ) -> bool {
            if t == me {
                return true;
            }
            if !seen.insert(t) {
                return false;
            }
            // Out-of-bounds ids (the outside-a-runtime owner sentinel) and
            // runnable threads have no outgoing edge.
            let Some(tcb) = threads.get(t.index()) else {
                return false;
            };
            if tcb.state != TState::Blocked {
                return false;
            }
            // A deadline-bounded wait cannot sustain a deadlock: the engine
            // will wake it at its deadline, breaking any cycle through it.
            if tcb.deadline.is_some() {
                return false;
            }
            let Some(w) = tcb.wait else {
                return false;
            };
            path.push((t, w.obj));
            for s in successors(holders, &w) {
                if walk(threads, holders, me, s, path, seen) {
                    return true;
                }
            }
            path.pop();
            false
        }
        let first = successors(
            &self.holders,
            &Wait {
                reason: obj.map_or(BlockReason::Join, |_| BlockReason::Mutex),
                obj,
                target,
            },
        );
        if first.is_empty() {
            return None;
        }
        let mut path = vec![(me, obj)];
        let mut seen = std::collections::HashSet::new();
        for s in first {
            if walk(&self.threads, &self.holders, me, s, &mut path, &mut seen) {
                let at = match self.cur {
                    Some((_, p)) => self.machine.clock(p),
                    None => VirtTime::ZERO,
                };
                return Some(DeadlockInfo {
                    cycle: path.iter().map(|(t, _)| t.0).collect(),
                    objs: path.iter().map(|(_, o)| *o).collect(),
                    at,
                });
            }
        }
        None
    }

    /// Records a detected cycle: appends it to the report list and emits one
    /// `Deadlock` flight-recorder event per member (all sharing the cycle's
    /// index), naming who each member waits for and through which object.
    pub fn record_deadlock(&mut self, info: &DeadlockInfo) {
        let idx = self.deadlocks.len() as u32;
        if let (Some(tr), Some((_, p))) = (self.trace.as_mut(), self.cur) {
            let now = self.machine.clock(p);
            let n = info.cycle.len();
            for i in 0..n {
                let (member, waits_for, obj) =
                    (info.cycle[i], info.cycle[(i + 1) % n], info.objs[i]);
                tr.event(
                    now,
                    p,
                    Some(member),
                    EventKind::Deadlock {
                        cycle: idx,
                        waits_for,
                        obj,
                    },
                );
            }
        }
        self.deadlocks.push(info.clone());
    }

    fn dispatch_prologue(&mut self, tid: ThreadId, p: ProcId) {
        let dispatched_at = self.machine.clock(p);
        self.machine.count_dispatch(p);
        let switch = self.machine.cost().ctx_switch;
        self.machine.thread_op(p, switch);
        let (reserved, committed, has_run, was_ready, ready_since) = {
            let t = self.tcb(tid);
            (
                t.stack_reserved,
                t.stack_committed,
                t.has_run,
                t.state == TState::Ready,
                t.ready_since,
            )
        };
        if !has_run {
            let committed = self.machine.thread_first_run(p, reserved, committed);
            let t = self.tcb(tid);
            t.stack_committed = committed;
            t.has_run = true;
        }
        if let Some(k) = self.policy.quota() {
            self.tcb(tid).quota = k as i64;
        }
        let t = self.tcb(tid);
        t.state = TState::Running(p);
        t.last_proc = Some(p);
        self.cur = Some((tid, p));
        let first_run_at = self.machine.clock(p);
        if let Some(tr) = self.trace.as_mut() {
            tr.note_quantum(tid.0, dispatched_at);
            if was_ready {
                tr.add_ready_wait(tid.0, dispatched_at.since(ready_since));
            }
            if !has_run {
                tr.event(first_run_at, p, Some(tid.0), EventKind::FirstDispatch);
            }
        }
    }

    fn handle_yield(&mut self, tid: ThreadId, p: ProcId, reason: YieldReason) {
        match reason {
            YieldReason::Forked { child } => {
                let now = self.machine.clock(p);
                let prio = self.threads[tid.index()].attr.priority;
                self.threads[tid.index()].state = TState::Ready;
                self.threads[tid.index()].ready_since = now;
                self.sched_op(p);
                self.policy.on_ready(tid, prio, now, p, Some(p));
                self.unpark(now);
                debug_assert!(self.handoff[p].is_none());
                self.handoff[p] = Some((child, false));
            }
            YieldReason::Blocked => {
                debug_assert_eq!(self.threads[tid.index()].state, TState::Blocked);
            }
            YieldReason::Timeslice => {
                // Keep the fiber on this processor; no queue interaction and
                // no cost — the pause exists only to interleave virtually
                // concurrent execution segments.
                debug_assert!(self.handoff[p].is_none());
                self.handoff[p] = Some((tid, true));
            }
            YieldReason::Preempted | YieldReason::Yielded => {
                let now = self.machine.clock(p);
                let prio = self.threads[tid.index()].attr.priority;
                self.threads[tid.index()].state = TState::Ready;
                self.threads[tid.index()].ready_since = now;
                if matches!(reason, YieldReason::Preempted) {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.event(now, p, Some(tid.0), EventKind::Preempt);
                    }
                }
                self.sched_op(p);
                self.policy.on_ready(tid, prio, now, p, Some(p));
                self.unpark(now);
            }
            YieldReason::JoinWake { at } => {
                // Sleep until the joined child's virtual exit: publish the
                // wake at `at` (ahead of this processor's clock) and let the
                // processor take other ready work meanwhile. With nothing
                // else runnable the pop returns `NotYet(at)` and the
                // processor idles to `at` exactly as the old inline wait
                // did.
                let at = at.max(self.machine.clock(p));
                let prio = self.threads[tid.index()].attr.priority;
                self.threads[tid.index()].state = TState::Ready;
                self.threads[tid.index()].ready_since = at;
                self.sched_op(p);
                self.policy.on_ready(tid, prio, at, p, Some(p));
                self.unpark(at);
            }
        }
    }

    fn finish_thread(&mut self, tid: ThreadId, p: ProcId) {
        let (reserved, committed) = {
            let t = self.tcb(tid);
            (t.stack_reserved, t.stack_committed)
        };
        self.machine.thread_exit(p, reserved, committed);
        self.policy.on_exit(tid);
        let exit_time = self.machine.clock(p);
        if let Some(tr) = self.trace.as_mut() {
            tr.note_exit(tid.0, exit_time);
        }
        let joiner = {
            let t = self.tcb(tid);
            t.state = TState::Exited;
            t.exit_time = exit_time;
            t.fiber = None;
            t.yielder = std::ptr::null();
            t.joiner.take()
        };
        // pthread TSD semantics: destroy the exiting thread's specific
        // values now, not at key drop — otherwise every exited thread leaks
        // a map slot per key for the rest of the run. Cleaners hold only
        // their key's own map, so calling them under the engine borrow is
        // fine (TLS value destructors must not call back into the runtime).
        let cleaners = std::mem::take(&mut self.tls_cleaners);
        let tls_freed: u64 = cleaners.iter().map(|clean| clean(tid)).sum();
        self.tls_cleaners = cleaners;
        if tls_freed > 0 {
            if let Some(ledger) = self.ledger.as_mut() {
                ledger.release_tls(tid.0, tls_freed);
            }
        }
        self.live -= 1;
        if let Some(j) = joiner {
            // A `join_timeout` joiner may already have been timeout-woken
            // (Ready, not Blocked); waking it again would double-queue it.
            if self.threads[j.index()].state == TState::Blocked {
                self.make_ready(j, p);
            }
        }
    }

    /// True when `t`'s armed deadline is exactly `at` and it is still
    /// blocked — i.e. the heap entry is live, not a leftover from a wait
    /// that was satisfied normally.
    fn deadline_live(&self, t: ThreadId, at: VirtTime) -> bool {
        let tcb = &self.threads[t.index()];
        tcb.state == TState::Blocked && tcb.deadline == Some(at)
    }

    /// Earliest live deadline armed on `p`, discarding stale heap entries.
    fn next_live_deadline(&mut self, p: ProcId) -> Option<VirtTime> {
        while let Some((at, token)) = self.machine.peek_deadline(p) {
            if self.deadline_live(ThreadId(token as u32), at) {
                return Some(at);
            }
            self.machine.pop_deadline(p);
        }
        None
    }

    /// Earliest live deadline on *any* processor's heap (parked ones
    /// included — their entries fire once the active processors' clocks
    /// pass them).
    fn next_live_deadline_any(&mut self) -> Option<VirtTime> {
        (0..self.parked.len())
            .filter_map(|q| self.next_live_deadline(q))
            .min()
    }

    /// Minimum clock among the non-parked processors *other than* `p` —
    /// the earliest virtual time at which anyone else could still publish
    /// a wake. `None` when `p` is the only active processor (then nobody
    /// can, and `p` may advance freely). Parked processors are excluded
    /// because [`Inner::unpark`] idles them forward to the publication
    /// that revives them: they can never act before an active processor's
    /// present.
    fn causal_horizon(&self, p: ProcId) -> Option<VirtTime> {
        (0..self.parked.len())
            .filter(|&q| q != p && !self.parked[q])
            .map(|q| self.machine.clock(q))
            .min()
    }

    /// The latest virtual time up to which the wake-vs-timeout race is
    /// already decided, seen from `p`: the global minimum clock over the
    /// non-parked processors. Every future wake is timestamped at its
    /// publisher's (monotone) clock, so no wake earlier than this floor
    /// can appear — deadlines at or before it may fire as timeouts.
    fn wake_floor(&self, p: ProcId) -> VirtTime {
        let me = self.machine.clock(p);
        match self.causal_horizon(p) {
            Some(h) => me.min(h),
            None => me,
        }
    }

    /// Fires every live deadline — on any processor's heap — due at or
    /// before `floor` (the caller's [`Inner::wake_floor`]). Firing is
    /// deferred, never early: a deadline beyond the floor stays armed so a
    /// slower processor can still win the race with a virtually-earlier
    /// wake. Returns whether any fired.
    fn fire_due_timeouts(&mut self, floor: VirtTime) -> bool {
        let mut fired = false;
        for q in 0..self.parked.len() {
            while let Some((at, token)) = self.machine.peek_deadline(q) {
                let t = ThreadId(token as u32);
                if !self.deadline_live(t, at) {
                    self.machine.pop_deadline(q);
                    continue;
                }
                if at > floor {
                    break;
                }
                self.machine.pop_deadline(q);
                self.timeout_wake(t, q, at);
                fired = true;
            }
        }
        fired
    }

    /// [`Inner::make_ready`]'s timeout twin: wakes `t` because its armed
    /// deadline (`at`) fired, not because the primitive handed over. Emits
    /// a `Timeout` event instead of a `Wake`, so the happens-before checker
    /// knows no notify sanctioned this wake, and sets `timed_out` for the
    /// timed API to consume on resume. Timestamped at the deadline itself
    /// (clamped by the block), however late in engine order the firing is.
    fn timeout_wake(&mut self, t: ThreadId, p: ProcId, at: VirtTime) {
        debug_assert_eq!(self.threads[t.index()].state, TState::Blocked);
        let now = at.max(self.threads[t.index()].blocked_at);
        let (prio, affinity, obj) = {
            let tcb = &mut self.threads[t.index()];
            tcb.state = TState::Ready;
            tcb.ready_since = now;
            tcb.timed_out = true;
            tcb.deadline = None;
            let obj = tcb.wait.and_then(|w| w.obj);
            tcb.wait = None;
            (tcb.attr.priority, tcb.last_proc, obj)
        };
        if self.trace.is_some() {
            let t0 = self.prof_start();
            let tr = self.trace.as_mut().expect("checked");
            tr.event(now, p, Some(t.0), EventKind::Timeout { obj });
            self.prof_close(t0, |hp| &mut hp.trace_alloc);
        }
        self.sched_op(p);
        self.policy.on_ready(t, prio, now, p, affinity);
        self.unpark(now);
    }

    /// Minimum-clock runnable processor, or `None` when all are parked.
    /// Under perturbation, ties at the minimum clock break pseudo-randomly
    /// instead of always toward processor 0 — this is the main source of
    /// genuinely different (but still causally valid) event interleavings.
    fn pick_proc(&mut self) -> Option<ProcId> {
        let best = (0..self.parked.len())
            .filter(|&q| !self.parked[q])
            .min_by_key(|&q| self.machine.clock(q))?;
        Some(self.perturb_tie_break(best, |inner, r| !inner.parked[r]))
    }

    /// The watchdog's verdict when all processors are idle with live
    /// threads: who is alive, what each waits on, and since when.
    fn stall_info(&self) -> StallInfo {
        let at = (0..self.parked.len())
            .map(|q| self.machine.clock(q))
            .max()
            .unwrap_or(VirtTime::ZERO);
        let threads = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state != TState::Exited)
            .map(|(i, t)| StalledThread {
                thread: i as u32,
                reason: t.wait.map(|w| w.reason),
                obj: t.wait.and_then(|w| w.obj),
                since: t.blocked_at,
            })
            .collect();
        StallInfo {
            at,
            scheduler: self.policy.kind().name().to_string(),
            threads,
        }
    }
}

/// Runs `f` as the root thread of a fresh virtual-SMP runtime and returns
/// its result together with the run's [`Report`].
///
/// This is the reproduction's equivalent of launching a multithreaded
/// Solaris process on the Enterprise 5000: `config` selects the processor
/// count, scheduler, default stack size and cost model.
///
/// # Panics
/// Propagates a panic of the root thread. Panics in spawned threads are
/// delivered at their `join`. Panics with the watchdog's [`RunError`] when
/// the run stalls (all processors idle with live threads) — use
/// [`try_run`] to receive the stall verdict as a value instead.
pub fn run<T: 'static>(config: Config, f: impl FnOnce() -> T + 'static) -> (T, Report) {
    match try_run(config, f) {
        Ok(v) => v,
        Err(e) => panic!("{e}"),
    }
}

/// Like [`run`], but a stalled run — all processors idle while threads are
/// still alive (lost wakeup, partial deadlock, abandoned barrier) — returns
/// the watchdog's [`RunError`] verdict instead of panicking. The verdict
/// names every live thread, what it waits on, and since when; the partial
/// [`Report`] (including any detected waits-for cycles) rides along.
///
/// On a stall the surviving threads are force-unwound: their destructors
/// run (locks release, TLS values drop), but their closure results are
/// discarded.
///
/// # Panics
/// Propagates a panic of the root thread, like [`run`].
pub fn try_run<T: 'static>(
    config: Config,
    f: impl FnOnce() -> T + 'static,
) -> Result<(T, Report), RunError> {
    let inner_rc = Rc::new(RefCell::new(Inner::new(&config)));
    let slot: Slot<T> = Rc::new(RefCell::new(None));
    let guard = install(ActiveCtx::Par(inner_rc.clone()));

    {
        let mut inner = inner_rc.borrow_mut();
        let stack = inner.acquire_fiber_stack();
        let fiber = make_fiber(stack, slot.clone(), f);
        let _ = inner.create_thread(None, 0, Attr::default(), Some(fiber), Kind::Root);
    }

    let stalled = engine_loop(&inner_rc);
    if stalled.is_some() {
        // Tear down the surviving fibers while the runtime context is still
        // installed: each drop force-unwinds its fiber so destructors (lock
        // guards, TLS values) run. The bookkeeping hooks they reach are
        // lenient about `cur == None` and no-op during this sweep. The
        // fibers are collected under one borrow and dropped outside it, so
        // destructor code may re-borrow the runtime.
        let fibers: Vec<Fiber> = {
            let mut inner = inner_rc.borrow_mut();
            inner.cur = None;
            inner
                .threads
                .iter_mut()
                .filter_map(|t| t.fiber.take())
                .collect()
        };
        drop(fibers);
    }
    drop(guard);

    let mut inner = inner_rc.borrow_mut();
    if let Some(payload) = inner.threads[0].panic.take() {
        drop(inner);
        drop(inner_rc);
        resume_unwind(payload);
    }
    let peak = inner.threads.len();
    let steals = inner.policy.steals();
    let mut trace = inner.trace.take();
    if let Some(tr) = trace.as_mut() {
        // Fold the machine-level recording (memory events, exact counter
        // tracks) into the trace before the machine is consumed.
        if let Some(rec) = inner.machine.take_recording() {
            tr.absorb_machine(rec);
        }
    }
    let mut stats = {
        let machine = std::mem::replace(
            &mut inner.machine,
            Machine::new(1, config.cost.clone(), config.default_stack),
        );
        machine.finish()
    };
    // Fold the host stack-pool counters into the memory stats. The machine's
    // own accounting (footprint, live bytes) is untouched — pool slabs are
    // host memory, reported in their own fields so virtual footprint numbers
    // stay bit-identical to pre-pool runs.
    let pool = inner.stack_pool.stats();
    stats.mem.host_stack_hits = pool.hits;
    stats.mem.host_stack_misses = pool.misses;
    stats.mem.host_stack_cached_hwm = pool.cached_bytes_hwm;
    // Fold the runtime half of the host phase profile (dispatch, sched-pop,
    // trace-alloc) into the machine half already in `stats`, then stamp the
    // combined profile onto the trace so standalone trace tools can report it.
    if let Some(hp) = inner.host_prof.take() {
        stats.host_phase.absorb(&hp);
    }
    if stats.host_phase.enabled {
        if let Some(tr) = trace.as_mut() {
            tr.host_phase = Some(stats.host_phase);
        }
    }
    let leaks = inner
        .ledger
        .take()
        .map(|l| l.report(stats.mem.free_underflows));
    let deadlocks = std::mem::take(&mut inner.deadlocks);
    drop(inner);
    let mut report = Report::new(&config, stats, peak, steals, trace, leaks, deadlocks);
    match stalled {
        None => {
            let value = slot
                .borrow_mut()
                .take()
                .expect("root thread completed without a value");
            Ok((value, report))
        }
        Some(stall) => {
            report.stalled = Some(stall.clone());
            Err(RunError {
                stall,
                report: Box::new(report),
            })
        }
    }
}

/// Builds the fiber for a thread body: registers its yielder, runs the body,
/// stores the result, and records panics for delivery at join.
pub(crate) fn make_fiber<T: 'static>(
    stack: Stack,
    slot: Slot<T>,
    f: impl FnOnce() -> T + 'static,
) -> Fiber {
    make_fiber_erased(
        stack,
        Box::new(move || {
            *slot.borrow_mut() = Some(f());
        }),
    )
}

/// Type-erased fiber constructor (used by the lifetime-erasing scope API).
/// Takes an owned host stack (usually from [`Inner::acquire_fiber_stack`]);
/// it is returned to the pool when the fiber completes.
pub(crate) fn make_fiber_erased(stack: Stack, body: Box<dyn FnOnce()>) -> Fiber {
    // With the portable thread backend, each fiber runs on its own OS
    // thread, which starts with an empty thread-local context; capture the
    // engine's context now (on the engine thread) and install it when the
    // fiber first runs. A no-op under the single-thread assembly backend.
    let ctx = with_active(|c| match c {
        Some(ActiveCtx::Par(rc)) => Some(rc.clone()),
        _ => None,
    });
    Coroutine::with_stack(stack, move |yielder, ()| {
        if let Some(rc) = ctx {
            adopt_context(rc);
        }
        register_yielder(yielder);
        let result = catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = result {
            if payload.is::<ForcedUnwind>() {
                resume_unwind(payload);
            }
            store_panic(payload);
        }
    })
}

/// Installs the runtime context into the calling OS thread's slot if it has
/// none (fiber threads under the portable backend). Serialized by the
/// backend's rendezvous discipline.
fn adopt_context(rc: Rc<RefCell<Inner>>) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if slot.is_none() {
            *slot = Some(ActiveCtx::Par(rc));
        }
    });
}

fn register_yielder(y: &crate::thread::FiberYielder) {
    with_active(|ctx| {
        let Some(ActiveCtx::Par(rc)) = ctx else {
            panic!("fiber running without an active runtime")
        };
        let mut inner = rc.borrow_mut();
        let (tid, _) = inner.cur.expect("fiber running without cur");
        inner.threads[tid.index()].yielder = y as *const _;
    });
}

fn store_panic(payload: Box<dyn std::any::Any + Send>) {
    with_active(|ctx| {
        if let Some(ActiveCtx::Par(rc)) = ctx {
            let mut inner = rc.borrow_mut();
            let (tid, _) = inner.cur.expect("panic outside a thread");
            inner.threads[tid.index()].panic = Some(payload);
        }
    });
}

/// Suspends the current fiber with `reason`; returns when redispatched.
pub(crate) fn suspend_current(rc: &Rc<RefCell<Inner>>, reason: YieldReason) {
    let yielder = {
        let inner = rc.borrow();
        let (tid, _) = inner.cur.expect("suspend outside a thread");
        inner.threads[tid.index()].yielder
    };
    assert!(!yielder.is_null(), "suspend before yielder registration");
    // SAFETY: the yielder lives on the current fiber's stack for the whole
    // fiber lifetime; we are that fiber.
    let yielder = unsafe { &*yielder };
    yielder.suspend(reason);
}

/// Virtual-time quantum after which a fiber that has run ahead of every
/// other active processor pauses so virtually-concurrent segments
/// interleave (see [`YieldReason::Timeslice`]).
const TIMESLICE: VirtTime = VirtTime::from_us(200);

/// Suspends the current fiber (cost-free) if its processor's clock is more
/// than one [`TIMESLICE`] ahead of every other non-parked processor.
pub(crate) fn maybe_timeslice(rc: &Rc<RefCell<Inner>>) {
    let should = {
        let inner = rc.borrow();
        let Some((tid, p)) = inner.cur else {
            return;
        };
        // Never timeslice a thread that has already registered itself on a
        // wait queue (state Blocked, between `block_current` and its
        // `Blocked` suspend — e.g. the unlock inside `Condvar::wait`): a
        // concurrent wake would queue it while it also sits in the handoff
        // slot, double-dispatching it.
        if inner.threads[tid.index()].state != TState::Running(p) {
            return;
        }
        let my = inner.machine.clock(p);
        (0..inner.parked.len())
            .filter(|&q| q != p && !inner.parked[q])
            .map(|q| inner.machine.clock(q))
            .min()
            .is_some_and(|min| my.since(min) > TIMESLICE)
    };
    if should {
        suspend_current(rc, YieldReason::Timeslice);
    }
}

/// Under perturbation, probabilistically preempts the current thread at a
/// sync-operation boundary — exactly the points where a real SMP's
/// involuntary preemption exposes sync-protocol windows. Reuses
/// [`maybe_timeslice`]'s Running-state guard: a thread that has already
/// registered itself on a wait queue must not also be requeued as ready.
pub(crate) fn maybe_perturb_yield(rc: &Rc<RefCell<Inner>>) {
    let should = {
        let mut inner = rc.borrow_mut();
        let Some((tid, p)) = inner.cur else {
            return;
        };
        if inner.threads[tid.index()].state != TState::Running(p) {
            return;
        }
        match inner.perturb.as_mut() {
            // 1-in-8 keeps runs fast while still visiting each boundary
            // with high probability across a modest seed budget.
            Some(prng) => prng.chance(1, 8),
            None => return,
        }
    };
    if should {
        suspend_current(rc, YieldReason::Yielded);
    }
}

/// Under chaos ([`Config::with_chaos`]), preempts the current thread at a
/// sync-operation boundary with probability 1/4 — a lock-holder preemption
/// storm, since sync operations are exactly where threads hold locks. Reuses
/// the same Running-state guard as [`maybe_perturb_yield`]: a thread already
/// registered on a wait queue must not also be requeued as ready.
pub(crate) fn maybe_chaos_yield(rc: &Rc<RefCell<Inner>>) {
    let should = {
        let mut inner = rc.borrow_mut();
        let Some((tid, p)) = inner.cur else {
            return;
        };
        if inner.threads[tid.index()].state != TState::Running(p) {
            return;
        }
        match inner.chaos.as_mut() {
            Some(prng) => prng.chance(1, 4),
            None => return,
        }
    };
    if should {
        suspend_current(rc, YieldReason::Yielded);
    }
}

fn engine_loop(inner_rc: &Rc<RefCell<Inner>>) -> Option<StallInfo> {
    loop {
        let mut inner = inner_rc.borrow_mut();
        if inner.live == 0 {
            return None;
        }
        let Some(p) = inner.pick_proc() else {
            // All processors parked. A live timed wait still guarantees
            // progress: advance the earliest-deadline processor to its
            // deadline and fire it — with everyone parked no wake can
            // materialize, so the race is decided. With no deadline armed
            // the run is stalled: hand the watchdog's verdict up instead
            // of panicking here.
            let due = (0..inner.parked.len())
                .filter_map(|q| inner.next_live_deadline(q).map(|d| (d, q)))
                .min();
            match due {
                Some((d, q)) => {
                    inner.parked[q] = false;
                    inner.machine.idle_until(q, d);
                    inner.fire_due_timeouts(d);
                    continue;
                }
                None => return Some(inner.stall_info()),
            }
        };
        // Deliver every timed wait whose deadline the whole machine has
        // passed, before this processor picks new work. `p` holds the
        // minimum clock right now, so the floor is its own clock.
        let floor = inner.wake_floor(p);
        inner.fire_due_timeouts(floor);
        let (tid, ts_resume) = if let Some((child, resume)) = inner.handoff[p].take() {
            (child, resume)
        } else {
            inner.sched_op(p);
            let now = inner.machine.clock(p);
            let t0 = inner.prof_start();
            let popped = inner.policy.pop(p, now);
            inner.prof_close(t0, |hp| &mut hp.sched_pop);
            match popped {
                Pop::Got { tid, stolen } => {
                    if stolen {
                        // Migration: pay an extra switch for the cold start.
                        let c = inner.machine.cost().ctx_switch;
                        inner.machine.thread_op(p, c);
                        if inner.trace.is_some() {
                            let at = inner.machine.clock(p);
                            let victim =
                                inner.policy.last_steal_victim().map(|v| v as u32);
                            let tr = inner.trace.as_mut().expect("checked");
                            tr.event(at, p, Some(tid.0), EventKind::Steal { victim });
                        }
                    }
                    if inner.trace.is_some() {
                        let at = inner.machine.clock(p);
                        let ready = inner.policy.ready_len() as u64;
                        let deques = inner.policy.active_deques();
                        let tr = inner.trace.as_mut().expect("checked");
                        tr.sample_ready(at, ready);
                        if let Some(d) = deques {
                            tr.sample_active_deques(at, d as u64);
                        }
                    }
                    (tid, false)
                }
                Pop::NotYet(t) => {
                    // Idle only as far as the nearest *decidable* armed
                    // deadline, so a timed wait fires on schedule even when
                    // the next ready entry lies beyond it. A deadline past
                    // the causal horizon (another processor still trails
                    // it) must not short-stop the idle: that processor may
                    // yet publish the earlier wake, and the post-idle
                    // firing floor defers the timeout either way.
                    let mut until = t;
                    if let Some(d) = inner.next_live_deadline_any() {
                        let decidable =
                            inner.causal_horizon(p).is_none_or(|h| d <= h);
                        if decidable && d < until {
                            until = d;
                        }
                    }
                    inner.machine.idle_until(p, until);
                    let floor = inner.wake_floor(p);
                    inner.fire_due_timeouts(floor);
                    continue;
                }
                Pop::Empty => {
                    // An idle processor is what keeps timed waits honest:
                    // it advances to the earliest armed deadline — but only
                    // as fast as the slowest active processor (the causal
                    // horizon), so a wake published from virtually behind
                    // the deadline still wins the race. At the horizon with
                    // the deadline still ahead, park: either a wake revives
                    // this processor, or everyone ends up parked and the
                    // all-parked arm above fires the deadline.
                    if let Some(d) = inner.next_live_deadline_any() {
                        let now = inner.machine.clock(p);
                        match inner.causal_horizon(p) {
                            None => {
                                inner.machine.idle_until(p, d);
                                inner.fire_due_timeouts(d);
                                continue;
                            }
                            Some(h) if d <= h => {
                                inner.machine.idle_until(p, d);
                                let floor = inner.wake_floor(p);
                                inner.fire_due_timeouts(floor);
                                continue;
                            }
                            Some(h) if h > now => {
                                inner.machine.idle_until(p, h);
                                continue;
                            }
                            Some(_) => {} // at the horizon already: park
                        }
                    }
                    inner.parked[p] = true;
                    continue;
                }
            }
        };
        if ts_resume {
            // Cost-free continuation of a time-sliced fiber.
            inner.cur = Some((tid, p));
        } else {
            let t0 = inner.prof_start();
            inner.dispatch_prologue(tid, p);
            inner.prof_close(t0, |hp| &mut hp.dispatch);
        }
        let span_start = inner.machine.clock(p);
        let span_kind = if ts_resume {
            crate::trace::SpanKind::Resume
        } else if inner.threads[tid.index()].kind == Kind::Dummy {
            crate::trace::SpanKind::Dummy
        } else {
            crate::trace::SpanKind::Run
        };
        if inner.threads[tid.index()].kind == Kind::Dummy {
            // Dummies perform a no-op and exit (paper §4 item 2); their cost
            // is creation + dispatch + exit bookkeeping. A dummy standing
            // for a subtree of the lazy binary tree forks its two children
            // before exiting.
            let remaining = inner.threads[tid.index()].dummy_remaining;
            if remaining > 1 {
                inner.create_dummy_tree(tid, p, remaining - 1);
            }
            inner.machine.compute(p, 100);
            inner.finish_thread(tid, p);
            let end = inner.machine.clock(p);
            if inner.trace.is_some() {
                let t0 = inner.prof_start();
                let tr = inner.trace.as_mut().expect("checked");
                tr.record(p, tid, span_start, end, span_kind);
                inner.prof_close(t0, |hp| &mut hp.trace_alloc);
            }
            continue;
        }
        let mut fiber = inner.threads[tid.index()]
            .fiber
            .take()
            .expect("dispatched thread has no fiber");
        drop(inner);
        let step = fiber.resume(());
        let mut inner = inner_rc.borrow_mut();
        match step {
            Step::Yield(reason) => {
                inner.threads[tid.index()].fiber = Some(fiber);
                inner.handle_yield(tid, p, reason);
            }
            Step::Complete(()) => {
                // Recycle the completed fiber's host stack for the next
                // spawn (the portable backend has no real stack to return).
                if let Some(stack) = fiber.into_stack() {
                    inner.recycle_fiber_stack(stack);
                }
                inner.finish_thread(tid, p);
            }
        }
        let end = inner.machine.clock(p);
        if inner.trace.is_some() {
            let t0 = inner.prof_start();
            let tr = inner.trace.as_mut().expect("checked");
            tr.record(p, tid, span_start, end, span_kind);
            inner.prof_close(t0, |hp| &mut hp.trace_alloc);
        }
    }
}

/// Implementation of [`JoinHandle::join`]: re-raises a child panic in the
/// joiner (pthread `join` semantics on a cancelled/aborted thread).
pub(crate) fn join_impl<T>(h: &JoinHandle<T>) -> T {
    match try_join_impl(h) {
        Ok(v) => v,
        Err(JoinError::Panicked(payload)) => resume_unwind(payload),
        Err(e @ JoinError::NoValue) => panic!("{e}"),
    }
}

/// Implementation of [`JoinHandle::try_join`]: waits for the child exactly
/// like `join`, but surfaces a child panic (or a missing value) as a
/// [`JoinError`] instead of unwinding the joiner.
pub(crate) fn try_join_impl<T>(h: &JoinHandle<T>) -> Result<T, JoinError> {
    if !h.inline {
        if let Some(payload) = join_wait(h.id) {
            return Err(JoinError::Panicked(payload));
        }
    }
    h.slot.borrow_mut().take().ok_or(JoinError::NoValue)
}

/// Blocks the current thread until `target` exits. Returns the target's
/// panic payload, if it panicked; the caller decides whether to re-raise.
pub(crate) fn join_wait(target: ThreadId) -> Option<Box<dyn std::any::Any + Send>> {
    let rc = with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => rc.clone(),
        _ => panic!("join on a runtime thread outside the runtime"),
    });
    loop {
        let mut inner = rc.borrow_mut();
        // Lenient on context: a scope guard unwinding during stall teardown
        // joins children that will never run; report "no value" upstream
        // instead of tearing the process down with a nested panic.
        let (cur, p) = inner.cur?;
        let t = target.index();
        if inner.threads[t].state == TState::Exited {
            // Happens-before: join cannot return before the child's virtual
            // exit, even when the engine (real-time) ran the child first.
            let exit_time = inner.threads[t].exit_time;
            if inner.machine.clock(p) < exit_time {
                // The exit lies in this processor's virtual future. Don't
                // idle the processor across the gap — that would be
                // non-greedy (and breaks Brent's bound when other work is
                // ready). Sleep until the exit becomes visible instead.
                drop(inner);
                suspend_current(&rc, YieldReason::JoinWake { at: exit_time });
                continue;
            }
            let c = inner.machine.cost().join_exited;
            inner.machine.thread_op(p, c);
            if inner.trace.is_some() {
                let at = inner.machine.clock(p);
                let tr = inner.trace.as_mut().expect("checked");
                tr.event(at, p, Some(cur.0), EventKind::Join { target: target.0 });
            }
            let payload = inner.threads[t].panic.take();
            drop(inner);
            return payload;
        }
        assert!(
            inner.threads[t].joiner.is_none(),
            "two threads joining {target}"
        );
        // A join edge can close a waits-for cycle just like a lock edge
        // (t1 joins t2 while t2 blocks on a mutex t1 holds). Check before
        // registering as joiner, and unwind instead of blocking forever.
        if let Some(info) = inner.check_for_cycle(cur, None, Some(target)) {
            inner.record_deadlock(&info);
            drop(inner);
            std::panic::panic_any(DeadlockError { info });
        }
        inner.threads[t].joiner = Some(cur);
        inner.block_current(BlockReason::Join, None, Some(target));
        drop(inner);
        suspend_current(&rc, YieldReason::Blocked);
    }
}

/// Implementation of [`JoinHandle::join_timeout`]: waits at most `timeout`
/// of virtual time, returning the handle back on expiry.
pub(crate) fn join_timeout_impl<T>(
    h: JoinHandle<T>,
    timeout: VirtTime,
) -> Result<T, JoinHandle<T>> {
    if !h.inline {
        match join_wait_timeout(h.id, timeout) {
            Ok(Some(payload)) => resume_unwind(payload),
            Ok(None) => {}
            Err(crate::TimedOut) => return Err(h),
        }
    }
    match h.slot.borrow_mut().take() {
        Some(v) => Ok(v),
        None => panic!("{}", JoinError::NoValue),
    }
}

/// Timed flavour of [`join_wait`]: `Err(TimedOut)` when `target` has not
/// (virtually) exited within `timeout`; otherwise the target's panic
/// payload, like `join_wait`.
fn join_wait_timeout(
    target: ThreadId,
    timeout: VirtTime,
) -> Result<Option<Box<dyn std::any::Any + Send>>, crate::TimedOut> {
    let rc = with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => rc.clone(),
        _ => panic!("join on a runtime thread outside the runtime"),
    });
    let mut deadline: Option<VirtTime> = None;
    loop {
        let mut inner = rc.borrow_mut();
        let Some((cur, p)) = inner.cur else {
            return Ok(None);
        };
        let now = inner.machine.clock(p);
        let deadline =
            *deadline.get_or_insert(VirtTime::from_ns(now.as_ns().saturating_add(timeout.as_ns())));
        let t = target.index();
        if inner.threads[t].state == TState::Exited {
            let exit_time = inner.threads[t].exit_time;
            if exit_time > deadline {
                // The child's virtual exit lies beyond our budget: sleep to
                // the deadline (greedily, like `JoinWake`) and report the
                // timeout at exactly the promised virtual instant.
                drop(inner);
                suspend_current(&rc, YieldReason::JoinWake { at: deadline });
                return Err(crate::TimedOut);
            }
            if now < exit_time {
                drop(inner);
                suspend_current(&rc, YieldReason::JoinWake { at: exit_time });
                continue;
            }
            let c = inner.machine.cost().join_exited;
            inner.machine.thread_op(p, c);
            if inner.trace.is_some() {
                let at = inner.machine.clock(p);
                let tr = inner.trace.as_mut().expect("checked");
                tr.event(at, p, Some(cur.0), EventKind::Join { target: target.0 });
            }
            let payload = inner.threads[t].panic.take();
            drop(inner);
            return Ok(payload);
        }
        assert!(
            inner.threads[t].joiner.is_none(),
            "two threads joining {target}"
        );
        inner.threads[t].joiner = Some(cur);
        inner.block_current(BlockReason::Join, None, Some(target));
        inner.arm_timed_wait(VirtTime::from_ns(deadline.as_ns().saturating_sub(now.as_ns())));
        drop(inner);
        suspend_current(&rc, YieldReason::Blocked);
        let mut inner = rc.borrow_mut();
        if inner.consume_timeout() {
            // Withdraw the joiner registration (the target may have exited
            // concurrently and already taken it — that's fine, the next
            // join attempt will observe the exit).
            if inner.threads[t].joiner == Some(cur) {
                inner.threads[t].joiner = None;
            }
            return Err(crate::TimedOut);
        }
    }
}
