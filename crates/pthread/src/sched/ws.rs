//! Cilk-style work stealing (comparator policy, paper §2.1).
//!
//! Per-processor deques; fork preempts the parent (child-first / "work
//! first"), the parent is pushed on the bottom of its processor's deque, and
//! an idle processor steals from the **top** (oldest end) of a victim's
//! deque, taking the shallowest — largest — piece of work. Cilk's space
//! bound under this discipline is `p · S1`, which the `ablate_stealing`
//! bench contrasts with the DF scheduler's `S1 + O(p·D)`.
//!
//! This policy has no global scheduler lock; queue costs are per-processor.
//! Victim order is a seeded xorshift sequence so runs stay deterministic.
//! Priorities are not supported (entries are scheduled as one level), which
//! matches Cilk's model; the benchmarks all run at a single priority.

use std::collections::VecDeque;

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

#[derive(Debug)]
pub(crate) struct WsSched {
    deques: Vec<VecDeque<(ThreadId, VirtTime)>>,
    rng: u64,
    ready: usize,
    steals: u64,
    last_victim: Option<ProcId>,
}

impl WsSched {
    pub fn new(processors: usize, seed: u64) -> Self {
        WsSched {
            deques: vec![VecDeque::new(); processors],
            rng: seed | 1,
            ready: 0,
            steals: 0,
            last_victim: None,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Policy for WsSched {
    fn kind(&self) -> SchedKind {
        SchedKind::Ws
    }

    fn global_lock(&self) -> bool {
        false
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        _prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        if enqueue {
            // Only the root arrives here (forks are direct-handed).
            self.deques[0].push_back((t, at));
            self.ready += 1;
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        // Cilk semantics: a woken/re-queued thread goes on the waker's deque.
        self.deques[waker].push_back((t, at));
        self.ready += 1;
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        let note = |at: VirtTime, earliest: &mut Option<VirtTime>| {
            *earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
        };
        // Own deque: newest first (depth-first locally).
        if let Some(pos) = self.deques[p].iter().rposition(|&(_, at)| at <= now) {
            let (tid, _) = self.deques[p].remove(pos).expect("position valid");
            self.ready -= 1;
            return Pop::Got { tid, stolen: false };
        }
        for &(_, at) in self.deques[p].iter() {
            note(at, &mut earliest);
        }
        // Steal: random starting victim, then cyclic; oldest entry first.
        let n = self.deques.len();
        let start = (self.next_rand() % n as u64) as usize;
        for i in 0..n {
            let v = (start + i) % n;
            if v == p {
                continue;
            }
            if let Some(pos) = self.deques[v].iter().position(|&(_, at)| at <= now) {
                let (tid, _) = self.deques[v].remove(pos).expect("position valid");
                self.ready -= 1;
                self.steals += 1;
                self.last_victim = Some(v);
                return Pop::Got { tid, stolen: true };
            }
            for &(_, at) in self.deques[v].iter() {
                note(at, &mut earliest);
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }

    fn steals(&self) -> u64 {
        self.steals
    }

    fn last_steal_victim(&self) -> Option<ProcId> {
        self.last_victim
    }

    fn active_deques(&self) -> Option<usize> {
        Some(self.deques.iter().filter(|d| !d.is_empty()).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn own_deque_is_lifo() {
        let mut s = WsSched::new(2, 42);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Got { tid: t(2), stolen: false });
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Got { tid: t(1), stolen: false });
    }

    #[test]
    fn steal_takes_oldest_from_victim() {
        let mut s = WsSched::new(2, 42);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        // Processor 1's own deque is empty: it steals the oldest (t1).
        assert_eq!(s.pop(1, VirtTime::ZERO), Pop::Got { tid: t(1), stolen: true });
        assert_eq!(s.ready_len(), 1);
    }

    #[test]
    fn empty_and_not_yet() {
        let mut s = WsSched::new(2, 42);
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
        s.on_ready(t(1), 0, VirtTime::from_ns(99), 1, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::NotYet(VirtTime::from_ns(99)));
    }

    #[test]
    fn determinism_same_seed_same_victims() {
        let runs: Vec<Vec<Pop>> = (0..2)
            .map(|_| {
                let mut s = WsSched::new(4, 7);
                for i in 0..8 {
                    s.on_ready(t(i), 0, VirtTime::ZERO, (i % 4) as usize, None);
                }
                (0..8).map(|i| s.pop((i % 4) as usize, VirtTime::ZERO)).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }
}
