//! Scheduling policies.
//!
//! A policy manages the set of schedulable threads. The engine calls into it
//! at thread creation, wakeup, block, exit, and dispatch. Entries carry a
//! `ready_at` virtual timestamp: a thread published at time `t` by one
//! processor is invisible to another processor dispatching at an earlier
//! virtual time (the simulation's causality rule). The rule binds **every**
//! dispatch path, steals included: a work-stealing or `DFDeques` thief may
//! neither take an entry published in its causal future nor reach *behind*
//! such an entry where the policy's order makes it a barrier (a `DFDeques`
//! deque whose top is ineligible is not stealable at all).

mod df;
mod dfdeques;
mod fifo;
mod lifo;
mod ws;

#[cfg(any(test, feature = "bench-internals"))]
pub(crate) mod reference;

#[cfg(test)]
mod diff_tests;

pub(crate) use df::DfSched;
pub(crate) use dfdeques::DfDequesSched;
pub(crate) use fifo::FifoSched;
pub(crate) use lifo::LifoSched;
pub(crate) use ws::WsSched;

use ptdf_smp::{ProcId, VirtTime};

use crate::config::{Config, SchedKind};
use crate::thread::ThreadId;

/// Result of a dispatch attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pop {
    /// A thread to run; `stolen` marks a work-stealing migration (extra cost).
    Got { tid: ThreadId, stolen: bool },
    /// Nothing eligible yet; the earliest entry becomes ready at this time.
    NotYet(VirtTime),
    /// No schedulable entries exist anywhere.
    Empty,
}

/// A scheduling policy. All methods are called with engine-quiesced state.
pub(crate) trait Policy {
    /// Policy identity (for reports).
    fn kind(&self) -> SchedKind;

    /// Whether dispatch/queue operations go through the single global
    /// scheduler lock (true for FIFO/LIFO/DF — the paper's serialized
    /// scheduler; false for per-processor work stealing).
    fn global_lock(&self) -> bool {
        true
    }

    /// Whether fork preempts the parent and hands the child to the parent's
    /// processor (DF and child-first work stealing).
    fn preempt_on_fork(&self) -> bool {
        false
    }

    /// Per-quantum memory quota in bytes (DF policy only).
    fn quota(&self) -> Option<u64> {
        None
    }

    /// A thread was created on processor `on_proc`. `enqueue` is false when
    /// the engine will direct-hand the child to a processor
    /// (preempt-on-fork policies); the policy may still need a placeholder
    /// (DF's ordered list).
    #[allow(clippy::too_many_arguments)]
    fn on_create(
        &mut self,
        t: ThreadId,
        parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        on_proc: ProcId,
    );

    /// A thread became ready (woken, preempted, yielded, or parent re-queued
    /// after fork). `waker` is the processor that published the wakeup;
    /// `affinity` is the processor the thread last ran on (kernel
    /// processor-affinity hint — honoured by the queue policies, ignored by
    /// the DF policy, whose strict depth-first order is exactly the
    /// locality-blindness the paper's §5.3 discusses).
    fn on_ready(
        &mut self,
        t: ThreadId,
        prio: i32,
        at: VirtTime,
        waker: ProcId,
        affinity: Option<ProcId>,
    );

    /// A thread blocked (placeholder policies keep its position).
    fn on_block(&mut self, _t: ThreadId) {}

    /// A thread exited; drop any placeholder.
    fn on_exit(&mut self, _t: ThreadId) {}

    /// Processor `p` asks for a thread at virtual time `now`.
    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop;

    /// Number of ready (schedulable) entries, for diagnostics.
    fn ready_len(&self) -> usize;

    /// Number of successful steals over the run (0 for policies that never
    /// migrate work between processors).
    fn steals(&self) -> u64 {
        0
    }

    /// Processor the most recent successful steal took its thread from
    /// (flight-recorder provenance; `None` for non-stealing policies or
    /// when the victim deque was orphaned).
    fn last_steal_victim(&self) -> Option<ProcId> {
        None
    }

    /// Current number of live deques, for policies organized around deques
    /// (`None` for the single-queue policies).
    fn active_deques(&self) -> Option<usize> {
        None
    }
}

/// Instantiates the policy selected by `config`.
pub(crate) fn make_policy(config: &Config) -> Box<dyn Policy> {
    match config.scheduler {
        SchedKind::Fifo => Box::new(FifoSched::new()),
        SchedKind::Lifo => Box::new(LifoSched::new()),
        SchedKind::Df => Box::new(DfSched::new(config.quota.max(1))),
        SchedKind::DfLocal => Box::new(DfSched::with_window(
            config.quota.max(1),
            config.locality_window.max(1),
            config.processors,
        )),
        SchedKind::DfDeques => {
            Box::new(DfDequesSched::new(config.quota.max(1), config.processors))
        }
        SchedKind::Ws => {
            // Schedule perturbation re-keys the victim sequence: steal
            // targeting is the Ws policy's own schedule degree of freedom,
            // so each perturbation seed explores a different one.
            let seed = match config.perturb_seed {
                Some(ps) => config.seed ^ ps.rotate_left(17) ^ 0x9E37_79B9_7F4A_7C15,
                None => config.seed,
            };
            Box::new(WsSched::new(config.processors, seed))
        }
    }
}
