//! Randomized differential tests: the indexed schedulers must be
//! observationally identical to their naive references.
//!
//! Each case drives an optimized policy and its reference
//! ([`super::reference`]) through one randomly generated interleaving of
//! `on_create` / `on_ready` / `on_block` / `on_exit` / `pop` events that
//! respects the engine's calling contract (threads are created by running
//! threads, only running threads block or exit, only non-ready live
//! threads are readied, per-processor clocks advance independently so
//! publish times land in other processors' futures). After every event the
//! two must agree on `ready_len`, and every `pop` must return the **same**
//! `Pop` — including exact `NotYet` times: the engine charges a scheduling
//! operation per dispatch attempt, so a merely-conservative wake-up bound
//! would change virtual makespans downstream.
//!
//! Coverage (each seed is one interleaving):
//! * `DfSched` window 0 vs `RefDfSched`, single priority — 600 seeds
//! * `DfSched` window 0 vs `RefDfSched`, two priorities — 300 seeds
//! * `DfSched` window 3 (locality) vs `RefDfSched` window 3 — 300 seeds
//! * `DfDequesSched` vs `RefDfDequesSched` (+ steal-count check) — 600
//!   seeds
//!
//! 1800 interleavings × ~220 events ≈ 400k cross-checked operations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ptdf_smp::VirtTime;

use crate::sched::df::DfSched;
use crate::sched::dfdeques::DfDequesSched;
use crate::sched::reference::{RefDfDequesSched, RefDfSched};
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

#[derive(Debug, Clone, Copy, PartialEq)]
enum St {
    Ready,
    Running(usize),
    Blocked,
}

struct Driver {
    a: Box<dyn Policy>,
    b: Box<dyn Policy>,
    procs: usize,
    clocks: Vec<u64>,
    /// Live threads and their model state (engine's view).
    live: Vec<(ThreadId, St)>,
    next_tid: u32,
    prios: &'static [i32],
}

impl Driver {
    fn new(a: Box<dyn Policy>, b: Box<dyn Policy>, procs: usize, prios: &'static [i32]) -> Self {
        Driver {
            a,
            b,
            procs,
            clocks: vec![0; procs],
            live: Vec::new(),
            next_tid: 0,
            prios,
        }
    }

    fn check(&self, seed: u64, step: usize) {
        assert_eq!(
            self.a.ready_len(),
            self.b.ready_len(),
            "ready_len diverged (seed {seed}, step {step})"
        );
    }

    fn pick<F: Fn(&St) -> bool>(&self, rng: &mut SmallRng, f: F) -> Option<usize> {
        let hits: Vec<usize> = (0..self.live.len())
            .filter(|&i| f(&self.live[i].1))
            .collect();
        if hits.is_empty() {
            None
        } else {
            Some(hits[rng.gen_range(0..hits.len())])
        }
    }

    fn run(&mut self, seed: u64, steps: usize) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for step in 0..steps {
            match rng.gen_range(0u32..100) {
                // pop: the differential heart.
                0..=39 => {
                    let p = rng.gen_range(0..self.procs);
                    let now = VirtTime::from_ns(self.clocks[p]);
                    let ra = self.a.pop(p, now);
                    let rb = self.b.pop(p, now);
                    assert_eq!(ra, rb, "pop diverged (seed {seed}, step {step}, p {p})");
                    if let Pop::Got { tid, .. } = ra {
                        let slot = self
                            .live
                            .iter_mut()
                            .find(|(t, _)| *t == tid)
                            .expect("popped thread is live");
                        assert_eq!(slot.1, St::Ready, "popped a non-ready thread");
                        slot.1 = St::Running(p);
                        self.clocks[p] += rng.gen_range(1u64..50);
                    }
                }
                // create: parent = a running thread when one exists.
                40..=59 => {
                    let tid = ThreadId(self.next_tid);
                    self.next_tid += 1;
                    let by = self.pick(&mut rng, |s| matches!(s, St::Running(_)));
                    let (parent, p) = match by {
                        Some(i) => {
                            let (ptid, St::Running(p)) = self.live[i] else {
                                unreachable!()
                            };
                            (Some(ptid), p)
                        }
                        None => (None, rng.gen_range(0..self.procs)),
                    };
                    let prio = self.prios[rng.gen_range(0..self.prios.len())];
                    // enqueue=false models the engine's direct handoff: the
                    // child starts running without a dispatch.
                    let enqueue = parent.is_none() || rng.gen_bool(0.6);
                    let at = VirtTime::from_ns(self.clocks[p]);
                    self.a.on_create(tid, parent, prio, enqueue, at, p);
                    self.b.on_create(tid, parent, prio, enqueue, at, p);
                    let st = if enqueue { St::Ready } else { St::Running(p) };
                    self.live.push((tid, st));
                }
                // ready: wake a blocked thread, or re-queue (yield) a
                // running one. Published by an arbitrary processor at that
                // processor's clock, possibly ahead of everyone else.
                60..=77 => {
                    let Some(i) = self.pick(&mut rng, |s| {
                        matches!(s, St::Blocked) || matches!(s, St::Running(_))
                    }) else {
                        continue;
                    };
                    let tid = self.live[i].0;
                    let waker = match self.live[i].1 {
                        // A yielding thread is re-published by its own proc.
                        St::Running(p) => p,
                        _ => rng.gen_range(0..self.procs),
                    };
                    let at = VirtTime::from_ns(self.clocks[waker] + rng.gen_range(0u64..30));
                    let prio = self.prios[rng.gen_range(0..self.prios.len())];
                    let affinity = rng
                        .gen_bool(0.5)
                        .then(|| rng.gen_range(0..self.procs));
                    self.a.on_ready(tid, prio, at, waker, affinity);
                    self.b.on_ready(tid, prio, at, waker, affinity);
                    self.live[i].1 = St::Ready;
                }
                // block a running thread.
                78..=86 => {
                    let Some(i) = self.pick(&mut rng, |s| matches!(s, St::Running(_))) else {
                        continue;
                    };
                    let tid = self.live[i].0;
                    self.a.on_block(tid);
                    self.b.on_block(tid);
                    self.live[i].1 = St::Blocked;
                }
                // exit a running thread.
                87..=93 => {
                    let Some(i) = self.pick(&mut rng, |s| matches!(s, St::Running(_))) else {
                        continue;
                    };
                    let tid = self.live.swap_remove(i).0;
                    self.a.on_exit(tid);
                    self.b.on_exit(tid);
                }
                // advance a processor's clock (creates cross-proc skew and
                // occasional regressions relative to published times).
                _ => {
                    let p = rng.gen_range(0..self.procs);
                    self.clocks[p] += rng.gen_range(1u64..120);
                }
            }
            self.check(seed, step);
        }
        // Drain: every remaining entry must come out of both in the same
        // order once all clocks are far in the future.
        let far = VirtTime::from_ns(self.clocks.iter().max().unwrap() + 1_000_000);
        let mut spins = 0usize;
        while self.a.ready_len() > 0 {
            let p = spins % self.procs;
            let ra = self.a.pop(p, far);
            let rb = self.b.pop(p, far);
            assert_eq!(ra, rb, "drain pop diverged (seed {seed})");
            assert!(
                !matches!(ra, Pop::Empty | Pop::NotYet(_)),
                "ready entries must drain at time {far:?} (seed {seed})"
            );
            spins += 1;
        }
        assert_eq!(self.b.ready_len(), 0, "drain left entries (seed {seed})");
        assert_eq!(
            self.a.steals(),
            self.b.steals(),
            "steal counts diverged (seed {seed})"
        );
    }
}

const QUOTA: u64 = 4096;
const STEPS: usize = 220;

#[test]
fn df_matches_reference_single_priority() {
    for seed in 0..600u64 {
        let procs = 1 + (seed as usize % 4);
        let mut d = Driver::new(
            Box::new(DfSched::new(QUOTA)),
            Box::new(RefDfSched::new(QUOTA)),
            procs,
            &[0],
        );
        d.run(seed, STEPS);
    }
}

#[test]
fn df_matches_reference_two_priorities() {
    for seed in 0..300u64 {
        let procs = 1 + (seed as usize % 4);
        let mut d = Driver::new(
            Box::new(DfSched::new(QUOTA)),
            Box::new(RefDfSched::new(QUOTA)),
            procs,
            &[0, 1],
        );
        d.run(seed ^ 0xD1F2, STEPS);
    }
}

#[test]
fn df_locality_window_matches_reference() {
    for seed in 0..300u64 {
        let procs = 2 + (seed as usize % 3);
        let mut d = Driver::new(
            Box::new(DfSched::with_window(QUOTA, 3, procs)),
            Box::new(RefDfSched::with_window(QUOTA, 3, procs)),
            procs,
            &[0],
        );
        d.run(seed ^ 0x10CA_117F, STEPS);
    }
}

#[test]
fn dfdeques_matches_reference() {
    for seed in 0..600u64 {
        let procs = 2 + (seed as usize % 3);
        let mut d = Driver::new(
            Box::new(DfDequesSched::new(QUOTA, procs)),
            Box::new(RefDfDequesSched::new(QUOTA, procs)),
            procs,
            &[0],
        );
        d.run(seed ^ 0xDEC2, STEPS);
    }
}

/// The adversarial label-exhaustion pattern (repeated leftmost inserts)
/// must also survive a differential run with long lifetimes.
#[test]
fn df_matches_reference_deep_fork_chain() {
    for seed in 0..50u64 {
        let mut d = Driver::new(
            Box::new(DfSched::new(QUOTA)),
            Box::new(RefDfSched::new(QUOTA)),
            2,
            &[0],
        );
        d.run(seed ^ 0xF0_5CAD, 2000);
    }
}
