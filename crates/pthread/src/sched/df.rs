//! The paper's space-efficient depth-first scheduler (§4 item 2).
//!
//! A variation of the `S1 + O(p·D)` algorithm of Narlikar & Blelloch [35],
//! as retrofitted into the Solaris Pthreads library:
//!
//! * The scheduling queue holds an entry for **every live thread** — ready,
//!   blocked, or executing — kept in the *serial depth-first execution
//!   order*. Blocked/executing entries act as position placeholders.
//! * A newly forked child is inserted immediately to the **left** of its
//!   parent, and the parent is preempted so the processor runs the child
//!   (the engine direct-hands the child; the parent re-enters as ready at
//!   its placeholder).
//! * Dispatch takes the **leftmost ready** thread (highest priority level
//!   first; depth-first order within a level).
//! * Every dispatch grants a memory quota of `K` bytes; the allocation hook
//!   (in `mem.rs`) preempts a thread that exhausts it and inserts no-op
//!   dummy threads before allocations larger than `K`.
//!
//! # Indexed dispatch (amortized O(log n))
//!
//! The queue is a doubly-linked list over a slab, one list per priority
//! level. Earlier revisions scanned the list from the left on every `pop`
//! (O(live threads) when the left prefix is blocked placeholders or
//! future-published entries — exactly the paper-scale regime). The list now
//! carries **order labels**: every node owns a `u64` label strictly
//! increasing left-to-right within its level, assigned on insertion from
//! the gap between its neighbours (and rebuilt for the whole level on the
//! rare gap exhaustion — amortized O(1) per insert). Ready nodes are
//! indexed by label in two per-level structures:
//!
//! * `eligible` — a `BTreeSet<(label, node)>` of ready entries published at
//!   or before the latest dispatch clock; `pop` takes `first()` in O(log n)
//!   without visiting a single placeholder.
//! * `pending` — a min-heap of ready entries published in the future
//!   (cross-processor wakes); `pop` promotes entries whose `ready_at` has
//!   arrived and reads the earliest remaining one in O(1) for its `NotYet`
//!   answer, instead of rescanning every entry.
//!
//! Thread-id lookups use a dense `Vec` indexed by `ThreadId` (ids are
//! allocated sequentially by the engine), not a hash map.
//!
//! The naive-scan revision survives as `reference::RefDfSched`, and
//! randomized differential tests (`diff_tests`) prove both emit identical
//! `Pop` sequences.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

const NIL: usize = usize::MAX;

/// Preferred label gap consumed by one insertion. Biasing new labels close
/// to the *left* neighbour leaves room at the insertion point for the DF
/// pattern (children repeatedly inserted immediately left of their parent,
/// appends repeatedly inserted before the tail sentinel), so relabels stay
/// rare.
const LABEL_STRIDE: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Node {
    prev: usize,
    next: usize,
    tid: ThreadId,
    prio: i32,
    /// Order label: strictly increasing left-to-right within the level.
    label: u64,
    ready: bool,
    ready_at: VirtTime,
    /// Processor the thread last ran on (used only with a locality window).
    affinity: Option<ProcId>,
}

/// Per-priority-level index: sentinels of the order list plus the ready-set
/// structures described in the module docs.
#[derive(Debug, Default)]
struct Level {
    head: usize,
    tail: usize,
    eligible: BTreeSet<(u64, usize)>,
    pending: BinaryHeap<Reverse<(VirtTime, u64, usize)>>,
}

#[derive(Debug)]
pub(crate) struct DfSched {
    quota: u64,
    /// §5.3 locality window: 0 = strict depth-first order.
    window: usize,
    /// Per-processor hint: the thread that was serially adjacent (to the
    /// right) of the last thread this processor dispatched — "schedule
    /// threads that are close in the computation graph on the same
    /// processor" (paper §5.3).
    hint: Vec<Option<ThreadId>>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    levels: BTreeMap<i32, Level>,
    /// Priority keys of `levels`, descending (cached so multi-level `pop`
    /// allocates nothing).
    prio_desc: Vec<i32>,
    /// Dense `ThreadId -> slab index` table (`NIL` = no entry).
    pos: Vec<usize>,
    ready: usize,
    /// Latest dispatch clock observed; publishes at or before it go
    /// straight to `eligible`, later ones to `pending`.
    clock_hint: VirtTime,
    /// Peak number of live entries (ready + placeholders), for diagnostics.
    peak_entries: usize,
    entries: usize,
}

impl DfSched {
    pub fn new(quota: u64) -> Self {
        Self::with_window(quota, 0, 0)
    }

    /// DF with the §5.3 locality window (0 = strict order).
    pub fn with_window(quota: u64, window: usize, procs: usize) -> Self {
        DfSched {
            quota,
            window,
            hint: vec![None; procs],
            nodes: Vec::new(),
            free: Vec::new(),
            levels: BTreeMap::new(),
            prio_desc: Vec::new(),
            pos: Vec::new(),
            ready: 0,
            clock_hint: VirtTime::ZERO,
            peak_entries: 0,
            entries: 0,
        }
    }

    fn alloc_node(&mut self, tid: ThreadId, prio: i32) -> usize {
        let node = Node {
            prev: NIL,
            next: NIL,
            tid,
            prio,
            label: 0,
            ready: false,
            ready_at: VirtTime::ZERO,
            affinity: None,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Slab position of `t`'s entry, if it has one.
    fn pos_of(&self, t: ThreadId) -> Option<usize> {
        match self.pos.get(t.index()) {
            Some(&n) if n != NIL => Some(n),
            _ => None,
        }
    }

    fn set_pos(&mut self, t: ThreadId, n: usize) {
        let i = t.index();
        if i >= self.pos.len() {
            self.pos.resize(i + 1, NIL);
        }
        self.pos[i] = n;
    }

    fn level(&mut self, prio: i32) -> (usize, usize) {
        if let Some(level) = self.levels.get(&prio) {
            return (level.head, level.tail);
        }
        let head = self.alloc_node(ThreadId(u32::MAX), prio);
        let tail = self.alloc_node(ThreadId(u32::MAX), prio);
        self.nodes[head].next = tail;
        self.nodes[tail].prev = head;
        self.nodes[head].label = 0;
        self.nodes[tail].label = u64::MAX;
        self.levels.insert(
            prio,
            Level {
                head,
                tail,
                ..Level::default()
            },
        );
        self.prio_desc.push(prio);
        self.prio_desc.sort_unstable_by(|a, b| b.cmp(a));
        (head, tail)
    }

    /// A label strictly between `a` and `b`, biased toward `a` (see
    /// [`LABEL_STRIDE`]); `None` when the gap is exhausted.
    fn label_between(a: u64, b: u64) -> Option<u64> {
        let gap = b - a;
        if gap <= 1 {
            None
        } else {
            Some(a + (gap / 2).min(LABEL_STRIDE))
        }
    }

    /// Links node `n` immediately before node `before`, assigning it an
    /// order label (relabeling the level on gap exhaustion).
    fn link_before(&mut self, n: usize, before: usize, prio: i32) {
        let prev = self.nodes[before].prev;
        let label = match Self::label_between(self.nodes[prev].label, self.nodes[before].label) {
            Some(l) => l,
            None => {
                self.relabel(prio);
                Self::label_between(self.nodes[prev].label, self.nodes[before].label)
                    .expect("relabel must open a gap")
            }
        };
        self.nodes[n].label = label;
        self.nodes[n].prev = prev;
        self.nodes[n].next = before;
        self.nodes[prev].next = n;
        self.nodes[before].prev = n;
    }

    /// Re-spaces all labels of a level and rebuilds its ready indexes.
    /// O(level size), amortized away by [`LABEL_STRIDE`]-spaced inserts.
    fn relabel(&mut self, prio: i32) {
        let level = self.levels.get_mut(&prio).expect("relabel of a live level");
        let (head, tail) = (level.head, level.tail);
        let mut cur = self.nodes[head].next;
        let mut label = 0u64;
        while cur != tail {
            label += LABEL_STRIDE;
            self.nodes[cur].label = label;
            cur = self.nodes[cur].next;
        }
        let level = self.levels.get_mut(&prio).expect("relabel of a live level");
        let nodes = &self.nodes;
        level.eligible = level
            .eligible
            .iter()
            .map(|&(_, idx)| (nodes[idx].label, idx))
            .collect();
        let pending = std::mem::take(&mut level.pending);
        level.pending = pending
            .into_iter()
            .map(|Reverse((at, _, idx))| Reverse((at, nodes[idx].label, idx)))
            .collect();
    }

    fn unlink(&mut self, n: usize) {
        let (prev, next) = (self.nodes[n].prev, self.nodes[n].next);
        self.nodes[prev].next = next;
        self.nodes[next].prev = prev;
    }

    /// Indexes a freshly readied node under its level.
    fn publish(&mut self, n: usize) {
        debug_assert!(self.nodes[n].ready);
        let (prio, label, at) = {
            let node = &self.nodes[n];
            (node.prio, node.label, node.ready_at)
        };
        let level = self.levels.get_mut(&prio).expect("publish into a live level");
        if at <= self.clock_hint {
            level.eligible.insert((label, n));
        } else {
            level.pending.push(Reverse((at, label, n)));
        }
    }

    /// Peak live-entry count over the run (diagnostics).
    #[allow(dead_code)]
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Marks node `cur` dispatched on processor `p` and records its right
    /// neighbour as the processor's graph-adjacency hint. The caller has
    /// already removed the node from its level's `eligible` set.
    fn take(&mut self, cur: usize, p: ProcId) {
        self.nodes[cur].ready = false;
        self.ready -= 1;
        if let Some(slot) = self.hint.get_mut(p) {
            let next = self.nodes[cur].next;
            *slot = (self.nodes[next].tid != ThreadId(u32::MAX)).then(|| self.nodes[next].tid);
        }
    }

    /// Moves every pending entry whose publish time has arrived into the
    /// eligible set.
    fn promote(level: &mut Level, now: VirtTime) {
        while let Some(&Reverse((at, label, idx))) = level.pending.peek() {
            if at > now {
                break;
            }
            level.pending.pop();
            level.eligible.insert((label, idx));
        }
    }

    /// Dispatch attempt within one priority level. Returns the chosen slab
    /// index, accumulating the earliest future publish time into
    /// `earliest` when nothing is eligible.
    fn pop_level(
        &mut self,
        prio: i32,
        p: ProcId,
        now: VirtTime,
        earliest: &mut Option<VirtTime>,
    ) -> Option<usize> {
        let hint = if self.window == 0 {
            None
        } else {
            self.hint.get(p).copied().flatten()
        };
        let window = self.window;
        let level = self.levels.get_mut(&prio).expect("pop of a live level");
        Self::promote(level, now);
        let nodes = &self.nodes;
        fn note(at: VirtTime, earliest: &mut Option<VirtTime>) {
            *earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
        }
        let mut chosen: Option<(u64, usize)> = None;
        if window == 0 {
            // Strict order: leftmost eligible. Entries with a future
            // `ready_at` can linger here only after a clock regression
            // across processors; skipping them keeps causality exact.
            for &(label, idx) in level.eligible.iter() {
                let node = &nodes[idx];
                if node.ready_at <= now {
                    chosen = Some((label, idx));
                    break;
                }
                note(node.ready_at, earliest);
            }
        } else {
            // §5.3 locality window: a graph-adjacency or affinity match
            // within the first `window` eligible entries beats the
            // leftmost.
            let mut first: Option<(u64, usize)> = None;
            let mut affine: Option<(u64, usize)> = None;
            let mut hinted: Option<(u64, usize)> = None;
            let mut inspected = 0usize;
            for &(label, idx) in level.eligible.iter() {
                let node = &nodes[idx];
                if node.ready_at > now {
                    note(node.ready_at, earliest);
                    continue;
                }
                if hint == Some(node.tid) {
                    hinted = Some((label, idx));
                }
                if affine.is_none() && node.affinity == Some(p) {
                    affine = Some((label, idx));
                }
                if first.is_none() {
                    first = Some((label, idx));
                }
                inspected += 1;
                if inspected >= window {
                    break;
                }
            }
            chosen = hinted.or(affine).or(first);
        }
        if let Some(key) = chosen {
            level.eligible.remove(&key);
            return Some(key.1);
        }
        if let Some(&Reverse((at, _, _))) = level.pending.peek() {
            note(at, earliest);
        }
        None
    }
}

impl Policy for DfSched {
    fn kind(&self) -> SchedKind {
        if self.window == 0 {
            SchedKind::Df
        } else {
            SchedKind::DfLocal
        }
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        // Ensure the level exists before anchoring against it.
        let (_, tail) = self.level(prio);
        let n = self.alloc_node(t, prio);
        self.nodes[n].ready = enqueue;
        self.nodes[n].ready_at = at;
        // Placement: immediately left of the parent's placeholder when the
        // parent lives at the same priority level (the serial depth-first
        // position); otherwise at the tail of the child's level (a fresh
        // serial order for that level).
        let anchor = parent
            .and_then(|par| {
                let pn = self.pos_of(par)?;
                (self.nodes[pn].prio == prio).then_some(pn)
            })
            .unwrap_or(tail);
        self.link_before(n, anchor, prio);
        self.set_pos(t, n);
        if enqueue {
            self.ready += 1;
            self.publish(n);
        }
        self.entries += 1;
        self.peak_entries = self.peak_entries.max(self.entries);
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        _waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        let n = self.pos_of(t).expect("readied thread has a placeholder");
        debug_assert!(!self.nodes[n].ready, "double ready for {t}");
        self.nodes[n].ready = true;
        self.nodes[n].ready_at = at;
        self.nodes[n].affinity = _affinity;
        self.ready += 1;
        self.publish(n);
    }

    fn on_block(&mut self, t: ThreadId) {
        // Blocked threads keep their placeholder; they are simply not ready.
        let n = self.pos_of(t).expect("blocked thread has a placeholder");
        debug_assert!(!self.nodes[n].ready, "blocking a queued thread {t}");
        let _ = n;
    }

    fn on_exit(&mut self, t: ThreadId) {
        let n = self.pos_of(t).expect("exiting thread has a placeholder");
        self.pos[t.index()] = NIL;
        debug_assert!(!self.nodes[n].ready, "exiting thread still queued");
        self.unlink(n);
        self.free.push(n);
        self.entries -= 1;
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        if now > self.clock_hint {
            self.clock_hint = now;
        }
        let mut earliest: Option<VirtTime> = None;
        if self.prio_desc.len() == 1 {
            // Almost every program runs at a single priority level; skip
            // the key iteration for that case.
            let prio = self.prio_desc[0];
            if let Some(idx) = self.pop_level(prio, p, now, &mut earliest) {
                let tid = self.nodes[idx].tid;
                self.take(idx, p);
                return Pop::Got { tid, stolen: false };
            }
        } else {
            for i in 0..self.prio_desc.len() {
                let prio = self.prio_desc[i];
                if let Some(idx) = self.pop_level(prio, p, now, &mut earliest) {
                    let tid = self.nodes[idx].tid;
                    self.take(idx, p);
                    return Pop::Got { tid, stolen: false };
                }
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId) -> Pop {
        Pop::Got { tid, stolen: false }
    }

    #[test]
    fn child_left_of_parent_runs_first() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0))); // root dispatched
        // Root forks two children (preempt-on-fork: placeholders, not ready).
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        // Parent re-queued at its placeholder; child 1 is direct-handed.
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        // Child 1 later yields: becomes ready at its (leftmost) position.
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        // Leftmost ready is the child, not the parent.
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn serial_order_maintained_across_generations() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Root forks c1 then c2: each inserted immediately left of root, so
        // the order is [c1, c2, root] (c1 forked first = leftmost = first in
        // serial depth-first order).
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0))); // engine re-runs root (handoff skipped in this unit test)
        s.on_create(t(2), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn blocked_placeholder_preserves_position() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        // Child 1 runs (handoff), then blocks: placeholder stays left of root.
        s.on_block(t(1));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Child wakes: it is again leftmost.
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
    }

    #[test]
    fn exit_unlinks_and_slab_reuses() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_exit(t(1));
        s.on_create(t(2), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn higher_priority_level_wins_regardless_of_order() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        s.on_create(t(1), None, 3, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn locality_window_prefers_affine_within_window() {
        let mut s = DfSched::with_window(1024, 4, 16);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Three children, placeholders left of root; mark ready with
        // affinities for different processors.
        for i in 1..=3 {
            s.on_create(t(i), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        }
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, Some(5));
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, Some(7));
        s.on_ready(t(3), 0, VirtTime::ZERO, 0, Some(5));
        // Processor 7 takes its own t2 even though t1 is leftmost.
        assert_eq!(s.pop(7, VirtTime::ZERO), got(t(2)));
        // Processor 9 has no match: leftmost eligible.
        assert_eq!(s.pop(9, VirtTime::ZERO), got(t(1)));
    }

    #[test]
    fn locality_window_bounds_the_search() {
        let mut s = DfSched::with_window(1024, 2, 16);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        for i in 1..=4 {
            s.on_create(t(i), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        }
        // Ready order (left to right): t1, t2, t3, t4 — t4's affinity
        // matches processor 3 but lies beyond the window of 2.
        for i in 1..=4 {
            let aff = if i == 4 { Some(3) } else { Some(8) };
            s.on_ready(t(i), 0, VirtTime::ZERO, 0, aff);
        }
        assert_eq!(
            s.pop(3, VirtTime::ZERO),
            got(t(1)),
            "match outside the window must not override depth-first order"
        );
    }

    #[test]
    fn future_ready_at_respected() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::from_ns(100), 0);
        assert_eq!(s.pop(0, VirtTime::from_ns(10)), Pop::NotYet(VirtTime::from_ns(100)));
        assert_eq!(s.pop(0, VirtTime::from_ns(100)), got(t(0)));
    }

    #[test]
    fn relabel_preserves_order_under_adversarial_inserts() {
        // Repeatedly insert before the same anchor to exhaust label gaps;
        // dispatch order must stay the exact list order throughout.
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        let n = 5000;
        for i in 1..=n {
            s.on_create(t(i), Some(t(0)), 0, false, VirtTime::ZERO, 0);
            s.on_ready(t(i), 0, VirtTime::ZERO, 0, None);
        }
        // List order is [t1, t2, ..., tn, t0]; all ready except t0.
        for i in 1..=n {
            assert_eq!(s.pop(0, VirtTime::ZERO), got(t(i)), "at {i}");
            s.on_exit(t(i));
        }
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }
}
