//! The paper's space-efficient depth-first scheduler (§4 item 2).
//!
//! A variation of the `S1 + O(p·D)` algorithm of Narlikar & Blelloch [35],
//! as retrofitted into the Solaris Pthreads library:
//!
//! * The scheduling queue holds an entry for **every live thread** — ready,
//!   blocked, or executing — kept in the *serial depth-first execution
//!   order*. Blocked/executing entries act as position placeholders.
//! * A newly forked child is inserted immediately to the **left** of its
//!   parent, and the parent is preempted so the processor runs the child
//!   (the engine direct-hands the child; the parent re-enters as ready at
//!   its placeholder).
//! * Dispatch takes the **leftmost ready** thread (highest priority level
//!   first; depth-first order within a level).
//! * Every dispatch grants a memory quota of `K` bytes; the allocation hook
//!   (in `mem.rs`) preempts a thread that exhausts it and inserts no-op
//!   dummy threads before allocations larger than `K`.
//!
//! The queue is a doubly-linked list over a slab, one list per priority
//! level. All operations are O(1) except `pop`, which scans from the left
//! for the first ready entry — cheap in practice precisely because this
//! scheduler keeps the live-thread count small.

use std::collections::{BTreeMap, HashMap};

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    prev: usize,
    next: usize,
    tid: ThreadId,
    ready: bool,
    ready_at: VirtTime,
    /// Processor the thread last ran on (used only with a locality window).
    affinity: Option<ProcId>,
}

#[derive(Debug)]
pub(crate) struct DfSched {
    quota: u64,
    /// §5.3 locality window: 0 = strict depth-first order.
    window: usize,
    /// Per-processor hint: the thread that was serially adjacent (to the
    /// right) of the last thread this processor dispatched — "schedule
    /// threads that are close in the computation graph on the same
    /// processor" (paper §5.3).
    hint: Vec<Option<ThreadId>>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// priority → (head sentinel, tail sentinel).
    lists: BTreeMap<i32, (usize, usize)>,
    pos: HashMap<ThreadId, usize>,
    prio_of: HashMap<ThreadId, i32>,
    ready: usize,
    /// Peak number of live entries (ready + placeholders), for diagnostics.
    peak_entries: usize,
    entries: usize,
}

impl DfSched {
    pub fn new(quota: u64) -> Self {
        Self::with_window(quota, 0, 0)
    }

    /// DF with the §5.3 locality window (0 = strict order).
    pub fn with_window(quota: u64, window: usize, procs: usize) -> Self {
        DfSched {
            quota,
            window,
            hint: vec![None; procs],
            nodes: Vec::new(),
            free: Vec::new(),
            lists: BTreeMap::new(),
            pos: HashMap::new(),
            prio_of: HashMap::new(),
            ready: 0,
            peak_entries: 0,
            entries: 0,
        }
    }

    fn alloc_node(&mut self, tid: ThreadId) -> usize {
        let node = Node {
            prev: NIL,
            next: NIL,
            tid,
            ready: false,
            ready_at: VirtTime::ZERO,
            affinity: None,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn level(&mut self, prio: i32) -> (usize, usize) {
        if let Some(&hs) = self.lists.get(&prio) {
            return hs;
        }
        let head = self.alloc_node(ThreadId(u32::MAX));
        let tail = self.alloc_node(ThreadId(u32::MAX));
        self.nodes[head].next = tail;
        self.nodes[tail].prev = head;
        self.lists.insert(prio, (head, tail));
        (head, tail)
    }

    /// Links node `n` immediately before node `before`.
    fn link_before(&mut self, n: usize, before: usize) {
        let prev = self.nodes[before].prev;
        self.nodes[n].prev = prev;
        self.nodes[n].next = before;
        self.nodes[prev].next = n;
        self.nodes[before].prev = n;
    }

    fn unlink(&mut self, n: usize) {
        let (prev, next) = (self.nodes[n].prev, self.nodes[n].next);
        self.nodes[prev].next = next;
        self.nodes[next].prev = prev;
    }

    /// Peak live-entry count over the run (diagnostics).
    #[allow(dead_code)]
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
    }

    /// Marks node `cur` dispatched on processor `p` and records its right
    /// neighbour as the processor's graph-adjacency hint.
    fn take(&mut self, cur: usize, p: ProcId) {
        self.nodes[cur].ready = false;
        self.ready -= 1;
        if let Some(slot) = self.hint.get_mut(p) {
            let next = self.nodes[cur].next;
            *slot = (self.nodes[next].tid != ThreadId(u32::MAX)).then(|| self.nodes[next].tid);
        }
    }
}

impl Policy for DfSched {
    fn kind(&self) -> SchedKind {
        if self.window == 0 {
            SchedKind::Df
        } else {
            SchedKind::DfLocal
        }
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        let n = self.alloc_node(t);
        self.nodes[n].ready = enqueue;
        self.nodes[n].ready_at = at;
        // Placement: immediately left of the parent's placeholder when the
        // parent lives at the same priority level (the serial depth-first
        // position); otherwise at the tail of the child's level (a fresh
        // serial order for that level).
        let anchor = parent
            .and_then(|p| {
                if self.prio_of.get(&p) == Some(&prio) {
                    self.pos.get(&p).copied()
                } else {
                    None
                }
            })
            .unwrap_or_else(|| self.level(prio).1);
        self.link_before(n, anchor);
        self.pos.insert(t, n);
        self.prio_of.insert(t, prio);
        if enqueue {
            self.ready += 1;
        }
        self.entries += 1;
        self.peak_entries = self.peak_entries.max(self.entries);
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        _waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        let n = self.pos[&t];
        debug_assert!(!self.nodes[n].ready, "double ready for {t}");
        self.nodes[n].ready = true;
        self.nodes[n].ready_at = at;
        self.nodes[n].affinity = _affinity;
        self.ready += 1;
    }

    fn on_block(&mut self, t: ThreadId) {
        // Blocked threads keep their placeholder; they are simply not ready.
        let n = self.pos[&t];
        debug_assert!(!self.nodes[n].ready, "blocking a queued thread {t}");
    }

    fn on_exit(&mut self, t: ThreadId) {
        let n = self.pos.remove(&t).expect("exiting thread has a placeholder");
        self.prio_of.remove(&t);
        debug_assert!(!self.nodes[n].ready, "exiting thread still queued");
        self.unlink(n);
        self.free.push(n);
        self.entries -= 1;
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        // Almost every program runs at a single priority level; avoid a
        // per-dispatch allocation for that case.
        let mut single: [(usize, usize); 1] = [(NIL, NIL)];
        let levels: &[(usize, usize)] = if self.lists.len() == 1 {
            single[0] = *self.lists.values().next().expect("one level");
            &single
        } else {
            return self.pop_multi_level(p, now);
        };
        for &(head, tail) in levels {
            // Leftmost eligible wins; with a locality window, a match for
            // this processor within the first `window` eligible entries
            // wins instead.
            let hint = self.hint.get(p).copied().flatten();
            let mut first: Option<usize> = None;
            let mut affine: Option<usize> = None;
            let mut hinted: Option<usize> = None;
            let mut inspected = 0usize;
            let mut cur = self.nodes[head].next;
            while cur != tail {
                let node = &self.nodes[cur];
                if node.ready {
                    if node.ready_at <= now {
                        if self.window == 0 {
                            let tid = node.tid;
                            self.take(cur, p);
                            return Pop::Got { tid, stolen: false };
                        }
                        if hint == Some(node.tid) {
                            hinted = Some(cur);
                        }
                        if affine.is_none() && node.affinity == Some(p) {
                            affine = Some(cur);
                        }
                        if first.is_none() {
                            first = Some(cur);
                        }
                        inspected += 1;
                        if inspected >= self.window {
                            break;
                        }
                    } else {
                        let at = node.ready_at;
                        earliest =
                            Some(earliest.map_or(at, |e: VirtTime| if at < e { at } else { e }));
                    }
                }
                cur = self.nodes[cur].next;
            }
            // Graph-adjacency hint beats thread affinity beats leftmost.
            if let Some(cur) = hinted.or(affine) {
                let tid = self.nodes[cur].tid;
                self.take(cur, p);
                return Pop::Got { tid, stolen: false };
            }
            if let Some(cur) = first {
                let tid = self.nodes[cur].tid;
                self.take(cur, p);
                return Pop::Got { tid, stolen: false };
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

impl DfSched {
    /// General multi-priority dispatch path (allocates a level snapshot).
    fn pop_multi_level(&mut self, p: ProcId, now: VirtTime) -> Pop {
        let mut earliest: Option<VirtTime> = None;
        let levels: Vec<(usize, usize)> = self.lists.values().rev().copied().collect();
        for (head, tail) in levels {
            let hint = self.hint.get(p).copied().flatten();
            let mut first: Option<usize> = None;
            let mut affine: Option<usize> = None;
            let mut hinted: Option<usize> = None;
            let mut inspected = 0usize;
            let mut cur = self.nodes[head].next;
            while cur != tail {
                let node = &self.nodes[cur];
                if node.ready {
                    if node.ready_at <= now {
                        if self.window == 0 {
                            let tid = node.tid;
                            self.take(cur, p);
                            return Pop::Got { tid, stolen: false };
                        }
                        if hint == Some(node.tid) {
                            hinted = Some(cur);
                        }
                        if affine.is_none() && node.affinity == Some(p) {
                            affine = Some(cur);
                        }
                        if first.is_none() {
                            first = Some(cur);
                        }
                        inspected += 1;
                        if inspected >= self.window {
                            break;
                        }
                    } else {
                        let at = node.ready_at;
                        earliest =
                            Some(earliest.map_or(at, |e: VirtTime| if at < e { at } else { e }));
                    }
                }
                cur = self.nodes[cur].next;
            }
            if let Some(cur) = hinted.or(affine).or(first) {
                let tid = self.nodes[cur].tid;
                self.take(cur, p);
                return Pop::Got { tid, stolen: false };
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId) -> Pop {
        Pop::Got { tid, stolen: false }
    }

    #[test]
    fn child_left_of_parent_runs_first() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0))); // root dispatched
        // Root forks two children (preempt-on-fork: placeholders, not ready).
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        // Parent re-queued at its placeholder; child 1 is direct-handed.
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        // Child 1 later yields: becomes ready at its (leftmost) position.
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        // Leftmost ready is the child, not the parent.
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn serial_order_maintained_across_generations() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Root forks c1 then c2: each inserted immediately left of root, so
        // the order is [c1, c2, root] (c1 forked first = leftmost = first in
        // serial depth-first order).
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0))); // engine re-runs root (handoff skipped in this unit test)
        s.on_create(t(2), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn blocked_placeholder_preserves_position() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        // Child 1 runs (handoff), then blocks: placeholder stays left of root.
        s.on_block(t(1));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Child wakes: it is again leftmost.
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
    }

    #[test]
    fn exit_unlinks_and_slab_reuses() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        s.on_create(t(1), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_exit(t(1));
        s.on_create(t(2), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(0), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn higher_priority_level_wins_regardless_of_order() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        s.on_create(t(1), None, 3, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
    }

    #[test]
    fn locality_window_prefers_affine_within_window() {
        let mut s = DfSched::with_window(1024, 4, 16);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        // Three children, placeholders left of root; mark ready with
        // affinities for different processors.
        for i in 1..=3 {
            s.on_create(t(i), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        }
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, Some(5));
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, Some(7));
        s.on_ready(t(3), 0, VirtTime::ZERO, 0, Some(5));
        // Processor 7 takes its own t2 even though t1 is leftmost.
        assert_eq!(s.pop(7, VirtTime::ZERO), got(t(2)));
        // Processor 9 has no match: leftmost eligible.
        assert_eq!(s.pop(9, VirtTime::ZERO), got(t(1)));
    }

    #[test]
    fn locality_window_bounds_the_search() {
        let mut s = DfSched::with_window(1024, 2, 16);
        s.on_create(t(0), None, 0, true, VirtTime::ZERO, 0);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(0)));
        for i in 1..=4 {
            s.on_create(t(i), Some(t(0)), 0, false, VirtTime::ZERO, 0);
        }
        // Ready order (left to right): t1, t2, t3, t4 — t4's affinity
        // matches processor 3 but lies beyond the window of 2.
        for i in 1..=4 {
            let aff = if i == 4 { Some(3) } else { Some(8) };
            s.on_ready(t(i), 0, VirtTime::ZERO, 0, aff);
        }
        assert_eq!(
            s.pop(3, VirtTime::ZERO),
            got(t(1)),
            "match outside the window must not override depth-first order"
        );
    }

    #[test]
    fn future_ready_at_respected() {
        let mut s = DfSched::new(1024);
        s.on_create(t(0), None, 0, true, VirtTime::from_ns(100), 0);
        assert_eq!(s.pop(0, VirtTime::from_ns(10)), Pop::NotYet(VirtTime::from_ns(100)));
        assert_eq!(s.pop(0, VirtTime::from_ns(100)), got(t(0)));
    }
}
