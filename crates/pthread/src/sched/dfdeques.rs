//! Parallelized depth-first scheduler in the style of `DFDeques` — the
//! paper's §6 scalability future work ("our space-efficient scheduler
//! maintains a globally ordered list of threads; accesses are serialized by
//! a lock… a parallelized implementation of the scheduler, such as the one
//! described elsewhere [34], would be required to ensure further
//! scalability").
//!
//! Design (after Narlikar's DFDeques):
//!
//! * Each processor owns a **deque** of ready threads and works on its own
//!   deque child-first (LIFO), exactly like work stealing — no global lock
//!   on the fast path.
//! * The deques themselves are kept in a **global depth-first order**: the
//!   threads of a left deque precede those of a right deque in the serial
//!   execution order.
//! * An idle processor steals the **top (serially earliest) thread of the
//!   leftmost stealable deque** and starts a fresh deque of its own placed
//!   immediately to the *left* of the victim — preserving the global order
//!   invariant. A deque whose top thread is not yet eligible (published in
//!   the thief's causal future) is **not stealable**: stealing from behind
//!   an ineligible top would hand out a serially *later* thread while
//!   claiming the leftmost position, breaking the order invariant.
//! * The per-dispatch memory quota applies as in the serial DF scheduler.
//!
//! This trades a slightly looser space bound (`S1 + O(K · p · D)` still
//! holds; constants grow) for scalability: dispatches touch only one deque,
//! and only steals touch the shared order list. The engine charges steals
//! an extra context-switch cost and skips the global scheduler lock.
//!
//! # Indexed dispatch (amortized O(log n))
//!
//! Earlier revisions walked **every item of every deque** on each failed
//! dispatch to compute the earliest future publish time for `Pop::NotYet`
//! (and used middle removals in `VecDeque`s). The hot paths are now
//! indexed, with answers *identical* to the naive walk (proved by the
//! randomized differential tests in `diff_tests`):
//!
//! * Each deque caches the exact minimum publish time over its live items
//!   (`min_hint`), invalidated only when the minimum item leaves and
//!   recomputed lazily by the next full scan — so an owner repeatedly
//!   polling a deque of future-published items pays O(1) per poll, not
//!   O(len).
//! * A global lazy-deletion min-heap over **deque fronts** (keyed by
//!   publish time, invalidated by per-deque stamps) answers "is any deque
//!   stealable, and if not, when does that change?" in O(log). The
//!   left-to-right order walk now runs only when a steal is guaranteed to
//!   succeed, and checks one front per deque — O(victim position), not
//!   O(total items).
//! * Owner removals from the middle of a deque mark a **tombstone**
//!   instead of shifting half the `VecDeque`; tombstones are swept when
//!   they reach either end.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Item {
    tid: ThreadId,
    /// Publish (ready) time: a processor may only consume this entry at or
    /// after `at`.
    at: VirtTime,
    /// Tombstone: logically removed by an owner pop, physically swept when
    /// it reaches either end of the deque.
    dead: bool,
}

#[derive(Debug)]
struct Deque {
    prev: usize,
    next: usize,
    /// Front = serially earliest (steal end); back = newest (owner end).
    items: VecDeque<Item>,
    /// Non-tombstone item count; `items` is fully drained when this is 0.
    live_items: usize,
    /// Exact minimum `at` over live items when `Some`; `None` = unknown
    /// (the minimum item may have been removed since last computed).
    min_hint: Option<VirtTime>,
    owner: Option<ProcId>,
    live: bool,
    /// Bumped on every front change; invalidates `fronts` heap entries.
    stamp: u64,
}

#[derive(Debug)]
pub(crate) struct DfDequesSched {
    quota: u64,
    deques: Vec<Deque>,
    free: Vec<usize>,
    /// Sentinels of the global deque order.
    head: usize,
    tail: usize,
    /// Each processor's current deque (if any).
    own: Vec<Option<usize>>,
    ready: usize,
    steals: u64,
    last_victim: Option<ProcId>,
    /// Lazy-deletion min-heap of deque fronts: (publish time, deque,
    /// stamp). An entry is valid iff the deque is live and the stamp
    /// matches; then the deque's front is a live item published at that
    /// time.
    fronts: BinaryHeap<Reverse<(VirtTime, usize, u64)>>,
    next_stamp: u64,
}

impl DfDequesSched {
    pub fn new(quota: u64, procs: usize) -> Self {
        let mut s = DfDequesSched {
            quota,
            deques: Vec::new(),
            free: Vec::new(),
            head: 0,
            tail: 0,
            own: vec![None; procs],
            ready: 0,
            steals: 0,
            last_victim: None,
            fronts: BinaryHeap::new(),
            next_stamp: 0,
        };
        s.head = s.alloc();
        s.tail = s.alloc();
        s.deques[s.head].next = s.tail;
        s.deques[s.tail].prev = s.head;
        s
    }

    fn alloc(&mut self) -> usize {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        let d = Deque {
            prev: NIL,
            next: NIL,
            items: VecDeque::new(),
            live_items: 0,
            min_hint: None,
            owner: None,
            live: true,
            stamp,
        };
        if let Some(i) = self.free.pop() {
            self.deques[i] = d;
            i
        } else {
            self.deques.push(d);
            self.deques.len() - 1
        }
    }

    fn link_before(&mut self, d: usize, before: usize) {
        let prev = self.deques[before].prev;
        self.deques[d].prev = prev;
        self.deques[d].next = before;
        self.deques[prev].next = d;
        self.deques[before].prev = d;
    }

    fn unlink(&mut self, d: usize) {
        let (prev, next) = (self.deques[d].prev, self.deques[d].next);
        self.deques[prev].next = next;
        self.deques[next].prev = prev;
        self.deques[d].live = false;
        self.free.push(d);
    }

    /// Sweeps tombstones that reached either end, keeping the invariant
    /// that the physical front/back of a non-empty deque are live items.
    fn drain_dead(&mut self, d: usize) {
        let items = &mut self.deques[d].items;
        while items.front().is_some_and(|it| it.dead) {
            items.pop_front();
        }
        while items.back().is_some_and(|it| it.dead) {
            items.pop_back();
        }
    }

    /// Re-registers `d`'s front in the steal index after any mutation that
    /// may have changed it. Invalidates prior entries via the stamp.
    fn refresh_front(&mut self, d: usize) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.deques[d].stamp = stamp;
        if let Some(it) = self.deques[d].items.front() {
            debug_assert!(!it.dead, "front tombstone survived drain");
            self.fronts.push(Reverse((it.at, d, stamp)));
        }
    }

    /// Appends a ready item to `d` (owner end), maintaining the indexes.
    fn push_item(&mut self, d: usize, tid: ThreadId, at: VirtTime) {
        let dq = &mut self.deques[d];
        let was_empty = dq.live_items == 0;
        dq.items.push_back(Item { tid, at, dead: false });
        dq.live_items += 1;
        dq.min_hint = if was_empty {
            Some(at)
        } else {
            dq.min_hint.map(|m| if at < m { at } else { m })
        };
        if was_empty {
            self.refresh_front(d);
        }
        self.ready += 1;
    }

    /// Removes the live item at physical index `i` for the owner (tombstone
    /// for middle positions, direct pop at the back). Returns its id.
    fn take_at(&mut self, d: usize, i: usize) -> ThreadId {
        let dq = &mut self.deques[d];
        let (tid, at) = {
            let it = &dq.items[i];
            debug_assert!(!it.dead, "taking a tombstone");
            (it.tid, it.at)
        };
        if i + 1 == dq.items.len() {
            dq.items.pop_back();
        } else {
            dq.items[i].dead = true;
        }
        dq.live_items -= 1;
        if dq.min_hint == Some(at) {
            dq.min_hint = None; // the minimum may be gone; recompute lazily
        }
        self.drain_dead(d);
        self.refresh_front(d);
        self.ready -= 1;
        tid
    }

    /// Steals the front item of `d`. Returns its id.
    fn steal_front(&mut self, d: usize) -> ThreadId {
        let it = self.deques[d]
            .items
            .pop_front()
            .expect("stealing from an empty deque");
        debug_assert!(!it.dead, "front tombstone survived drain");
        self.deques[d].live_items -= 1;
        if self.deques[d].min_hint == Some(it.at) {
            self.deques[d].min_hint = None;
        }
        self.drain_dead(d);
        self.refresh_front(d);
        self.ready -= 1;
        self.steals += 1;
        it.tid
    }

    /// Minimum valid entry of the front index: the earliest-published front
    /// among all live non-empty deques. Amortized O(log) — each stale
    /// entry is discarded exactly once.
    fn valid_front_min(&mut self) -> Option<(VirtTime, usize)> {
        while let Some(&Reverse((at, d, stamp))) = self.fronts.peek() {
            let dq = &self.deques[d];
            if dq.live && dq.stamp == stamp {
                return Some((at, d));
            }
            self.fronts.pop();
        }
        None
    }

    /// The deque processor `p` currently owns, creating one at the far
    /// right (fresh serial order) if needed.
    fn own_or_new(&mut self, p: ProcId) -> usize {
        if let Some(d) = self.own[p] {
            if self.deques[d].live {
                return d;
            }
        }
        let d = self.alloc();
        let tail = self.tail;
        self.link_before(d, tail);
        self.deques[d].owner = Some(p);
        self.own[p] = Some(d);
        d
    }

    /// Drops `p`'s deque if it is empty (keeping empty deques in the order
    /// would let them pile up).
    fn gc_own(&mut self, p: ProcId) {
        if let Some(d) = self.own[p] {
            if self.deques[d].live && self.deques[d].live_items == 0 {
                self.unlink(d);
                self.own[p] = None;
            }
        }
    }
}

impl Policy for DfDequesSched {
    fn kind(&self) -> SchedKind {
        SchedKind::DfDeques
    }

    fn global_lock(&self) -> bool {
        false // the whole point: per-deque operations
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn steals(&self) -> u64 {
        self.steals
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        _prio: i32,
        enqueue: bool,
        at: VirtTime,
        on_proc: ProcId,
    ) {
        if enqueue {
            // Root and dummy threads go on the creating processor's deque
            // (dummies thereby throttle the allocating processor's own
            // serial position, as in the serial DF scheduler).
            let d = self.own_or_new(on_proc);
            self.push_item(d, t, at);
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        let d = self.own_or_new(waker);
        self.push_item(d, t, at);
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        fn note(at: VirtTime, earliest: &mut Option<VirtTime>) {
            *earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
        }
        // Own deque, newest first.
        if let Some(d) = self.own[p].filter(|&d| self.deques[d].live) {
            let dq = &self.deques[d];
            if dq.live_items > 0 {
                match dq.min_hint {
                    // Exact cached minimum still in the future: nothing of
                    // ours is eligible, and the minimum is when that changes.
                    Some(m) if m > now => note(m, &mut earliest),
                    _ => {
                        // Scan newest-first for an eligible item; on failure
                        // the scan has visited every live item, so the exact
                        // minimum comes for free and re-arms the fast path.
                        let mut chosen: Option<usize> = None;
                        let mut min_seen: Option<VirtTime> = None;
                        for i in (0..dq.items.len()).rev() {
                            let it = &dq.items[i];
                            if it.dead {
                                continue;
                            }
                            if it.at <= now {
                                chosen = Some(i);
                                break;
                            }
                            min_seen =
                                Some(min_seen.map_or(it.at, |m| if it.at < m { it.at } else { m }));
                        }
                        if let Some(i) = chosen {
                            let tid = self.take_at(d, i);
                            self.gc_own(p);
                            return Pop::Got { tid, stolen: false };
                        }
                        debug_assert!(min_seen.is_some(), "live items but no minimum");
                        self.deques[d].min_hint = min_seen;
                        if let Some(m) = min_seen {
                            note(m, &mut earliest);
                        }
                    }
                }
            }
        }
        // Steal: leftmost deque with an eligible top thread. The front
        // index answers "is there one at all?" in O(log); the order walk
        // below runs only when the steal is guaranteed to land.
        match self.valid_front_min() {
            None => {}
            Some((at, _)) if at > now => {
                // No stealable deque anywhere; the earliest front is when
                // that can change. (Our own front is never eligible here —
                // the owner path above would have taken it — and its time is
                // dominated by our own min_hint contribution.)
                note(at, &mut earliest);
            }
            Some(_) => {
                let mut cur = self.deques[self.head].next;
                while cur != self.tail {
                    if Some(cur) != self.own[p]
                        && self.deques[cur]
                            .items
                            .front()
                            .is_some_and(|it| it.at <= now)
                    {
                        self.last_victim = self.deques[cur].owner;
                        let tid = self.steal_front(cur);
                        // Abandon our empty deque and start a new one at the
                        // victim's left: the stolen thread is serially
                        // earliest there, so our future children belong left
                        // of the victim's remaining threads.
                        if let Some(old) = self.own[p].take() {
                            if self.deques[old].live && self.deques[old].live_items == 0 {
                                self.unlink(old);
                            } else if self.deques[old].live {
                                self.deques[old].owner = None; // orphaned, stealable
                            }
                        }
                        let mine = self.alloc();
                        self.link_before(mine, cur);
                        self.deques[mine].owner = Some(p);
                        self.own[p] = Some(mine);
                        // Clean the victim if we drained it.
                        if self.deques[cur].live_items == 0 && self.deques[cur].owner.is_none() {
                            self.unlink(cur);
                        }
                        return Pop::Got { tid, stolen: true };
                    }
                    cur = self.deques[cur].next;
                }
                unreachable!("a valid eligible front must be stealable");
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }

    fn last_steal_victim(&self) -> Option<ProcId> {
        self.last_victim
    }

    fn active_deques(&self) -> Option<usize> {
        // Exclude the two order-list sentinels.
        Some(
            self.deques
                .iter()
                .filter(|d| d.live)
                .count()
                .saturating_sub(2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId, stolen: bool) -> Pop {
        Pop::Got { tid, stolen }
    }

    #[test]
    fn owner_works_lifo_on_own_deque() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2), false));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1), false));
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn thief_takes_top_of_leftmost_deque() {
        let mut s = DfDequesSched::new(1024, 3);
        // Proc 0's deque: [1 (top/oldest), 2]; proc 1's deque: [3].
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(3), 0, VirtTime::ZERO, 1, None);
        // Proc 2 steals the serially earliest: top of proc 0's (leftmost)
        // deque = t1.
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(1), true));
        // Proc 2 now owns a deque left of proc 0's; its next ready children
        // land there; with nothing of its own it steals t2 next.
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(2), true));
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(3), true));
        assert_eq!(s.pop(2, VirtTime::ZERO), Pop::Empty);
        assert_eq!(s.steals(), 3);
    }

    #[test]
    fn stolen_deque_position_keeps_serial_order() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        // Proc 1 steals t1, then pushes a child: the child sits in proc 1's
        // deque, which lies LEFT of proc 0's deque, so a third party must
        // prefer it over t2.
        assert_eq!(s.pop(1, VirtTime::ZERO), got(t(1), true));
        s.on_ready(t(9), 0, VirtTime::ZERO, 1, None);
        // Proc 0 consumes its own first (owner fast path)…
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2), false));
        // …but once empty it steals the leftmost = proc 1's t9.
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(9), true));
    }

    #[test]
    fn not_yet_entries_respected() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::from_ns(100), 0, None);
        assert_eq!(s.pop(1, VirtTime::from_ns(50)), Pop::NotYet(VirtTime::from_ns(100)));
        assert_eq!(s.pop(1, VirtTime::from_ns(100)), got(t(1), true));
    }

    #[test]
    fn ineligible_top_blocks_the_steal() {
        let mut s = DfDequesSched::new(1024, 2);
        // Proc 0's deque: [t1 published at 100 (top), t2 published at 0].
        s.on_ready(t(1), 0, VirtTime::from_ns(100), 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        // A thief at time 50 must NOT reach behind the ineligible top for
        // t2 — the deque is simply not stealable until its top is eligible.
        assert_eq!(s.pop(1, VirtTime::from_ns(50)), Pop::NotYet(VirtTime::from_ns(100)));
        // Once the top is eligible the steal takes it (the top, not t2).
        assert_eq!(s.pop(1, VirtTime::from_ns(100)), got(t(1), true));
        // The owner, meanwhile, is free to work its own deque newest-first.
        assert_eq!(s.pop(0, VirtTime::from_ns(60)), got(t(2), false));
    }
}
