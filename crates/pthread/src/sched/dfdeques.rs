//! Parallelized depth-first scheduler in the style of `DFDeques` — the
//! paper's §6 scalability future work ("our space-efficient scheduler
//! maintains a globally ordered list of threads; accesses are serialized by
//! a lock… a parallelized implementation of the scheduler, such as the one
//! described elsewhere [34], would be required to ensure further
//! scalability").
//!
//! Design (after Narlikar's DFDeques):
//!
//! * Each processor owns a **deque** of ready threads and works on its own
//!   deque child-first (LIFO), exactly like work stealing — no global lock
//!   on the fast path.
//! * The deques themselves are kept in a **global depth-first order**: the
//!   threads of a left deque precede those of a right deque in the serial
//!   execution order.
//! * An idle processor steals the **top (serially earliest) thread of the
//!   leftmost stealable deque** and starts a fresh deque of its own placed
//!   immediately to the *left* of the victim — preserving the global order
//!   invariant.
//! * The per-dispatch memory quota applies as in the serial DF scheduler.
//!
//! This trades a slightly looser space bound (`S1 + O(K · p · D)` still
//! holds; constants grow) for scalability: dispatches touch only one deque,
//! and only steals touch the shared order list. The engine charges steals
//! an extra context-switch cost and skips the global scheduler lock.

use std::collections::VecDeque;

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Deque {
    prev: usize,
    next: usize,
    /// Front = serially earliest (steal end); back = newest (owner end).
    items: VecDeque<(ThreadId, VirtTime)>,
    owner: Option<ProcId>,
    live: bool,
}

#[derive(Debug)]
pub(crate) struct DfDequesSched {
    quota: u64,
    deques: Vec<Deque>,
    free: Vec<usize>,
    /// Sentinels of the global deque order.
    head: usize,
    tail: usize,
    /// Each processor's current deque (if any).
    own: Vec<Option<usize>>,
    ready: usize,
    steals: u64,
}

impl DfDequesSched {
    pub fn new(quota: u64, procs: usize) -> Self {
        let mut s = DfDequesSched {
            quota,
            deques: Vec::new(),
            free: Vec::new(),
            head: 0,
            tail: 0,
            own: vec![None; procs],
            ready: 0,
            steals: 0,
        };
        s.head = s.alloc();
        s.tail = s.alloc();
        s.deques[s.head].next = s.tail;
        s.deques[s.tail].prev = s.head;
        s
    }

    fn alloc(&mut self) -> usize {
        let d = Deque {
            prev: NIL,
            next: NIL,
            items: VecDeque::new(),
            owner: None,
            live: true,
        };
        if let Some(i) = self.free.pop() {
            self.deques[i] = d;
            i
        } else {
            self.deques.push(d);
            self.deques.len() - 1
        }
    }

    fn link_before(&mut self, d: usize, before: usize) {
        let prev = self.deques[before].prev;
        self.deques[d].prev = prev;
        self.deques[d].next = before;
        self.deques[prev].next = d;
        self.deques[before].prev = d;
    }

    fn unlink(&mut self, d: usize) {
        let (prev, next) = (self.deques[d].prev, self.deques[d].next);
        self.deques[prev].next = next;
        self.deques[next].prev = prev;
        self.deques[d].live = false;
        self.free.push(d);
    }

    /// The deque processor `p` currently owns, creating one at the far
    /// right (fresh serial order) if needed.
    fn own_or_new(&mut self, p: ProcId) -> usize {
        if let Some(d) = self.own[p] {
            if self.deques[d].live {
                return d;
            }
        }
        let d = self.alloc();
        let tail = self.tail;
        self.link_before(d, tail);
        self.deques[d].owner = Some(p);
        self.own[p] = Some(d);
        d
    }

    /// Drops `p`'s deque if it is empty (keeping empty deques in the order
    /// would let them pile up).
    fn gc_own(&mut self, p: ProcId) {
        if let Some(d) = self.own[p] {
            if self.deques[d].live && self.deques[d].items.is_empty() {
                self.unlink(d);
                self.own[p] = None;
            }
        }
    }

    /// Number of steals over the run (diagnostics).
    #[allow(dead_code)]
    pub fn steals(&self) -> u64 {
        self.steals
    }
}

impl Policy for DfDequesSched {
    fn kind(&self) -> SchedKind {
        SchedKind::DfDeques
    }

    fn global_lock(&self) -> bool {
        false // the whole point: per-deque operations
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        _prio: i32,
        enqueue: bool,
        at: VirtTime,
        on_proc: ProcId,
    ) {
        if enqueue {
            // Root and dummy threads go on the creating processor's deque
            // (dummies thereby throttle the allocating processor's own
            // serial position, as in the serial DF scheduler).
            let d = self.own_or_new(on_proc);
            self.deques[d].items.push_back((t, at));
            self.ready += 1;
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        let d = self.own_or_new(waker);
        self.deques[d].items.push_back((t, at));
        self.ready += 1;
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        // Own deque, newest first.
        if let Some(d) = self.own[p].filter(|&d| self.deques[d].live) {
            if let Some(pos) = self.deques[d].items.iter().rposition(|&(_, at)| at <= now) {
                let (tid, _) = self.deques[d].items.remove(pos).expect("pos valid");
                self.ready -= 1;
                self.gc_own(p);
                return Pop::Got { tid, stolen: false };
            }
            for &(_, at) in &self.deques[d].items {
                earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
            }
        }
        // Steal: leftmost deque with an eligible top thread.
        let mut cur = self.deques[self.head].next;
        while cur != self.tail {
            if Some(cur) != self.own[p] {
                if let Some(pos) = self.deques[cur].items.iter().position(|&(_, at)| at <= now)
                {
                    let (tid, _) = self.deques[cur].items.remove(pos).expect("pos valid");
                    self.ready -= 1;
                    self.steals += 1;
                    // Abandon our empty deque and start a new one at the
                    // victim's left: the stolen thread is serially earliest
                    // there, so our future children belong left of the
                    // victim's remaining threads.
                    if let Some(old) = self.own[p].take() {
                        if self.deques[old].live && self.deques[old].items.is_empty() {
                            self.unlink(old);
                        } else if self.deques[old].live {
                            self.deques[old].owner = None; // orphaned, stealable
                        }
                    }
                    let mine = self.alloc();
                    self.link_before(mine, cur);
                    self.deques[mine].owner = Some(p);
                    self.own[p] = Some(mine);
                    // Clean the victim if we drained it.
                    if self.deques[cur].items.is_empty() && self.deques[cur].owner.is_none() {
                        self.unlink(cur);
                    }
                    return Pop::Got { tid, stolen: true };
                }
                for &(_, at) in &self.deques[cur].items {
                    earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
                }
            }
            cur = self.deques[cur].next;
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId, stolen: bool) -> Pop {
        Pop::Got { tid, stolen }
    }

    #[test]
    fn owner_works_lifo_on_own_deque() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2), false));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1), false));
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn thief_takes_top_of_leftmost_deque() {
        let mut s = DfDequesSched::new(1024, 3);
        // Proc 0's deque: [1 (top/oldest), 2]; proc 1's deque: [3].
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(3), 0, VirtTime::ZERO, 1, None);
        // Proc 2 steals the serially earliest: top of proc 0's (leftmost)
        // deque = t1.
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(1), true));
        // Proc 2 now owns a deque left of proc 0's; its next ready children
        // land there; with nothing of its own it steals t2 next.
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(2), true));
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(3), true));
        assert_eq!(s.pop(2, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn stolen_deque_position_keeps_serial_order() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, None);
        // Proc 1 steals t1, then pushes a child: the child sits in proc 1's
        // deque, which lies LEFT of proc 0's deque, so a third party must
        // prefer it over t2.
        assert_eq!(s.pop(1, VirtTime::ZERO), got(t(1), true));
        s.on_ready(t(9), 0, VirtTime::ZERO, 1, None);
        // Proc 0 consumes its own first (owner fast path)…
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2), false));
        // …but once empty it steals the leftmost = proc 1's t9.
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(9), true));
    }

    #[test]
    fn not_yet_entries_respected() {
        let mut s = DfDequesSched::new(1024, 2);
        s.on_ready(t(1), 0, VirtTime::from_ns(100), 0, None);
        assert_eq!(s.pop(1, VirtTime::from_ns(50)), Pop::NotYet(VirtTime::from_ns(100)));
        assert_eq!(s.pop(1, VirtTime::from_ns(100)), got(t(1), true));
    }
}
