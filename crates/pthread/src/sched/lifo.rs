//! LIFO policy (§4 item 1): a stack of ready threads per priority level.
//!
//! Forked children are pushed and the parent keeps running; popping the most
//! recently pushed thread executes the computation graph in an order close
//! to depth-first, which already reduces the number of simultaneously live
//! threads dramatically compared to FIFO. Woken threads carry the same
//! processor-affinity hint as in the FIFO policy.

use std::collections::BTreeMap;

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tid: ThreadId,
    at: VirtTime,
    affinity: Option<ProcId>,
}

#[derive(Debug, Default)]
pub(crate) struct LifoSched {
    /// priority → stack; popped from the back.
    stacks: BTreeMap<i32, Vec<Entry>>,
    ready: usize,
}

impl LifoSched {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, tid: ThreadId, prio: i32, at: VirtTime, affinity: Option<ProcId>) {
        self.stacks
            .entry(prio)
            .or_default()
            .push(Entry { tid, at, affinity });
        self.ready += 1;
    }
}

impl Policy for LifoSched {
    fn kind(&self) -> SchedKind {
        SchedKind::Lifo
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        debug_assert!(enqueue, "LIFO never direct-hands children");
        if enqueue {
            self.push(t, prio, at, None);
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        prio: i32,
        at: VirtTime,
        _waker: ProcId,
        affinity: Option<ProcId>,
    ) {
        self.push(t, prio, at, affinity);
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        for (_, stack) in self.stacks.iter_mut().rev() {
            let eligible = |e: &Entry| e.at <= now;
            // Newest-first within a level; if the newest eligible entry last
            // ran on another processor, prefer one of our own (see the FIFO
            // policy for the rationale).
            let newest = stack.iter().rposition(eligible);
            let pos = match newest {
                Some(f) if stack[f].affinity.is_some() && stack[f].affinity != Some(p) => stack
                    .iter()
                    .rposition(|e| eligible(e) && e.affinity == Some(p))
                    .or(newest),
                other => other,
            };
            if let Some(pos) = pos {
                let e = stack.remove(pos);
                self.ready -= 1;
                return Pop::Got {
                    tid: e.tid,
                    stolen: false,
                };
            }
            if let Some(min) = stack.iter().map(|e| e.at).min() {
                earliest = Some(earliest.map_or(min, |x: VirtTime| if min < x { min } else { x }));
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId) -> Pop {
        Pop::Got { tid, stolen: false }
    }

    #[test]
    fn lifo_order() {
        let mut s = LifoSched::new();
        for i in 1..=3 {
            s.on_ready(t(i), 0, VirtTime::ZERO, 0, None);
        }
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(3)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
    }

    #[test]
    fn newest_eligible_wins_over_older_eligible() {
        let mut s = LifoSched::new();
        s.on_ready(t(1), 0, VirtTime::from_ns(5), 0, None);
        s.on_ready(t(2), 0, VirtTime::from_ns(50), 0, None);
        s.on_ready(t(3), 0, VirtTime::from_ns(8), 0, None);
        assert_eq!(s.pop(0, VirtTime::from_ns(10)), got(t(3)));
        assert_eq!(s.pop(0, VirtTime::from_ns(10)), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::from_ns(10)), Pop::NotYet(VirtTime::from_ns(50)));
    }

    #[test]
    fn affinity_preferred_over_lifo_order() {
        let mut s = LifoSched::new();
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, Some(2));
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, Some(0));
        // LIFO would give t2, but t2 last ran elsewhere and processor 2
        // prefers its own t1.
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(2)));
        // A fresh (no-affinity) newest entry is NOT skipped.
        s.on_ready(t(3), 0, VirtTime::ZERO, 0, Some(2));
        s.on_ready(t(4), 0, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(2, VirtTime::ZERO), got(t(4)));
    }
}
