//! Naive reference schedulers for differential testing and benchmarking.
//!
//! These are the pre-index revisions of [`super::df::DfSched`] and
//! [`super::dfdeques::DfDequesSched`], kept verbatim except for the
//! `DfDeques` top-only steal fix (the old `iter().position()` steal could
//! take a thread from *behind* an ineligible top, violating the global
//! depth-first order — see the module docs of `dfdeques`). Both define the
//! scheduling semantics by brute force:
//!
//! * `RefDfSched::pop` scans its order list from the left over **every**
//!   live entry (placeholders included) — O(live threads).
//! * `RefDfDequesSched::pop` walks every item of every deque to compute
//!   `NotYet` times and uses `VecDeque` middle removals — O(total items).
//!
//! The randomized differential tests in [`super::diff_tests`] drive each
//! optimized scheduler and its reference through identical event
//! interleavings and assert bit-identical `Pop` sequences (including exact
//! `NotYet` times — the engine charges a scheduling operation per dispatch
//! attempt, so even a *conservative* wake-up estimate would change virtual
//! makespans). The wall-clock benchmarks (`ptdf-bench`, `wallclock`) use
//! them as the baseline the indexed versions are measured against.

use std::collections::{BTreeMap, HashMap, VecDeque};

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    prev: usize,
    next: usize,
    tid: ThreadId,
    ready: bool,
    ready_at: VirtTime,
    affinity: Option<ProcId>,
}

/// Pre-index serial DF scheduler: left-to-right scan over all live entries.
#[derive(Debug)]
pub(crate) struct RefDfSched {
    quota: u64,
    window: usize,
    hint: Vec<Option<ThreadId>>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    /// priority → (head sentinel, tail sentinel).
    lists: BTreeMap<i32, (usize, usize)>,
    pos: HashMap<ThreadId, usize>,
    prio_of: HashMap<ThreadId, i32>,
    ready: usize,
}

impl RefDfSched {
    pub fn new(quota: u64) -> Self {
        Self::with_window(quota, 0, 0)
    }

    pub fn with_window(quota: u64, window: usize, procs: usize) -> Self {
        RefDfSched {
            quota,
            window,
            hint: vec![None; procs],
            nodes: Vec::new(),
            free: Vec::new(),
            lists: BTreeMap::new(),
            pos: HashMap::new(),
            prio_of: HashMap::new(),
            ready: 0,
        }
    }

    fn alloc_node(&mut self, tid: ThreadId) -> usize {
        let node = Node {
            prev: NIL,
            next: NIL,
            tid,
            ready: false,
            ready_at: VirtTime::ZERO,
            affinity: None,
        };
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn level(&mut self, prio: i32) -> (usize, usize) {
        if let Some(&hs) = self.lists.get(&prio) {
            return hs;
        }
        let head = self.alloc_node(ThreadId(u32::MAX));
        let tail = self.alloc_node(ThreadId(u32::MAX));
        self.nodes[head].next = tail;
        self.nodes[tail].prev = head;
        self.lists.insert(prio, (head, tail));
        (head, tail)
    }

    fn link_before(&mut self, n: usize, before: usize) {
        let prev = self.nodes[before].prev;
        self.nodes[n].prev = prev;
        self.nodes[n].next = before;
        self.nodes[prev].next = n;
        self.nodes[before].prev = n;
    }

    fn unlink(&mut self, n: usize) {
        let (prev, next) = (self.nodes[n].prev, self.nodes[n].next);
        self.nodes[prev].next = next;
        self.nodes[next].prev = prev;
    }

    fn take(&mut self, cur: usize, p: ProcId) {
        self.nodes[cur].ready = false;
        self.ready -= 1;
        if let Some(slot) = self.hint.get_mut(p) {
            let next = self.nodes[cur].next;
            *slot = (self.nodes[next].tid != ThreadId(u32::MAX)).then(|| self.nodes[next].tid);
        }
    }
}

impl Policy for RefDfSched {
    fn kind(&self) -> SchedKind {
        if self.window == 0 {
            SchedKind::Df
        } else {
            SchedKind::DfLocal
        }
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        let n = self.alloc_node(t);
        self.nodes[n].ready = enqueue;
        self.nodes[n].ready_at = at;
        let anchor = parent
            .and_then(|p| {
                if self.prio_of.get(&p) == Some(&prio) {
                    self.pos.get(&p).copied()
                } else {
                    None
                }
            })
            .unwrap_or_else(|| self.level(prio).1);
        self.link_before(n, anchor);
        self.pos.insert(t, n);
        self.prio_of.insert(t, prio);
        if enqueue {
            self.ready += 1;
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        _waker: ProcId,
        affinity: Option<ProcId>,
    ) {
        let n = self.pos[&t];
        debug_assert!(!self.nodes[n].ready, "double ready for {t}");
        self.nodes[n].ready = true;
        self.nodes[n].ready_at = at;
        self.nodes[n].affinity = affinity;
        self.ready += 1;
    }

    fn on_block(&mut self, t: ThreadId) {
        let n = self.pos[&t];
        debug_assert!(!self.nodes[n].ready, "blocking a queued thread {t}");
        let _ = n;
    }

    fn on_exit(&mut self, t: ThreadId) {
        let n = self.pos.remove(&t).expect("exiting thread has a placeholder");
        self.prio_of.remove(&t);
        debug_assert!(!self.nodes[n].ready, "exiting thread still queued");
        self.unlink(n);
        self.free.push(n);
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        let levels: Vec<(usize, usize)> = self.lists.values().rev().copied().collect();
        for (head, tail) in levels {
            let hint = self.hint.get(p).copied().flatten();
            let mut first: Option<usize> = None;
            let mut affine: Option<usize> = None;
            let mut hinted: Option<usize> = None;
            let mut inspected = 0usize;
            let mut cur = self.nodes[head].next;
            while cur != tail {
                let node = &self.nodes[cur];
                if node.ready {
                    if node.ready_at <= now {
                        if self.window == 0 {
                            let tid = node.tid;
                            self.take(cur, p);
                            return Pop::Got { tid, stolen: false };
                        }
                        if hint == Some(node.tid) {
                            hinted = Some(cur);
                        }
                        if affine.is_none() && node.affinity == Some(p) {
                            affine = Some(cur);
                        }
                        if first.is_none() {
                            first = Some(cur);
                        }
                        inspected += 1;
                        if inspected >= self.window {
                            break;
                        }
                    } else {
                        let at = node.ready_at;
                        earliest =
                            Some(earliest.map_or(at, |e: VirtTime| if at < e { at } else { e }));
                    }
                }
                cur = self.nodes[cur].next;
            }
            if let Some(cur) = hinted.or(affine).or(first) {
                let tid = self.nodes[cur].tid;
                self.take(cur, p);
                return Pop::Got { tid, stolen: false };
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[derive(Debug)]
struct RefDeque {
    prev: usize,
    next: usize,
    items: VecDeque<(ThreadId, VirtTime)>,
    owner: Option<ProcId>,
    live: bool,
}

/// Pre-index `DFDeques`: full item walks and `VecDeque` middle removals.
/// Includes the top-only steal rule (the semantics being preserved), unlike
/// the buggy revision it descends from.
#[derive(Debug)]
pub(crate) struct RefDfDequesSched {
    quota: u64,
    deques: Vec<RefDeque>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    own: Vec<Option<usize>>,
    ready: usize,
    steals: u64,
}

impl RefDfDequesSched {
    pub fn new(quota: u64, procs: usize) -> Self {
        let mut s = RefDfDequesSched {
            quota,
            deques: Vec::new(),
            free: Vec::new(),
            head: 0,
            tail: 0,
            own: vec![None; procs],
            ready: 0,
            steals: 0,
        };
        s.head = s.alloc();
        s.tail = s.alloc();
        s.deques[s.head].next = s.tail;
        s.deques[s.tail].prev = s.head;
        s
    }

    fn alloc(&mut self) -> usize {
        let d = RefDeque {
            prev: NIL,
            next: NIL,
            items: VecDeque::new(),
            owner: None,
            live: true,
        };
        if let Some(i) = self.free.pop() {
            self.deques[i] = d;
            i
        } else {
            self.deques.push(d);
            self.deques.len() - 1
        }
    }

    fn link_before(&mut self, d: usize, before: usize) {
        let prev = self.deques[before].prev;
        self.deques[d].prev = prev;
        self.deques[d].next = before;
        self.deques[prev].next = d;
        self.deques[before].prev = d;
    }

    fn unlink(&mut self, d: usize) {
        let (prev, next) = (self.deques[d].prev, self.deques[d].next);
        self.deques[prev].next = next;
        self.deques[next].prev = prev;
        self.deques[d].live = false;
        self.free.push(d);
    }

    fn own_or_new(&mut self, p: ProcId) -> usize {
        if let Some(d) = self.own[p] {
            if self.deques[d].live {
                return d;
            }
        }
        let d = self.alloc();
        let tail = self.tail;
        self.link_before(d, tail);
        self.deques[d].owner = Some(p);
        self.own[p] = Some(d);
        d
    }

    fn gc_own(&mut self, p: ProcId) {
        if let Some(d) = self.own[p] {
            if self.deques[d].live && self.deques[d].items.is_empty() {
                self.unlink(d);
                self.own[p] = None;
            }
        }
    }
}

impl Policy for RefDfDequesSched {
    fn kind(&self) -> SchedKind {
        SchedKind::DfDeques
    }

    fn global_lock(&self) -> bool {
        false
    }

    fn preempt_on_fork(&self) -> bool {
        true
    }

    fn quota(&self) -> Option<u64> {
        Some(self.quota)
    }

    fn steals(&self) -> u64 {
        self.steals
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        _prio: i32,
        enqueue: bool,
        at: VirtTime,
        on_proc: ProcId,
    ) {
        if enqueue {
            let d = self.own_or_new(on_proc);
            self.deques[d].items.push_back((t, at));
            self.ready += 1;
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        _prio: i32,
        at: VirtTime,
        waker: ProcId,
        _affinity: Option<ProcId>,
    ) {
        let d = self.own_or_new(waker);
        self.deques[d].items.push_back((t, at));
        self.ready += 1;
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        // Own deque, newest first.
        if let Some(d) = self.own[p].filter(|&d| self.deques[d].live) {
            if let Some(pos) = self.deques[d].items.iter().rposition(|&(_, at)| at <= now) {
                let (tid, _) = self.deques[d].items.remove(pos).expect("pos valid");
                self.ready -= 1;
                self.gc_own(p);
                return Pop::Got { tid, stolen: false };
            }
            for &(_, at) in &self.deques[d].items {
                earliest = Some(earliest.map_or(at, |e| if at < e { at } else { e }));
            }
        }
        // Steal: leftmost deque whose top thread is eligible. Items behind
        // an ineligible top are not stealable, so only the front's publish
        // time bounds the next possible change.
        let mut cur = self.deques[self.head].next;
        while cur != self.tail {
            if Some(cur) != self.own[p] {
                if let Some(&(_, at0)) = self.deques[cur].items.front() {
                    if at0 <= now {
                        let (tid, _) = self.deques[cur].items.pop_front().expect("front valid");
                        self.ready -= 1;
                        self.steals += 1;
                        if let Some(old) = self.own[p].take() {
                            if self.deques[old].live && self.deques[old].items.is_empty() {
                                self.unlink(old);
                            } else if self.deques[old].live {
                                self.deques[old].owner = None;
                            }
                        }
                        let mine = self.alloc();
                        self.link_before(mine, cur);
                        self.deques[mine].owner = Some(p);
                        self.own[p] = Some(mine);
                        if self.deques[cur].items.is_empty() && self.deques[cur].owner.is_none() {
                            self.unlink(cur);
                        }
                        return Pop::Got { tid, stolen: true };
                    }
                    earliest = Some(earliest.map_or(at0, |e| if at0 < e { at0 } else { e }));
                }
            }
            cur = self.deques[cur].next;
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}
