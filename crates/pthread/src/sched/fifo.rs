//! The original Solaris policy: a FIFO ready queue per priority level.
//!
//! Forked children are appended to the queue and the parent keeps running,
//! so the computation graph executes breadth-first — the behaviour whose
//! space and time costs the paper's §3 documents.
//!
//! Woken (previously-run) threads carry a processor-affinity hint: a
//! dispatching processor prefers the first eligible entry that last ran on
//! it, modelling the kernel's LWP/CPU affinity. This matters for the
//! coarse-grained SPMD benchmarks, which park at barriers every iteration.

use std::collections::{BTreeMap, VecDeque};

use ptdf_smp::{ProcId, VirtTime};

use crate::config::SchedKind;
use crate::sched::{Policy, Pop};
use crate::thread::ThreadId;

#[derive(Debug, Clone, Copy)]
struct Entry {
    tid: ThreadId,
    at: VirtTime,
    affinity: Option<ProcId>,
}

#[derive(Debug, Default)]
pub(crate) struct FifoSched {
    /// priority → queue; popped from the front. Iterated in reverse order so
    /// higher priorities win.
    queues: BTreeMap<i32, VecDeque<Entry>>,
    ready: usize,
}

impl FifoSched {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, tid: ThreadId, prio: i32, at: VirtTime, affinity: Option<ProcId>) {
        self.queues
            .entry(prio)
            .or_default()
            .push_back(Entry { tid, at, affinity });
        self.ready += 1;
    }
}

impl Policy for FifoSched {
    fn kind(&self) -> SchedKind {
        SchedKind::Fifo
    }

    fn on_create(
        &mut self,
        t: ThreadId,
        _parent: Option<ThreadId>,
        prio: i32,
        enqueue: bool,
        at: VirtTime,
        _on_proc: ProcId,
    ) {
        debug_assert!(enqueue, "FIFO never direct-hands children");
        if enqueue {
            self.push(t, prio, at, None);
        }
    }

    fn on_ready(
        &mut self,
        t: ThreadId,
        prio: i32,
        at: VirtTime,
        _waker: ProcId,
        affinity: Option<ProcId>,
    ) {
        self.push(t, prio, at, affinity);
    }

    fn pop(&mut self, p: ProcId, now: VirtTime) -> Pop {
        if self.ready == 0 {
            return Pop::Empty;
        }
        let mut earliest: Option<VirtTime> = None;
        for (_, q) in self.queues.iter_mut().rev() {
            // Take the first eligible entry, unless it last ran on a
            // *different* processor and a later eligible entry has affinity
            // for this one (in which case swap preference — the other entry
            // will be picked up by its own processor). This keeps FIFO
            // fairness while modelling CPU affinity.
            let eligible = |e: &Entry| e.at <= now;
            let first = q.iter().position(eligible);
            let pos = match first {
                Some(f) if q[f].affinity.is_some() && q[f].affinity != Some(p) => q
                    .iter()
                    .position(|e| eligible(e) && e.affinity == Some(p))
                    .or(first),
                other => other,
            };
            if let Some(pos) = pos {
                let e = q.remove(pos).expect("position valid");
                self.ready -= 1;
                return Pop::Got {
                    tid: e.tid,
                    stolen: false,
                };
            }
            if let Some(min) = q.iter().map(|e| e.at).min() {
                earliest = Some(earliest.map_or(min, |x: VirtTime| if min < x { min } else { x }));
            }
        }
        match earliest {
            Some(t) => Pop::NotYet(t),
            None => Pop::Empty,
        }
    }

    fn ready_len(&self) -> usize {
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadId {
        ThreadId(n)
    }

    fn got(tid: ThreadId) -> Pop {
        Pop::Got { tid, stolen: false }
    }

    #[test]
    fn fifo_order_within_level() {
        let mut s = FifoSched::new();
        for i in 1..=3 {
            s.on_ready(t(i), 0, VirtTime::ZERO, 0, None);
        }
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(3)));
        assert_eq!(s.pop(0, VirtTime::ZERO), Pop::Empty);
    }

    #[test]
    fn priority_levels_respected() {
        let mut s = FifoSched::new();
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, None);
        s.on_ready(t(2), 5, VirtTime::ZERO, 0, None);
        s.on_ready(t(3), -1, VirtTime::ZERO, 0, None);
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(2)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(1)));
        assert_eq!(s.pop(0, VirtTime::ZERO), got(t(3)));
    }

    #[test]
    fn future_entries_are_invisible() {
        let mut s = FifoSched::new();
        s.on_ready(t(1), 0, VirtTime::from_ns(100), 0, None);
        assert_eq!(s.pop(0, VirtTime::from_ns(50)), Pop::NotYet(VirtTime::from_ns(100)));
        assert_eq!(s.pop(0, VirtTime::from_ns(100)), got(t(1)));
    }

    #[test]
    fn eligible_entry_behind_future_entry_is_found() {
        let mut s = FifoSched::new();
        s.on_ready(t(1), 0, VirtTime::from_ns(100), 0, None);
        s.on_ready(t(2), 0, VirtTime::from_ns(10), 0, None);
        assert_eq!(s.pop(0, VirtTime::from_ns(20)), got(t(2)));
    }

    #[test]
    fn affinity_preferred_over_fifo_order() {
        let mut s = FifoSched::new();
        s.on_ready(t(1), 0, VirtTime::ZERO, 0, Some(3));
        s.on_ready(t(2), 0, VirtTime::ZERO, 0, Some(7));
        // Processor 7 prefers its own previous thread even though t1 is first.
        assert_eq!(s.pop(7, VirtTime::ZERO), got(t(2)));
        // Processor 5 has no affinity match: plain FIFO.
        assert_eq!(s.pop(5, VirtTime::ZERO), got(t(1)));
    }
}
