//! Direct access to the scheduler dispatch hot paths for benchmarking.
//!
//! Only compiled under the `bench-internals` feature. The benchmark crate
//! uses this to drive a scheduling policy (`sched::Policy`) through
//! synthetic fork/join storms without the engine, fibers, or cost model in
//! the way — isolating the per-dispatch cost that the indexed schedulers
//! optimise. Both the production policies and their naive references
//! (`sched::reference`) are exposed so the speedup can be measured
//! like-for-like.
//!
//! This is **not** part of the public API proper: types are flattened to
//! primitives (`u32` thread ids, `u64` nanosecond times) so the bench crate
//! needs no access to crate internals, and the surface may change freely.

use ptdf_smp::VirtTime;

use crate::sched::reference::{RefDfDequesSched, RefDfSched};
use crate::sched::{DfDequesSched, DfSched, Policy, Pop, WsSched};
use crate::thread::ThreadId;

/// Result of a [`BenchPolicy::pop`], mirroring the internal `Pop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchPop {
    /// A thread to run.
    Got {
        /// Dispatched thread id.
        tid: u32,
        /// True when the dispatch migrated work between processors.
        stolen: bool,
    },
    /// Nothing eligible yet; earliest entry becomes ready at this time (ns).
    NotYet(u64),
    /// No schedulable entries exist.
    Empty,
}

/// A scheduling policy driven directly (no engine).
pub struct BenchPolicy {
    inner: Box<dyn Policy>,
}

impl BenchPolicy {
    /// The indexed depth-first scheduler (paper §4).
    pub fn df(quota: u64) -> Self {
        BenchPolicy {
            inner: Box::new(DfSched::new(quota)),
        }
    }

    /// The naive reference depth-first scheduler (pre-index seed code).
    pub fn df_reference(quota: u64) -> Self {
        BenchPolicy {
            inner: Box::new(RefDfSched::new(quota)),
        }
    }

    /// The indexed `DFDeques` scheduler.
    pub fn dfdeques(quota: u64, procs: usize) -> Self {
        BenchPolicy {
            inner: Box::new(DfDequesSched::new(quota, procs)),
        }
    }

    /// The naive reference `DFDeques` scheduler.
    pub fn dfdeques_reference(quota: u64, procs: usize) -> Self {
        BenchPolicy {
            inner: Box::new(RefDfDequesSched::new(quota, procs)),
        }
    }

    /// The per-processor work-stealing scheduler.
    pub fn ws(procs: usize, seed: u64) -> Self {
        BenchPolicy {
            inner: Box::new(WsSched::new(procs, seed)),
        }
    }

    /// Thread `tid` created by `parent` on processor `p` at `at_ns`;
    /// `enqueue` false models a preempt-on-fork direct handoff.
    pub fn on_create(
        &mut self,
        tid: u32,
        parent: Option<u32>,
        enqueue: bool,
        at_ns: u64,
        p: usize,
    ) {
        self.inner.on_create(
            ThreadId(tid),
            parent.map(ThreadId),
            0,
            enqueue,
            VirtTime::from_ns(at_ns),
            p,
        );
    }

    /// Thread `tid` became ready, published by processor `waker` at `at_ns`.
    pub fn on_ready(&mut self, tid: u32, at_ns: u64, waker: usize, affinity: Option<usize>) {
        self.inner
            .on_ready(ThreadId(tid), 0, VirtTime::from_ns(at_ns), waker, affinity);
    }

    /// Thread `tid` blocked.
    pub fn on_block(&mut self, tid: u32) {
        self.inner.on_block(ThreadId(tid));
    }

    /// Thread `tid` exited.
    pub fn on_exit(&mut self, tid: u32) {
        self.inner.on_exit(ThreadId(tid));
    }

    /// Processor `p` asks for a thread at virtual time `now_ns`.
    pub fn pop(&mut self, p: usize, now_ns: u64) -> BenchPop {
        match self.inner.pop(p, VirtTime::from_ns(now_ns)) {
            Pop::Got { tid, stolen } => BenchPop::Got { tid: tid.0, stolen },
            Pop::NotYet(t) => BenchPop::NotYet(t.as_ns()),
            Pop::Empty => BenchPop::Empty,
        }
    }

    /// Number of ready (schedulable) entries.
    pub fn ready_len(&self) -> usize {
        self.inner.ready_len()
    }
}
