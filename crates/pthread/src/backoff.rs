//! Seeded retry/backoff helper for the timed sync APIs.
//!
//! A [`TimedOut`](crate::TimedOut) from `lock_timeout` / `acquire_timeout`
//! is a signal to degrade gracefully, not to spin. [`Backoff`] provides the
//! standard remedy — jittered exponential delays in *virtual* time, charged
//! to the calling thread's processor — with a deterministic seeded jitter so
//! perturbed runs still replay bit-exactly.
//!
//! ```no_run
//! use ptdf::{backoff::Backoff, Config, Mutex, SchedKind, VirtTime};
//! let (got, _) = ptdf::run(Config::new(2, SchedKind::Df), || {
//!     let m = Mutex::new(0u32);
//!     let mut b = Backoff::new(42);
//!     b.retry(8, || m.lock_timeout(VirtTime::from_us(50)).map(|mut g| *g += 1))
//!         .is_ok()
//! });
//! assert!(got);
//! ```

use crate::api::par_ctx;
use crate::runtime::with_active;
use crate::runtime::ActiveCtx;
use ptdf_smp::{Prng, VirtTime};

/// Jittered exponential backoff in virtual time.
///
/// Each [`pause`](Backoff::pause) sleeps the calling thread's virtual
/// processor for a uniformly jittered slice of an exponentially growing
/// window (`base · 2^attempt`, capped at `cap`). The jitter comes from a
/// [`Prng`] seeded by the caller, so a given seed always produces the same
/// delay sequence.
#[derive(Debug)]
pub struct Backoff {
    base: VirtTime,
    cap: VirtTime,
    attempt: u32,
    prng: Prng,
}

/// Default first-window width.
const DEFAULT_BASE: VirtTime = VirtTime::from_us(10);
/// Default window cap.
const DEFAULT_CAP: VirtTime = VirtTime::from_ms(1);

impl Backoff {
    /// A backoff with the default bounds (10 µs first window, 1 ms cap).
    pub fn new(seed: u64) -> Self {
        Self::with_bounds(seed, DEFAULT_BASE, DEFAULT_CAP)
    }

    /// A backoff with explicit window bounds.
    pub fn with_bounds(seed: u64, base: VirtTime, cap: VirtTime) -> Self {
        Backoff {
            base,
            cap,
            attempt: 0,
            prng: Prng::new(seed ^ 0xBAC0_FF5E_ED00_0001),
        }
    }

    /// Number of [`pause`](Backoff::pause)s taken so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Resets the window to `base` (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// Sleeps the current virtual processor for the next jittered window
    /// slice and returns the delay charged. Outside a run this only advances
    /// the internal sequence.
    pub fn pause(&mut self) -> VirtTime {
        let window = self
            .base
            .as_ns()
            .saturating_mul(1u64 << self.attempt.min(20))
            .min(self.cap.as_ns());
        self.attempt = self.attempt.saturating_add(1);
        // Uniform in [window/2, window]: always makes progress, never
        // synchronizes two same-seed threads exactly.
        let half = window / 2;
        let delay = VirtTime::from_ns(half + self.prng.below(window - half + 1));
        with_active(|ctx| match ctx {
            Some(ActiveCtx::Par(rc)) => {
                let mut inner = rc.borrow_mut();
                if let Some((_, p)) = inner.cur {
                    inner.machine.charge(p, ptdf_smp::Bucket::Sync, delay);
                }
            }
            Some(ActiveCtx::Serial(rc)) => {
                rc.borrow_mut()
                    .machine
                    .charge(0, ptdf_smp::Bucket::Sync, delay);
            }
            None => {}
        });
        if let Some(rc) = par_ctx() {
            crate::runtime::maybe_timeslice(&rc);
        }
        delay
    }

    /// Runs `op` up to `max_attempts` times, pausing between failures.
    /// Returns the first success, or the last [`TimedOut`](crate::TimedOut)
    /// once the budget is spent.
    pub fn retry<T>(
        &mut self,
        max_attempts: u32,
        mut op: impl FnMut() -> Result<T, crate::TimedOut>,
    ) -> Result<T, crate::TimedOut> {
        assert!(max_attempts >= 1, "need at least one attempt");
        for i in 0..max_attempts {
            match op() {
                Ok(v) => return Ok(v),
                Err(crate::TimedOut) if i + 1 < max_attempts => {
                    self.pause();
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop always returns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_replay_deterministically() {
        let seq = |seed| {
            let mut b = Backoff::new(seed);
            (0..10).map(|_| b.pause()).collect::<Vec<_>>()
        };
        let a = seq(7);
        assert_eq!(a, seq(7), "same seed must replay");
        assert_ne!(a, seq(8), "different seeds must differ");
        // Windows grow until the cap; every delay is at least half its
        // window and none exceeds the cap.
        assert!(a.iter().all(|d| *d <= DEFAULT_CAP));
        assert!(a[0] >= VirtTime::from_us(5));
        assert!(a.last().unwrap().as_ns() >= DEFAULT_CAP.as_ns() / 2);
    }

    #[test]
    fn retry_returns_first_success() {
        let mut b = Backoff::new(1);
        let mut calls = 0;
        let out = b.retry(5, || {
            calls += 1;
            if calls < 3 {
                Err(crate::TimedOut)
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        assert_eq!(b.attempts(), 2, "two pauses between three attempts");
    }

    #[test]
    fn retry_exhausts_budget() {
        let mut b = Backoff::new(1);
        let out: Result<(), _> = b.retry(3, || Err(crate::TimedOut));
        assert_eq!(out, Err(crate::TimedOut));
        assert_eq!(b.attempts(), 2, "no pause after the final failure");
    }
}
