//! Application-facing API: spawning, joining, scoped forks, work/locality
//! charging. These free functions dispatch on the active execution context:
//!
//! * inside [`crate::run`] — full runtime semantics (real threads on the
//!   virtual SMP);
//! * inside [`crate::run_serial`] — `spawn` runs its closure inline (a
//!   function call, exactly the paper's serial version) and charges are
//!   accounted on the single serial processor;
//! * outside any run — everything is a plain call with no accounting, so
//!   application code remains unit-testable in isolation.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::config::Attr;
use crate::runtime::{
    make_fiber, make_fiber_erased, suspend_current, with_active, ActiveCtx, Inner,
};
use crate::thread::{JoinHandle, Kind, Slot, ThreadId, YieldReason};

pub(crate) fn par_ctx() -> Option<Rc<RefCell<Inner>>> {
    with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => Some(rc.clone()),
        _ => None,
    })
}

/// Forks a new thread with default attributes (the Pthreads `fork` of the
/// paper's programs). Under preempt-on-fork policies (DF, WS) the caller is
/// preempted and the child starts immediately, per the space-efficient
/// scheduling rule.
pub fn spawn<T: 'static>(f: impl FnOnce() -> T + 'static) -> JoinHandle<T> {
    spawn_attr(Attr::default(), f)
}

/// Forks a new thread with explicit attributes.
pub fn spawn_attr<T: 'static>(attr: Attr, f: impl FnOnce() -> T + 'static) -> JoinHandle<T> {
    let slot: Slot<T> = Rc::new(RefCell::new(None));
    match par_ctx() {
        Some(rc) => {
            let (child, preempt) = {
                let mut inner = rc.borrow_mut();
                let (cur, p) = inner.cur.expect("spawn called outside a thread");
                let stack = inner.acquire_fiber_stack();
                let fiber = make_fiber(stack, slot.clone(), f);
                inner.create_thread(Some(cur), p, attr, Some(fiber), Kind::User)
            };
            if preempt {
                suspend_current(&rc, YieldReason::Forked { child });
            }
            JoinHandle { id: child, slot, inline: false }
        }
        None => {
            // Serial or standalone: a fork is a function call.
            *slot.borrow_mut() = Some(f());
            JoinHandle {
                id: ThreadId(u32::MAX),
                slot,
                inline: true,
            }
        }
    }
}

/// Thread creation failed: the allocation ledger's failure injector denied
/// the child's stack allocation (see [`crate::Config::with_alloc_failures`]).
/// The modelled analogue of `pthread_create` returning `EAGAIN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpawnError {
    /// Stack bytes whose allocation was denied.
    pub stack_bytes: u64,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spawn failed: stack allocation of {} bytes denied",
            self.stack_bytes
        )
    }
}

impl std::error::Error for SpawnError {}

/// Fallible fork: like [`spawn`], but when allocation-failure injection is
/// armed a denied stack allocation surfaces as `Err(SpawnError)` instead of
/// aborting — callers exercise their out-of-memory degradation paths.
pub fn try_spawn<T: 'static>(f: impl FnOnce() -> T + 'static) -> Result<JoinHandle<T>, SpawnError> {
    try_spawn_attr(Attr::default(), f)
}

/// Fallible fork with explicit attributes; see [`try_spawn`].
pub fn try_spawn_attr<T: 'static>(
    attr: Attr,
    f: impl FnOnce() -> T + 'static,
) -> Result<JoinHandle<T>, SpawnError> {
    if let Some(rc) = par_ctx() {
        let mut inner = rc.borrow_mut();
        if inner.ledger.as_mut().is_some_and(|l| l.should_fail()) {
            let stack_bytes = attr.stack_size.unwrap_or(inner.default_stack);
            return Err(SpawnError { stack_bytes });
        }
    }
    Ok(spawn_attr(attr, f))
}

/// Voluntarily yields the processor (re-queued as ready).
pub fn yield_now() {
    if let Some(rc) = par_ctx() {
        suspend_current(&rc, YieldReason::Yielded);
    }
}

/// Charges `cycles` cycles of application compute to the current virtual
/// processor. This is how benchmark kernels report their work to the
/// virtual-time model (see DESIGN.md: the code *also* really executes; the
/// charge is the modelled duration on the 167 MHz reference machine).
pub fn work(cycles: u64) {
    let rc = with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => {
            let mut inner = rc.borrow_mut();
            let (_, p) = inner.cur.expect("work outside a thread");
            inner.machine.compute(p, cycles);
            Some(rc.clone())
        }
        Some(ActiveCtx::Serial(rc)) => {
            rc.borrow_mut().machine.compute(0, cycles);
            None
        }
        None => None,
    });
    if let Some(rc) = rc {
        crate::runtime::maybe_timeslice(&rc);
    }
}

/// Declares that the current thread is about to work on `bytes` of data
/// region `region` (locality model; see [`ptdf_smp::CacheModel`]).
pub fn touch(region: u64, bytes: u64) {
    let rc = with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => {
            let mut inner = rc.borrow_mut();
            let (_, p) = inner.cur.expect("touch outside a thread");
            inner.machine.touch(p, region, bytes);
            Some(rc.clone())
        }
        Some(ActiveCtx::Serial(rc)) => {
            rc.borrow_mut().machine.touch(0, region, bytes);
            None
        }
        None => None,
    });
    if let Some(rc) = rc {
        crate::runtime::maybe_timeslice(&rc);
    }
}

/// Id of the current runtime thread, if inside one.
pub fn current_thread() -> Option<ThreadId> {
    with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => rc.borrow().cur.map(|(t, _)| t),
        _ => None,
    })
}

/// Number of virtual processors of the active run (1 in serial mode; `None`
/// outside any run).
pub fn processors() -> Option<usize> {
    with_active(|ctx| match ctx {
        Some(ActiveCtx::Par(rc)) => Some(rc.borrow().machine.processors()),
        Some(ActiveCtx::Serial(_)) => Some(1),
        None => None,
    })
}

/// A fork scope that permits borrowing from the enclosing stack frame, like
/// `std::thread::scope`. All threads spawned through the scope are joined
/// before [`scope`] returns (also on panic), which is what makes the
/// lifetime erasure sound.
pub struct Scope<'env> {
    pending: Rc<RefCell<Vec<ThreadId>>>,
    _env: PhantomData<&'env mut &'env ()>,
}

/// Handle to a scope-spawned thread.
pub struct ScopedHandle<'scope, T> {
    id: ThreadId,
    slot: Slot<T>,
    inline: bool,
    pending: Rc<RefCell<Vec<ThreadId>>>,
    _scope: PhantomData<&'scope ()>,
}

impl<'env> Scope<'env> {
    /// Forks a thread that may borrow from the environment.
    pub fn spawn<T, F>(&self, f: F) -> ScopedHandle<'_, T>
    where
        F: FnOnce() -> T + 'env,
        T: 'env,
    {
        self.spawn_attr(Attr::default(), f)
    }

    /// Forks with explicit attributes.
    pub fn spawn_attr<T, F>(&self, attr: Attr, f: F) -> ScopedHandle<'_, T>
    where
        F: FnOnce() -> T + 'env,
        T: 'env,
    {
        let slot: Slot<T> = Rc::new(RefCell::new(None));
        match par_ctx() {
            Some(rc) => {
                let slot2 = slot.clone();
                let body: Box<dyn FnOnce() + 'env> = Box::new(move || {
                    *slot2.borrow_mut() = Some(f());
                });
                // SAFETY (lifetime erasure): every thread spawned through
                // this scope is joined before `scope` returns — by handle
                // join or by the scope's drop guard, which also runs during
                // unwinding — so all borrows captured by `body` (and the
                // slot) outlive the thread's execution.
                let body: Box<dyn FnOnce() + 'static> = unsafe { std::mem::transmute(body) };
                let (child, preempt) = {
                    let mut inner = rc.borrow_mut();
                    let (cur, p) = inner.cur.expect("scope spawn outside a thread");
                    let stack = inner.acquire_fiber_stack();
                    let fiber = make_fiber_erased(stack, body);
                    inner.create_thread(Some(cur), p, attr, Some(fiber), Kind::User)
                };
                self.pending.borrow_mut().push(child);
                if preempt {
                    suspend_current(&rc, YieldReason::Forked { child });
                }
                ScopedHandle {
                    id: child,
                    slot,
                    inline: false,
                    pending: self.pending.clone(),
                    _scope: PhantomData,
                }
            }
            None => {
                *slot.borrow_mut() = Some(f());
                ScopedHandle {
                    id: ThreadId(u32::MAX),
                    slot,
                    inline: true,
                    pending: self.pending.clone(),
                    _scope: PhantomData,
                }
            }
        }
    }
}

impl<T> ScopedHandle<'_, T> {
    /// The thread id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Waits for the thread and returns its value (re-raising its panic).
    pub fn join(self) -> T {
        match self.try_join() {
            Ok(v) => v,
            Err(crate::thread::JoinError::Panicked(payload)) => {
                std::panic::resume_unwind(payload)
            }
            Err(e @ crate::thread::JoinError::NoValue) => panic!("scoped {e}"),
        }
    }

    /// Waits for the thread; a panic in it becomes a
    /// [`JoinError::Panicked`](crate::thread::JoinError) instead of
    /// unwinding the joiner.
    pub fn try_join(self) -> Result<T, crate::thread::JoinError> {
        if !self.inline {
            self.pending.borrow_mut().retain(|&t| t != self.id);
            if let Some(payload) = crate::runtime::join_wait(self.id) {
                return Err(crate::thread::JoinError::Panicked(payload));
            }
        }
        self.slot
            .borrow_mut()
            .take()
            .ok_or(crate::thread::JoinError::NoValue)
    }
}

struct ScopeGuard {
    pending: Rc<RefCell<Vec<ThreadId>>>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        // Join every thread not explicitly joined. During a panic unwind we
        // still join (soundness!), but swallow child panics to avoid a
        // double panic.
        let pending = std::mem::take(&mut *self.pending.borrow_mut());
        for id in pending {
            if std::thread::panicking() {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::runtime::join_wait(id)
                }));
            } else if let Some(payload) = crate::runtime::join_wait(id) {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Runs `f` with a fork [`Scope`]; joins all unjoined scope threads before
/// returning (or before propagating a panic).
pub fn scope<'env, T>(f: impl FnOnce(&Scope<'env>) -> T) -> T {
    let pending = Rc::new(RefCell::new(Vec::new()));
    let guard = ScopeGuard {
        pending: pending.clone(),
    };
    let s = Scope {
        pending,
        _env: PhantomData,
    };
    let out = f(&s);
    drop(guard);
    out
}

pub(crate) use crate::runtime::join_impl;
