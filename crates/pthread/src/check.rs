//! Happens-before checker over flight-recorder traces.
//!
//! Consumes the event stream the runtime already records — spawn,
//! block/wake (with reason and sync-object id), notify, join, steal — and
//! verifies that the schedule it describes is causally consistent:
//!
//! * **Block/wake alternation** — every thread alternates `Block` and
//!   `Wake`; a second block without an intervening wake, or a wake of a
//!   thread that is not blocked, is flagged.
//! * **Lost notifies** — a [`EventKind::Notify`] that observed waiters but
//!   woke none of them ([`Violation::LostNotify`]); this is the signature
//!   of a dropped wakeup in a notify-style primitive, recorded by the
//!   primitive itself at the instant it ran, so no wait-list state has to
//!   be reconstructed from interleaved per-processor timestamps.
//! * **Lost wakeups** — a thread still blocked when the trace ends
//!   ([`Violation::LostWakeup`]).
//! * **Waits past notify** — a lost wakeup whose sync object received a
//!   naked notify (no waiters present, nobody woken) *in the blocked
//!   thread's causal past*, established with vector clocks: the thread
//!   observed the notify before deciding to wait, i.e. the classic
//!   missing-predicate-recheck bug ([`Violation::WaitPastNotify`]).
//! * **Unrecorded handoffs** — every wake of a thread blocked on a sync
//!   object must be published by a thread that performed a `Notify` on
//!   that object ([`Violation::WakeWithoutNotify`]); join wakes are the
//!   one sanctioned exception (they block on a thread, not an object).
//! * **Lifecycle causality** — a thread cannot first-dispatch before its
//!   spawn, exit before its first dispatch, or be joined before its exit;
//!   the run's `live-threads` counter must return to zero.
//! * **Deadlocks** — the runtime's deadlock sentinel records one
//!   [`EventKind::Deadlock`] event per waits-for-cycle member; the checker
//!   reassembles the cycle and reports it as [`Violation::Deadlock`], so a
//!   trace containing a detected deadlock is dirty by construction.
//!   [`EventKind::Timeout`] wakes (timed waits expiring) are the second
//!   sanctioned exception to the handoff protocol: the deadline heap, not a
//!   notifier, published the wake.
//!
//! ## Why the checker runs in timestamp order, not "engine order"
//!
//! Virtual times across processors are **not** a linearization of the
//! engine's execution order: a notifier whose processor clock reads 50ns
//! can serve a waiter that blocked at 100ns on a faster processor. The
//! trace is stable-sorted by virtual time (ties keep publication order),
//! and every rule above is chosen to be sound in that order — per-thread
//! sequences stay ordered because a wake never timestamps earlier than
//! its block (the runtime's `make_ready` clamps with `max`), and
//! cross-thread rules rely only on self-recorded `Notify` payloads and
//! vector-clock edges, never on comparing wait-list sizes across
//! processors.
//!
//! Together with deterministic schedule perturbation
//! ([`crate::Config::with_perturbation`]), any flagged run is a repro: the
//! `(policy, seed)` pair in [`CheckReport::replay`] replays the identical
//! schedule bit-for-bit.

use std::collections::HashMap;

use ptdf_smp::VirtTime;

use crate::critpath::{causal_edge, CausalEdge};
use crate::trace::{BlockReason, EventKind, Trace};

/// One causality violation found in a trace.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub enum Violation {
    /// A thread blocked while already blocked (no intervening wake).
    DoubleBlock {
        /// Offending thread.
        thread: u32,
        /// Time of the block it never woke from.
        first: VirtTime,
        /// Time of the second block.
        second: VirtTime,
    },
    /// A thread was woken while not blocked.
    SpuriousWake {
        /// Woken thread.
        thread: u32,
        /// Time of the wake.
        at: VirtTime,
    },
    /// A wake timestamped before the block it resolves (the engine clamps
    /// wake times with `max(clock, blocked_at)`, so this can only appear
    /// in corrupted or hand-built traces).
    WakeTimeInversion {
        /// Woken thread.
        thread: u32,
        /// When it blocked.
        blocked_at: VirtTime,
        /// When it was (impossibly early) woken.
        woken_at: VirtTime,
    },
    /// A wake of an object-blocked thread whose waker never recorded a
    /// `Notify` on that object: the handoff protocol was bypassed.
    WakeWithoutNotify {
        /// Woken thread.
        thread: u32,
        /// Waking thread, when the trace knows it.
        waker: Option<u32>,
        /// Sync object the woken thread was blocked on.
        obj: u32,
        /// Time of the wake.
        at: VirtTime,
    },
    /// A notify-style operation observed waiters but woke none of them.
    LostNotify {
        /// Primitive kind.
        reason: BlockReason,
        /// Sync object.
        obj: u32,
        /// Time of the operation.
        at: VirtTime,
        /// Waiters it observed (and abandoned).
        waiters: u64,
    },
    /// A thread was still blocked when the trace ended.
    LostWakeup {
        /// Stranded thread.
        thread: u32,
        /// What it blocked on.
        reason: BlockReason,
        /// Sync object, when the block names one.
        obj: Option<u32>,
        /// When it blocked.
        blocked_at: VirtTime,
    },
    /// A stranded thread whose sync object received a naked notify in the
    /// thread's own causal past (vector-clock ordered before its block):
    /// the thread waited *past* a notify it had already observed.
    WaitPastNotify {
        /// Stranded thread.
        thread: u32,
        /// Sync object.
        obj: u32,
        /// When the thread blocked.
        blocked_at: VirtTime,
        /// The causally-earlier naked notify it missed.
        notified_at: VirtTime,
    },
    /// A join completed before its target's recorded exit.
    JoinBeforeExit {
        /// Joining thread.
        joiner: u32,
        /// Joined thread.
        target: u32,
        /// When the join completed.
        join_at: VirtTime,
        /// When the target actually exited.
        exit_at: VirtTime,
    },
    /// A thread's first dispatch precedes its spawn, or its exit precedes
    /// its first dispatch.
    LifecycleInversion {
        /// Offending thread.
        thread: u32,
        /// The earlier bound that was violated.
        bound: VirtTime,
        /// The event time that undershot it.
        at: VirtTime,
    },
    /// A monotonic run invariant tracked by a counter failed (e.g. the
    /// `live-threads` track not returning to zero at end of run).
    CounterLeak {
        /// Counter track name.
        track: String,
        /// Its final sampled value.
        last: u64,
    },
    /// A free underflowed the live byte count — a double free in the
    /// modelled program (machine-recorded; see
    /// `MemStats::free_underflows`).
    FreeUnderflow {
        /// Bytes by which the free exceeded the live count.
        bytes: u64,
        /// Time of the offending free.
        at: VirtTime,
    },
    /// The runtime's deadlock sentinel detected a waits-for cycle (recorded
    /// as one [`EventKind::Deadlock`] event per member). Thread `cycle[i]`
    /// waits for a resource held by `cycle[(i + 1) % len]`.
    Deadlock {
        /// Member thread ids in waits-for order.
        cycle: Vec<u32>,
        /// Time of detection.
        at: VirtTime,
    },
    /// The committed footprint crossed the armed space bound
    /// ([`crate::Config::with_space_bound`], typically `S1 + c·p·D`).
    SpaceBound {
        /// Footprint after the crossing growth.
        footprint: u64,
        /// The armed bound in bytes.
        bound: u64,
        /// Time of the crossing.
        at: VirtTime,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::DoubleBlock { thread, first, second } => write!(
                f,
                "double block: t{thread} blocked at {second} while still blocked from {first}"
            ),
            Violation::SpuriousWake { thread, at } => {
                write!(f, "spurious wake: t{thread} woken at {at} while not blocked")
            }
            Violation::WakeTimeInversion { thread, blocked_at, woken_at } => write!(
                f,
                "wake time inversion: t{thread} woken at {woken_at}, before its block at {blocked_at}"
            ),
            Violation::WakeWithoutNotify { thread, waker, obj, at } => write!(
                f,
                "wake without notify: t{thread} (blocked on obj {obj}) woken at {at} by {} \
                 which recorded no notify on that object",
                match waker {
                    Some(w) => format!("t{w}"),
                    None => "an unknown waker".into(),
                }
            ),
            Violation::LostNotify { reason, obj, at, waiters } => write!(
                f,
                "lost notify: {} obj {obj} at {at} observed {waiters} waiter(s) but woke none",
                reason.name()
            ),
            Violation::LostWakeup { thread, reason, obj, blocked_at } => write!(
                f,
                "lost wakeup: t{thread} still blocked on {}{} at end of trace (blocked at {blocked_at})",
                reason.name(),
                match obj {
                    Some(o) => format!(" obj {o}"),
                    None => String::new(),
                }
            ),
            Violation::WaitPastNotify { thread, obj, blocked_at, notified_at } => write!(
                f,
                "wait past notify: t{thread} blocked on obj {obj} at {blocked_at}, after \
                 causally observing the naked notify at {notified_at}"
            ),
            Violation::JoinBeforeExit { joiner, target, join_at, exit_at } => write!(
                f,
                "join before exit: t{joiner} joined t{target} at {join_at}, before its exit at {exit_at}"
            ),
            Violation::LifecycleInversion { thread, bound, at } => write!(
                f,
                "lifecycle inversion: t{thread} event at {at} precedes its lower bound {bound}"
            ),
            Violation::CounterLeak { track, last } => {
                write!(f, "counter leak: track {track:?} ends at {last}, expected 0")
            }
            Violation::FreeUnderflow { bytes, at } => write!(
                f,
                "free underflow: a free at {at} exceeded the live byte count by {bytes} \
                 (double free)"
            ),
            Violation::Deadlock { cycle, at } => {
                write!(f, "deadlock at {at}: waits-for cycle ")?;
                for t in cycle {
                    write!(f, "t{t} -> ")?;
                }
                write!(f, "t{}", cycle.first().copied().unwrap_or(0))
            }
            Violation::SpaceBound { footprint, bound, at } => write!(
                f,
                "space bound exceeded: footprint {footprint} crossed the armed bound \
                 {bound} at {at}"
            ),
        }
    }
}

/// Result of [`check_trace`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct CheckReport {
    /// Everything the checker flagged, in timestamp order of discovery.
    pub violations: Vec<Violation>,
    /// Events examined.
    pub events: usize,
    /// Threads seen (lifecycle table).
    pub threads: usize,
    /// Replay recipe for the schedule, when the trace carries one —
    /// e.g. `"--sched df --perturb-seed 42"`. Rerunning the same workload
    /// with this policy and seed reproduces the flagged schedule exactly.
    pub replay: Option<String>,
}

impl CheckReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Sparse vector clock: thread id → last observed event counter.
#[derive(Debug, Clone, Default, PartialEq)]
struct Vc(HashMap<u32, u64>);

impl Vc {
    fn tick(&mut self, t: u32) -> u64 {
        let e = self.0.entry(t).or_insert(0);
        *e += 1;
        *e
    }

    fn get(&self, t: u32) -> u64 {
        self.0.get(&t).copied().unwrap_or(0)
    }

    fn join(&mut self, other: &Vc) {
        for (&t, &c) in &other.0 {
            let e = self.0.entry(t).or_insert(0);
            *e = (*e).max(c);
        }
    }
}

/// A thread's open block, awaiting its wake.
struct PendingBlock {
    reason: BlockReason,
    obj: Option<u32>,
    at: VirtTime,
    /// A naked notify on `obj` that was already in this thread's causal
    /// past when it blocked (the waits-past-notify precondition).
    missed_notify: Option<VirtTime>,
}

/// Past the VC bound the checker stops maintaining vector clocks (their
/// cost is O(threads) per join); the order-insensitive rules still run.
const VC_THREAD_LIMIT: usize = 4096;

/// Runs every happens-before rule over `trace` and reports violations.
///
/// The trace is checked in stable virtual-time order (re-sorting is
/// idempotent for traces produced by [`crate::run`]). A clean report means
/// the recorded schedule is causally consistent under the rules listed in
/// the [module docs](self); it does *not* prove the program race-free —
/// only that this schedule's synchronization protocol held.
pub fn check_trace(trace: &Trace) -> CheckReport {
    let mut order: Vec<usize> = (0..trace.events.len()).collect();
    order.sort_by_key(|&i| trace.events[i].at);

    let track_vcs = trace.threads.len() <= VC_THREAD_LIMIT;
    let mut violations = Vec::new();
    let mut vcs: HashMap<u32, Vc> = HashMap::new();
    let mut obj_vcs: HashMap<u32, Vc> = HashMap::new();
    let mut pending: HashMap<u32, PendingBlock> = HashMap::new();
    // Sync-object id → threads that performed a Notify on it.
    let mut notifiers: HashMap<u32, Vec<u32>> = HashMap::new();
    // Naked notifies per object: (notifier, notifier's VC counter, time).
    let mut naked: HashMap<u32, Vec<(u32, u64, VirtTime)>> = HashMap::new();
    // Sentinel-recorded deadlocks: cycle id → (detection time, members in
    // waits-for order — the runtime publishes one event per member, in
    // cycle order, at the same timestamp).
    let mut cycles: HashMap<u32, (VirtTime, Vec<u32>)> = HashMap::new();

    let tick = |vcs: &mut HashMap<u32, Vc>, t: u32| -> u64 {
        if track_vcs {
            vcs.entry(t).or_default().tick(t)
        } else {
            0
        }
    };

    for &i in &order {
        let e = &trace.events[i];
        let Some(subject) = e.thread else { continue };
        // The happens-before content of the event, shared with the
        // critical-path analyzer (`critpath::analyze`): every vector-clock
        // join below consumes a [`CausalEdge`], so the two features cannot
        // disagree on what constitutes an ordering edge.
        let edge = causal_edge(e);
        match e.kind {
            EventKind::Spawn { .. } => {
                if track_vcs {
                    if let Some(CausalEdge::Spawn { parent, child }) = edge {
                        tick(&mut vcs, parent);
                        let pvc = vcs.get(&parent).cloned().unwrap_or_default();
                        vcs.entry(child).or_default().join(&pvc);
                    }
                    tick(&mut vcs, subject);
                }
            }
            EventKind::Block { reason, obj } => {
                tick(&mut vcs, subject);
                if let Some(prev) = pending.get(&subject) {
                    violations.push(Violation::DoubleBlock {
                        thread: subject,
                        first: prev.at,
                        second: e.at,
                    });
                }
                let mut missed_notify = None;
                if let Some(CausalEdge::BlockPublish { obj: o, .. }) = edge {
                    if track_vcs {
                        let svc = vcs.entry(subject).or_default().clone();
                        // Waits-past-notify precondition: a naked notify on
                        // this object already in our causal past.
                        if let Some(list) = naked.get(&o) {
                            missed_notify = list
                                .iter()
                                .find(|&&(w, c, _)| svc.get(w) >= c)
                                .map(|&(_, _, at)| at);
                        }
                        obj_vcs.entry(o).or_default().join(&svc);
                    }
                }
                pending.insert(
                    subject,
                    PendingBlock {
                        reason,
                        obj,
                        at: e.at,
                        missed_notify,
                    },
                );
            }
            EventKind::Notify {
                reason,
                obj,
                waiters,
                woken,
            } => {
                let counter = tick(&mut vcs, subject);
                if track_vcs {
                    if let Some(CausalEdge::NotifyExchange { thread, obj }) = edge {
                        let ovc = obj_vcs.entry(obj).or_default();
                        vcs.entry(thread).or_default().join(ovc);
                        ovc.join(vcs.get(&thread).expect("just ticked"));
                    }
                }
                notifiers.entry(obj).or_default().push(subject);
                if waiters > 0 && woken == 0 {
                    violations.push(Violation::LostNotify {
                        reason,
                        obj,
                        at: e.at,
                        waiters,
                    });
                }
                if waiters == 0 && woken == 0 {
                    naked.entry(obj).or_default().push((subject, counter, e.at));
                }
            }
            EventKind::Wake { waker } => {
                match pending.remove(&subject) {
                    None => violations.push(Violation::SpuriousWake {
                        thread: subject,
                        at: e.at,
                    }),
                    Some(block) => {
                        if e.at < block.at {
                            violations.push(Violation::WakeTimeInversion {
                                thread: subject,
                                blocked_at: block.at,
                                woken_at: e.at,
                            });
                        }
                        // Handoff protocol: an object-blocked thread may
                        // only be woken by a thread that notified the
                        // object. Join blocks (obj None) are woken by the
                        // exiting target directly.
                        if let Some(o) = block.obj {
                            let sanctioned = waker.is_some_and(|w| {
                                notifiers.get(&o).is_some_and(|ns| ns.contains(&w))
                            });
                            if !sanctioned {
                                violations.push(Violation::WakeWithoutNotify {
                                    thread: subject,
                                    waker,
                                    obj: o,
                                    at: e.at,
                                });
                            }
                        }
                        if track_vcs {
                            if let Some(CausalEdge::Wake { waker: Some(w), .. }) = edge {
                                let wvc = vcs.get(&w).cloned().unwrap_or_default();
                                vcs.entry(subject).or_default().join(&wvc);
                            }
                            tick(&mut vcs, subject);
                        }
                    }
                }
            }
            EventKind::Timeout { obj: _ } => {
                // A timed wait expired: the deadline heap, not a notifier,
                // published this wake — sanctioned without a Notify edge
                // (`CausalEdge::Timeout` carries no inbound ordering).
                match pending.remove(&subject) {
                    None => violations.push(Violation::SpuriousWake {
                        thread: subject,
                        at: e.at,
                    }),
                    Some(block) => {
                        if e.at < block.at {
                            violations.push(Violation::WakeTimeInversion {
                                thread: subject,
                                blocked_at: block.at,
                                woken_at: e.at,
                            });
                        }
                        tick(&mut vcs, subject);
                    }
                }
            }
            EventKind::Deadlock { cycle, .. } => {
                tick(&mut vcs, subject);
                let slot = cycles.entry(cycle).or_insert_with(|| (e.at, Vec::new()));
                if !slot.1.contains(&subject) {
                    slot.1.push(subject);
                }
            }
            EventKind::Join { target } => {
                tick(&mut vcs, subject);
                if track_vcs {
                    if let Some(CausalEdge::Join { target, joiner }) = edge {
                        let tvc = vcs.get(&target).cloned().unwrap_or_default();
                        vcs.entry(joiner).or_default().join(&tvc);
                    }
                }
                if let Some(lc) = trace.threads.iter().find(|t| t.thread == target) {
                    if let Some(exit) = lc.exited {
                        if e.at < exit {
                            violations.push(Violation::JoinBeforeExit {
                                joiner: subject,
                                target,
                                join_at: e.at,
                                exit_at: exit,
                            });
                        }
                    }
                }
            }
            _ => {
                tick(&mut vcs, subject);
            }
        }
    }

    // Sentinel-detected waits-for cycles, reassembled from their per-member
    // events; a trace with a detected deadlock is dirty by construction.
    let mut detected: Vec<_> = cycles.into_iter().collect();
    detected.sort_by_key(|&(id, _)| id);
    for (_, (at, cycle)) in detected {
        violations.push(Violation::Deadlock { cycle, at });
    }

    // Threads still blocked at end of trace: lost wakeups; refine with the
    // vector-clock waits-past-notify evidence gathered at block time.
    let mut stranded: Vec<_> = pending.into_iter().collect();
    stranded.sort_by_key(|&(t, _)| t);
    for (thread, block) in stranded {
        violations.push(Violation::LostWakeup {
            thread,
            reason: block.reason,
            obj: block.obj,
            blocked_at: block.at,
        });
        if let (Some(obj), Some(notified_at)) = (block.obj, block.missed_notify) {
            violations.push(Violation::WaitPastNotify {
                thread,
                obj,
                blocked_at: block.at,
                notified_at,
            });
        }
    }

    // Lifecycle causality from the (independently recorded) thread table.
    for lc in &trace.threads {
        if let Some(fd) = lc.first_dispatch {
            if fd < lc.spawned {
                violations.push(Violation::LifecycleInversion {
                    thread: lc.thread,
                    bound: lc.spawned,
                    at: fd,
                });
            }
            if let Some(exit) = lc.exited {
                if exit < fd {
                    violations.push(Violation::LifecycleInversion {
                        thread: lc.thread,
                        bound: fd,
                        at: exit,
                    });
                }
            }
        }
    }

    // Every created thread must eventually die: the live-threads track
    // returns to zero on a completed run.
    if let Some(&(_, last)) = trace.counters.live_threads.last() {
        if last != 0 {
            violations.push(Violation::CounterLeak {
                track: "live-threads".into(),
                last,
            });
        }
    }

    // Machine-recorded memory diagnostics ride in with `thread: None`, which
    // the causality loop above deliberately skips — scan them separately.
    for &i in &order {
        let e = &trace.events[i];
        match e.kind {
            EventKind::FreeUnderflow { bytes } => {
                violations.push(Violation::FreeUnderflow { bytes, at: e.at });
            }
            EventKind::BoundViolation { footprint, bound } => {
                violations.push(Violation::SpaceBound {
                    footprint,
                    bound,
                    at: e.at,
                });
            }
            _ => {}
        }
    }

    CheckReport {
        violations,
        events: trace.events.len(),
        threads: trace.threads.len(),
        replay: replay_recipe(trace),
    }
}

fn replay_recipe(trace: &Trace) -> Option<String> {
    let mut flags = Vec::new();
    if let Some(seed) = trace.meta.perturb_seed {
        flags.push(format!("--perturb-seed {seed}"));
    }
    if let Some(seed) = trace.meta.chaos_seed {
        flags.push(format!("--chaos-seed {seed}"));
    }
    if flags.is_empty() {
        return None;
    }
    Some(format!(
        "--sched {} {}",
        trace.meta.scheduler,
        flags.join(" ")
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;
    use crate::{run, scope, spawn, Config, SchedKind};

    fn ns(v: u64) -> VirtTime {
        VirtTime::from_ns(v)
    }

    fn event(at: u64, thread: u32, kind: EventKind) -> Event {
        Event {
            at: ns(at),
            proc: 0,
            thread: Some(thread),
            kind,
        }
    }

    #[test]
    fn vc_join_and_tick() {
        let mut a = Vc::default();
        a.tick(1);
        a.tick(1);
        let mut b = Vc::default();
        b.tick(2);
        b.join(&a);
        assert_eq!(b.get(1), 2);
        assert_eq!(b.get(2), 1);
        assert_eq!(a.get(2), 0, "join is one-directional");
    }

    #[test]
    fn clean_real_traces_check_clean() {
        for kind in [SchedKind::Fifo, SchedKind::Df, SchedKind::Ws] {
            let (_, report) = run(Config::new(4, kind).with_trace(), || {
                let m = crate::Mutex::new(0u64);
                let b = crate::Barrier::new(4);
                let s = crate::Semaphore::new(2);
                scope(|sc| {
                    for _ in 0..4 {
                        let (m, b, s) = (m.clone(), b.clone(), s.clone());
                        sc.spawn(move || {
                            s.acquire();
                            *m.lock() += 1;
                            s.release();
                            b.wait();
                            crate::work(2_000);
                        });
                    }
                });
                assert_eq!(*m.lock(), 4);
            });
            let trace = report.trace.unwrap();
            let check = check_trace(&trace);
            assert!(
                check.is_clean(),
                "{kind:?}: unexpected violations: {:?}",
                check.violations
            );
            assert!(check.events > 0);
        }
    }

    #[test]
    fn synthetic_lost_notify_is_flagged() {
        let mut trace = Trace::default();
        trace.events.push(event(
            10,
            1,
            EventKind::Block {
                reason: BlockReason::Condvar,
                obj: Some(7),
            },
        ));
        trace.events.push(event(
            20,
            2,
            EventKind::Notify {
                reason: BlockReason::Condvar,
                obj: 7,
                waiters: 1,
                woken: 0,
            },
        ));
        let check = check_trace(&trace);
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LostNotify { obj: 7, waiters: 1, .. })));
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::LostWakeup { thread: 1, .. })));
    }

    #[test]
    fn synthetic_double_block_and_spurious_wake() {
        let mut trace = Trace::default();
        let block = EventKind::Block {
            reason: BlockReason::Mutex,
            obj: Some(0),
        };
        trace.events.push(event(10, 1, block));
        trace.events.push(event(20, 1, block));
        trace.events.push(event(30, 2, EventKind::Wake { waker: Some(3) }));
        let check = check_trace(&trace);
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DoubleBlock { thread: 1, .. })));
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpuriousWake { thread: 2, .. })));
    }

    #[test]
    fn surgically_removed_wake_is_flagged() {
        // Take a real trace and drop one Wake event: the woken thread now
        // appears stranded, exactly what a lost wakeup looks like.
        let (_, report) = run(Config::new(2, SchedKind::Fifo).with_trace(), || {
            let b = crate::Barrier::new(2);
            let b2 = b.clone();
            let h = spawn(move || {
                crate::work(5_000);
                b2.wait();
            });
            b.wait();
            h.join();
        });
        let mut trace = report.trace.unwrap();
        assert!(check_trace(&trace).is_clean(), "pre-surgery trace is clean");
        let pos = trace
            .events
            .iter()
            .position(|e| matches!(e.kind, EventKind::Wake { .. }))
            .expect("barrier run has wakes");
        trace.events.remove(pos);
        let check = check_trace(&trace);
        assert!(
            !check.is_clean(),
            "removing a wake must produce a violation"
        );
    }

    #[test]
    fn wait_past_notify_detected_through_vector_clocks() {
        // t2 spawns t1 (so t1's clock knows t2's naked notify), then t1
        // blocks on the object the notify already hit: the classic
        // missed-signal-then-wait bug, invisible to timestamp comparison
        // alone but established by the vector-clock edge spawn(t2 → t1).
        let mut trace = Trace::default();
        trace.events.push(event(
            5,
            2,
            EventKind::Notify {
                reason: BlockReason::Condvar,
                obj: 9,
                waiters: 0,
                woken: 0,
            },
        ));
        trace
            .events
            .push(event(6, 1, EventKind::Spawn { parent: Some(2) }));
        trace.events.push(event(
            10,
            1,
            EventKind::Block {
                reason: BlockReason::Condvar,
                obj: Some(9),
            },
        ));
        let check = check_trace(&trace);
        assert!(
            check
                .violations
                .iter()
                .any(|v| matches!(v, Violation::WaitPastNotify { thread: 1, obj: 9, .. })),
            "expected WaitPastNotify, got {:?}",
            check.violations
        );
        // Control: without the spawn edge the notify is concurrent with
        // the block, so the refinement must NOT fire (lost wakeup only).
        let mut concurrent = Trace::default();
        concurrent.events.push(event(
            5,
            2,
            EventKind::Notify {
                reason: BlockReason::Condvar,
                obj: 9,
                waiters: 0,
                woken: 0,
            },
        ));
        concurrent.events.push(event(
            10,
            1,
            EventKind::Block {
                reason: BlockReason::Condvar,
                obj: Some(9),
            },
        ));
        let check = check_trace(&concurrent);
        assert!(!check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::WaitPastNotify { .. })));
    }

    #[test]
    fn timeout_resolves_a_pending_block_without_notify() {
        // A timed wait that expires produces Block → Timeout with no Notify
        // anywhere; the checker must treat the deadline wake as sanctioned
        // (no WakeWithoutNotify) and resolved (no LostWakeup).
        let mut trace = Trace::default();
        trace.events.push(event(
            10,
            1,
            EventKind::Block {
                reason: BlockReason::Mutex,
                obj: Some(3),
            },
        ));
        trace
            .events
            .push(event(60, 1, EventKind::Timeout { obj: Some(3) }));
        let check = check_trace(&trace);
        assert!(check.is_clean(), "{:?}", check.violations);
        // A timeout of a thread that never blocked is still flagged.
        let mut bad = Trace::default();
        bad.events
            .push(event(5, 2, EventKind::Timeout { obj: None }));
        let check = check_trace(&bad);
        assert!(check
            .violations
            .iter()
            .any(|v| matches!(v, Violation::SpuriousWake { thread: 2, .. })));
    }

    #[test]
    fn deadlock_events_reassemble_into_a_cycle_violation() {
        let mut trace = Trace::default();
        for (member, next) in [(1u32, 2u32), (2, 3), (3, 1)] {
            trace.events.push(event(
                100,
                member,
                EventKind::Deadlock {
                    cycle: 0,
                    waits_for: next,
                    obj: Some(member),
                },
            ));
        }
        let check = check_trace(&trace);
        assert!(!check.is_clean());
        let v = check
            .violations
            .iter()
            .find_map(|v| match v {
                Violation::Deadlock { cycle, .. } => Some(cycle.clone()),
                _ => None,
            })
            .expect("deadlock violation");
        assert_eq!(v, vec![1, 2, 3], "members in waits-for order");
        let text = check.violations[0].to_string();
        assert!(text.contains("t1 -> t2 -> t3 -> t1"), "{text}");
    }

    #[test]
    fn real_deadlock_trace_checks_dirty_with_the_cycle() {
        // Drive an actual 2-thread lock-order inversion and confirm the
        // flight recorder + checker name the cycle end to end.
        let result = std::panic::catch_unwind(|| {
            run(Config::new(2, SchedKind::Df).with_trace(), || {
                let a = crate::Mutex::new(());
                let b = crate::Mutex::new(());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = spawn(move || {
                    let _ga = a2.lock();
                    crate::work(300_000);
                    let _gb = b2.lock();
                });
                let (a3, b3) = (a.clone(), b.clone());
                let t2 = spawn(move || {
                    let _gb = b3.lock();
                    crate::work(300_000);
                    let _ga = a3.lock();
                });
                let _ = t1.try_join();
                let _ = t2.try_join();
            })
        });
        // The deadlock unwinds one spawned thread; try_join absorbs it, so
        // the run completes and delivers the trace.
        let (_, report) = result.expect("run completes after sentinel unwind");
        assert_eq!(report.deadlocks().len(), 1, "one cycle recorded");
        let mut members = report.deadlocks()[0].cycle.clone();
        members.sort_unstable();
        assert_eq!(members, vec![1, 2]);
        let check = check_trace(&report.trace.unwrap());
        assert!(
            check
                .violations
                .iter()
                .any(|v| matches!(v, Violation::Deadlock { .. })),
            "expected a Deadlock violation, got {:?}",
            check.violations
        );
    }

    #[test]
    fn replay_recipe_includes_chaos_seed_when_armed() {
        let cfg = Config::new(2, SchedKind::Ws)
            .with_trace()
            .with_perturbation(7)
            .with_chaos(11);
        let (_, report) = run(cfg, || {
            let h = spawn(|| crate::work(1_000));
            h.join();
        });
        let check = check_trace(&report.trace.unwrap());
        assert_eq!(
            check.replay.as_deref(),
            Some("--sched ws --perturb-seed 7 --chaos-seed 11")
        );
    }

    #[test]
    fn replay_recipe_round_trips_from_meta() {
        let cfg = Config::new(2, SchedKind::Df)
            .with_trace()
            .with_perturbation(42);
        let (_, report) = run(cfg, || {
            let h = spawn(|| crate::work(1_000));
            h.join();
        });
        let trace = report.trace.unwrap();
        let check = check_trace(&trace);
        assert_eq!(
            check.replay.as_deref(),
            Some("--sched df --perturb-seed 42")
        );
        assert!(check.is_clean(), "{:?}", check.violations);
    }
}
