//! Thread control blocks and join handles.

use std::any::Any;
use std::cell::RefCell;
use std::rc::Rc;

use ptdf_fiber::{Coroutine, Yielder};
use ptdf_smp::ProcId;

use crate::config::Attr;

/// Identifier of a thread within one run. Ids are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub(crate) u32);

impl ThreadId {
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Reason a fiber suspended back to the engine.
#[derive(Debug)]
pub(crate) enum YieldReason {
    /// Forked a child under a preempt-on-fork policy; the child should be
    /// dispatched on this processor next and the parent re-queued.
    Forked { child: ThreadId },
    /// The thread registered itself on some wait queue (mutex, condvar,
    /// join, ...) and must not be re-queued until made ready.
    Blocked,
    /// Memory quota exhausted (DF policy); re-queue at own position.
    Preempted,
    /// Voluntary yield; re-queue.
    Yielded,
    /// Joining a child that has already exited (in engine real time) but
    /// whose virtual exit lies in this processor's future. The thread
    /// sleeps until `at` — re-queued immediately, published at the child's
    /// exit time — so the processor can run other ready work in the gap
    /// instead of idling (greedy scheduling).
    JoinWake { at: ptdf_smp::VirtTime },
    /// Simulation time-slice: this fiber ran far ahead of the other
    /// processors' virtual clocks and must pause so that virtually
    /// concurrent segments interleave correctly. The engine resumes it on
    /// the same processor with **zero modelled cost** — it is an artifact
    /// of sequential simulation, not a scheduling event.
    Timeslice,
}

pub(crate) type Fiber = Coroutine<(), YieldReason, ()>;
pub(crate) type FiberYielder = Yielder<(), YieldReason, ()>;

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// Created, never dispatched.
    Created,
    /// In the scheduler's ready set.
    Ready,
    /// Currently executing on a processor.
    Running(ProcId),
    /// On a wait queue.
    Blocked,
    /// Finished.
    Exited,
}

/// What kind of thread this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// The root thread running the user's entry closure.
    Root,
    /// An application thread.
    User,
    /// A no-op thread inserted by the DF allocation hook (§4 item 2).
    Dummy,
}

/// What a blocked thread is waiting for — one edge of the waits-for graph
/// the deadlock sentinel walks. Written by `block_current`, cleared on wake.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Wait {
    /// Primitive class (mutex, condvar, join, ...).
    pub reason: crate::trace::BlockReason,
    /// Per-run sync-object id, when the primitive has one (`None` for join).
    pub obj: Option<u32>,
    /// Join target, when the wait is on another thread's exit.
    pub target: Option<ThreadId>,
}

/// Thread control block.
pub(crate) struct Tcb {
    pub state: TState,
    pub kind: Kind,
    pub fiber: Option<Fiber>,
    /// Raw pointer to the fiber's `Yielder`, registered by the fiber body on
    /// first dispatch; valid whenever the fiber is alive.
    pub yielder: *const FiberYielder,
    pub attr: Attr,
    /// Reserved (accounted) stack bytes.
    pub stack_reserved: u64,
    /// Committed (accounted) stack bytes under the lazy-commit model.
    pub stack_committed: u64,
    pub has_run: bool,
    /// Remaining memory quota in this scheduling quantum (DF policy).
    pub quota: i64,
    /// Thread blocked in `join` on us, woken at exit.
    pub joiner: Option<ThreadId>,
    /// Detached threads are reclaimed without a join (informational; the
    /// engine reclaims every exited thread's fiber eagerly either way).
    #[allow(dead_code)]
    pub detached: bool,
    /// Set when the thread body panicked; payload delivered at join.
    pub panic: Option<Box<dyn Any + Send>>,
    /// Processor this thread last ran on (affinity hint for the queue
    /// policies).
    pub last_proc: Option<ptdf_smp::ProcId>,
    /// For [`Kind::Dummy`]: how many dummies this subtree still represents
    /// (the §4 item 2 dummies are forked lazily as a binary tree).
    pub dummy_remaining: u64,
    /// Virtual time at which the thread exited (join happens-before edge).
    pub exit_time: ptdf_smp::VirtTime,
    /// Virtual time at which the thread last blocked (wake happens-before
    /// edge: a wake may not resume it earlier than its own suspension).
    pub blocked_at: ptdf_smp::VirtTime,
    /// Virtual time at which the thread last became ready (flight-recorder
    /// ready-wait accounting).
    pub ready_since: ptdf_smp::VirtTime,
    /// What the thread is blocked on (waits-for edge); `Some` exactly while
    /// `state == Blocked`.
    pub wait: Option<Wait>,
    /// Armed virtual-time deadline of an in-progress timed wait.
    pub deadline: Option<ptdf_smp::VirtTime>,
    /// Set by the engine when the thread was woken by its deadline rather
    /// than by the primitive; the timed API consumes (clears) it on resume.
    pub timed_out: bool,
}

impl Tcb {
    pub fn new(kind: Kind, attr: Attr, stack_reserved: u64) -> Self {
        Tcb {
            state: TState::Created,
            kind,
            fiber: None,
            yielder: std::ptr::null(),
            detached: attr.detached,
            attr,
            stack_reserved,
            stack_committed: 0,
            has_run: false,
            quota: 0,
            joiner: None,
            panic: None,
            last_proc: None,
            dummy_remaining: 0,
            exit_time: ptdf_smp::VirtTime::ZERO,
            blocked_at: ptdf_smp::VirtTime::ZERO,
            ready_since: ptdf_smp::VirtTime::ZERO,
            wait: None,
            deadline: None,
            timed_out: false,
        }
    }
}

/// Shared result slot between a thread and its join handle.
pub(crate) type Slot<T> = Rc<RefCell<Option<T>>>;

/// Why a join could not deliver the thread's value.
///
/// `pthread_join` distinguishes a normally-returned value from an aborted
/// thread; [`JoinHandle::try_join`] does the same instead of unwinding the
/// joiner or hitting an internal `expect`.
pub enum JoinError {
    /// The thread's closure panicked; the payload is the panic value.
    Panicked(Box<dyn Any + Send>),
    /// The thread exited without storing a value (e.g. the value was
    /// already taken, or the thread was torn down before running).
    NoValue,
}

impl JoinError {
    /// The panic payload, if the thread panicked.
    pub fn into_panic(self) -> Option<Box<dyn Any + Send>> {
        match self {
            JoinError::Panicked(p) => Some(p),
            JoinError::NoValue => None,
        }
    }
}

impl std::fmt::Debug for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| p.downcast_ref::<String>().map(String::as_str));
                f.debug_tuple("Panicked").field(&msg).finish()
            }
            JoinError::NoValue => f.write_str("NoValue"),
        }
    }
}

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JoinError::Panicked(_) => f.write_str("joined thread panicked"),
            JoinError::NoValue => f.write_str("joined thread produced no value"),
        }
    }
}

impl std::error::Error for JoinError {}

/// Owned handle to a spawned thread; consume with [`JoinHandle::join`].
///
/// Unlike `pthread_join`, the handle is typed: the thread's closure return
/// value is delivered to the joiner. Dropping the handle without joining
/// detaches the thread (it still runs to completion).
pub struct JoinHandle<T> {
    pub(crate) id: ThreadId,
    pub(crate) slot: Slot<T>,
    /// Inline-completed handle (serial / no-runtime mode): value is already
    /// in the slot and no runtime interaction is needed.
    pub(crate) inline: bool,
}

impl<T> JoinHandle<T> {
    /// The spawned thread's id.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Waits for the thread to finish and returns its result.
    ///
    /// # Panics
    /// Re-raises a panic that escaped the thread's closure.
    pub fn join(self) -> T {
        crate::api::join_impl(&self)
    }

    /// Waits for the thread to finish; a panic in the thread is returned as
    /// [`JoinError::Panicked`] instead of unwinding the joiner.
    pub fn try_join(self) -> Result<T, JoinError> {
        crate::runtime::try_join_impl(&self)
    }

    /// Waits up to `timeout` of virtual time for the thread to finish.
    ///
    /// On timeout the handle is returned so the caller can retry (or detach
    /// by dropping it); the thread keeps running either way. A panic in the
    /// joined thread is re-raised like [`JoinHandle::join`].
    pub fn join_timeout(
        self,
        timeout: ptdf_smp::VirtTime,
    ) -> Result<T, JoinHandle<T>> {
        crate::runtime::join_timeout_impl(self, timeout)
    }

    /// Explicitly detaches the thread (equivalent to dropping the handle).
    pub fn detach(self) {}
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").field("id", &self.id).finish()
    }
}
