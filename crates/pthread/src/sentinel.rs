//! Deadlock-sentinel types: timed-wait errors, structured deadlock reports,
//! and the stall verdict produced by the virtual-time watchdog.
//!
//! The runtime maintains a live waits-for graph (thread → resource → holder
//! edges) and runs an incremental cycle check every time a thread is about to
//! block on an ownership-bearing resource (mutex, rwlock, join). When the
//! block would close a cycle, the blocking thread is *not* enqueued; instead
//! a [`DeadlockError`] panic payload unwinds it, the cycle is recorded into
//! [`crate::Report::deadlocks`] as a [`DeadlockInfo`], and one
//! `Deadlock` flight-recorder event per cycle member names the cycle for
//! `ptdf-trace check`.
//!
//! Waits that cannot be avoided are bounded instead: the timed APIs
//! ([`crate::Mutex::lock_timeout`], [`crate::Condvar::wait_timeout`],
//! [`crate::Semaphore::acquire_timeout`], [`crate::JoinHandle::join_timeout`])
//! return [`TimedOut`] via a per-processor deadline heap in the machine. And
//! when every processor goes idle while live threads remain (a lost wakeup or
//! livelock the cycle check cannot see), the watchdog halts the run with a
//! [`StallInfo`] verdict instead of spinning or panicking deep in the engine;
//! [`crate::try_run`] surfaces it as a [`RunError`].

use crate::trace::BlockReason;
use ptdf_smp::VirtTime;

/// A timed synchronization wait expired before the resource was granted.
///
/// Returned by the `*_timeout` family of sync APIs. The wait is measured in
/// *virtual* time on the waiting thread's processor clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

impl std::fmt::Display for TimedOut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("timed wait expired before the resource was granted")
    }
}

impl std::error::Error for TimedOut {}

/// One detected waits-for cycle.
///
/// `cycle` lists the member thread ids in waits-for order: thread `cycle[i]`
/// waits for a resource held (or being exited) by `cycle[(i + 1) % len]`. A
/// self-deadlock (relocking a non-recursive mutex) is the 1-cycle `[t]`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct DeadlockInfo {
    /// Thread ids forming the cycle, in waits-for order.
    pub cycle: Vec<u32>,
    /// Sync-object ids each member waits on (`None` for a join edge),
    /// parallel to `cycle`.
    pub objs: Vec<Option<u32>>,
    /// Virtual time (on the detecting thread's processor) of detection.
    pub at: VirtTime,
}

impl std::fmt::Display for DeadlockInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadlock at {:?}: ", self.at)?;
        for t in &self.cycle {
            write!(f, "t{t} -> ")?;
        }
        write!(f, "t{}", self.cycle.first().copied().unwrap_or(0))
    }
}

/// Panic payload unwinding a thread whose block would have closed a
/// waits-for cycle.
///
/// The runtime raises this *instead of blocking*: the thread never joins the
/// waiter queue, so its unwind releases every lock it holds (guard
/// destructors run during the unwind) and the rest of the cycle proceeds.
/// The panic is delivered to whoever joins the thread; use
/// [`crate::JoinHandle::try_join`] to observe it without re-raising.
#[derive(Debug, Clone)]
pub struct DeadlockError {
    /// The cycle that would have formed, starting at the unwound thread.
    pub info: DeadlockInfo,
}

impl std::fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "waits-for cycle: {}", self.info)
    }
}

impl std::error::Error for DeadlockError {}

/// One live-but-stuck thread in a [`StallInfo`] verdict.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct StalledThread {
    /// Thread id.
    pub thread: u32,
    /// Why it blocked, if it is blocked (`None` for a ready-but-never-
    /// dispatched thread, which indicates an engine bug rather than an
    /// application hang).
    pub reason: Option<BlockReason>,
    /// The sync object it waits on, if the wait names one.
    pub obj: Option<u32>,
    /// Virtual time of the thread's last event (its block time, or spawn
    /// time if it never ran).
    pub since: VirtTime,
}

/// The virtual-time watchdog's verdict: every processor went idle while
/// live threads remained — a lost wakeup or livelock.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct StallInfo {
    /// Virtual time (max processor clock) when the stall was declared.
    pub at: VirtTime,
    /// Scheduling policy name (as in [`crate::SchedKind`]).
    pub scheduler: String,
    /// Every live thread and what it was waiting for.
    pub threads: Vec<StalledThread>,
}

impl std::fmt::Display for StallInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "stalled at {:?} under {}: all processors idle, {} live thread(s):",
            self.at,
            self.scheduler,
            self.threads.len()
        )?;
        for t in &self.threads {
            let reason = t.reason.map(|r| r.name()).unwrap_or("ready (never dispatched)");
            match t.obj {
                Some(obj) => writeln!(f, "  t{} blocked on {reason} #{obj} since {:?}", t.thread, t.since)?,
                None => writeln!(f, "  t{} blocked on {reason} since {:?}", t.thread, t.since)?,
            }
        }
        Ok(())
    }
}

/// A run halted without completing: the watchdog declared a stall.
///
/// Returned by [`crate::try_run`]; carries the partial [`crate::Report`]
/// (statistics, any trace, and any deadlocks detected before the stall).
#[derive(Debug)]
pub struct RunError {
    /// The stall verdict.
    pub stall: StallInfo,
    /// The partial report for the halted run.
    pub report: Box<crate::Report>,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.stall)?;
        for d in self.report.deadlocks() {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_info_displays_the_cycle() {
        let info = DeadlockInfo {
            cycle: vec![2, 5, 9],
            objs: vec![Some(1), Some(2), Some(3)],
            at: VirtTime::from_us(7),
        };
        let s = info.to_string();
        assert!(s.contains("t2 -> t5 -> t9 -> t2"), "{s}");
    }

    #[test]
    fn stall_info_names_every_thread() {
        let stall = StallInfo {
            at: VirtTime::from_ms(1),
            scheduler: "df".into(),
            threads: vec![StalledThread {
                thread: 3,
                reason: Some(BlockReason::Condvar),
                obj: Some(12),
                since: VirtTime::from_us(500),
            }],
        };
        let s = stall.to_string();
        assert!(s.contains("t3 blocked on condvar #12"), "{s}");
        assert!(s.contains("1 live thread(s)"), "{s}");
    }
}
