//! Execution tracing: per-dispatch records of what ran where on the virtual
//! timeline, exportable as a Chrome trace (`chrome://tracing`, Perfetto) for
//! visual inspection of scheduler behaviour.
//!
//! Enable with [`crate::Config::with_trace`]; the trace comes back on the
//! run's [`crate::Report`].

use crate::thread::ThreadId;
use ptdf_smp::{ProcId, VirtTime};

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SpanKind {
    /// A thread executing a scheduling quantum.
    Run,
    /// A dummy (allocation-throttle) thread.
    Dummy,
    /// Cost-free continuation of a time-sliced fiber.
    Resume,
}

/// One execution span on a virtual processor.
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct Span {
    /// Virtual processor.
    pub proc: ProcId,
    /// Thread id.
    pub thread: u32,
    /// Span start (virtual).
    pub start: VirtTime,
    /// Span end (virtual).
    pub end: VirtTime,
    /// Span kind.
    pub kind: SpanKind,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct Trace {
    /// All spans, in engine (real-time) order.
    pub spans: Vec<Span>,
}

impl Trace {
    pub(crate) fn record(
        &mut self,
        proc: ProcId,
        thread: ThreadId,
        start: VirtTime,
        end: VirtTime,
        kind: SpanKind,
    ) {
        self.spans.push(Span {
            proc,
            thread: thread.0,
            start,
            end,
            kind,
        });
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Per-processor busy time implied by the spans.
    pub fn busy_per_proc(&self, processors: usize) -> Vec<VirtTime> {
        let mut busy = vec![VirtTime::ZERO; processors];
        for s in &self.spans {
            if s.proc < processors {
                busy[s.proc] += s.end.since(s.start);
            }
        }
        busy
    }

    /// Serializes to the Chrome trace-event JSON array format (timestamps
    /// in microseconds), loadable in `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, s) in self.spans.iter().enumerate() {
            let name = match s.kind {
                SpanKind::Run => format!("t{}", s.thread),
                SpanKind::Dummy => format!("dummy t{}", s.thread),
                SpanKind::Resume => format!("t{} (resume)", s.thread),
            };
            let ts = s.start.as_ns() as f64 / 1e3;
            let dur = s.end.since(s.start).as_ns() as f64 / 1e3;
            out.push_str(&format!(
                "  {{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {}, \
                 \"ts\": {ts:.3}, \"dur\": {dur:.3}}}{}\n",
                s.proc,
                if i + 1 == self.spans.len() { "" } else { "," }
            ));
        }
        out.push(']');
        out
    }

    /// Sanity check: spans on the same processor must not overlap in
    /// virtual time. Returns the first violating pair, if any.
    pub fn find_overlap(&self) -> Option<(Span, Span)> {
        let mut per_proc: std::collections::HashMap<ProcId, Vec<Span>> = Default::default();
        for s in &self.spans {
            per_proc.entry(s.proc).or_default().push(*s);
        }
        for spans in per_proc.values_mut() {
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                if w[1].start < w[0].end {
                    return Some((w[0], w[1]));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::{run, scope, Config, SchedKind};

    #[test]
    fn trace_records_all_dispatches_without_overlap() {
        let cfg = Config::new(4, SchedKind::Df).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..16 {
                    s.spawn(move || crate::work(1000 * (i + 1)));
                }
            })
        });
        let trace = report.trace.as_ref().expect("trace enabled");
        assert!(!trace.is_empty());
        // Every dispatch produced a span.
        let dispatches: u64 = report.stats.procs.iter().map(|p| p.dispatches).sum();
        assert!(trace.len() as u64 >= dispatches);
        assert!(
            trace.find_overlap().is_none(),
            "spans on one processor must not overlap"
        );
        // Busy time from the trace matches the stats' busy time closely.
        let busy = trace.busy_per_proc(4);
        for (b, p) in busy.iter().zip(&report.stats.procs) {
            let stat_busy = p.breakdown.busy();
            assert!(
                b.as_ns() <= stat_busy.as_ns(),
                "trace busy {} > stats busy {}",
                b,
                stat_busy
            );
        }
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let cfg = Config::new(2, SchedKind::Fifo).with_trace();
        let (_, report) = run(cfg, || {
            let h = crate::spawn(|| crate::work(5000));
            h.join();
        });
        let json = report.trace.unwrap().to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"ph\": \"X\""));
        // Balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count()
        );
    }

    #[test]
    fn trace_disabled_by_default() {
        let (_, report) = run(Config::new(1, SchedKind::Df), || ());
        assert!(report.trace.is_none());
    }
}
