//! The flight recorder: execution spans, structured scheduler/memory
//! events, exactly-sampled counter tracks, and per-thread lifecycle
//! metrics, exportable as a Chrome/Perfetto trace.
//!
//! Enable with [`crate::Config::with_trace`]; the trace comes back on the
//! run's [`crate::Report`]. Everything is on the **virtual** timeline:
//!
//! * **Spans** ([`Span`]) — one per scheduling quantum, as before.
//! * **Events** ([`Event`]) — spawn, first dispatch, block/wake (with the
//!   blocking primitive as the reason), join, steal (victim → thief),
//!   dummy-thread insertion, quota preemption, stack reserve/release, and
//!   heap allocs/frees above [`crate::Config::trace_alloc_threshold`].
//! * **Counter tracks** ([`Counters`]) — committed footprint (the paper's
//!   Figure 9 curve), live threads, ready-queue length, active deque count
//!   (deque policies), and cumulative scheduler-lock wait. The footprint
//!   and live-thread tracks are sampled inside the machine at every change,
//!   so their maxima equal the reported high-water marks **bit-for-bit**.
//! * **Lifecycle** ([`ThreadLifecycle`]) — per thread: spawn → first
//!   dispatch latency, total ready-wait, quantum count, exit time;
//!   aggregated into percentile summaries by [`Trace::lifecycle`].
//!
//! The Chrome export ([`Trace::to_chrome_json`]) writes spans as `"ph":"X"`
//! duration records, events as `"ph":"i"` instants and counters as
//! `"ph":"C"` counter records; exact nanosecond payloads ride along in
//! `args`, which is what makes [`Trace::from_chrome_json`] a lossless
//! round trip (asserted in tests). The `ptdf-trace` CLI consumes this
//! format to summarize, validate, and diff traces.

use crate::json::{obj, Value};
use crate::thread::ThreadId;
use ptdf_smp::{HostPhaseStats, MachineRecording, MemEventKind, PhaseStat, ProcId, VirtTime};

/// What a trace span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SpanKind {
    /// A thread executing a scheduling quantum.
    Run,
    /// A dummy (allocation-throttle) thread.
    Dummy,
    /// Cost-free continuation of a time-sliced fiber.
    Resume,
}

impl SpanKind {
    fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Dummy => "dummy",
            SpanKind::Resume => "resume",
        }
    }

    fn from_name(s: &str) -> Option<SpanKind> {
        Some(match s {
            "run" => SpanKind::Run,
            "dummy" => SpanKind::Dummy,
            "resume" => SpanKind::Resume,
            _ => return None,
        })
    }
}

/// One execution span on a virtual processor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Span {
    /// Virtual processor.
    pub proc: ProcId,
    /// Thread id.
    pub thread: u32,
    /// Span start (virtual).
    pub start: VirtTime,
    /// Span end (virtual).
    pub end: VirtTime,
    /// Span kind.
    pub kind: SpanKind,
}

/// Which primitive a thread blocked on (the "reason" of a block event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum BlockReason {
    /// `JoinHandle::join` on a still-running thread.
    Join,
    /// [`crate::Mutex`] contention.
    Mutex,
    /// [`crate::Condvar::wait`].
    Condvar,
    /// [`crate::Semaphore::acquire`] with no permit.
    Semaphore,
    /// [`crate::Barrier::wait`] before the last arriver.
    Barrier,
    /// [`crate::RwLock`] read side.
    RwRead,
    /// [`crate::RwLock`] write side.
    RwWrite,
}

impl BlockReason {
    /// Stable reason name (used in the Chrome export and checker reports).
    pub fn name(self) -> &'static str {
        match self {
            BlockReason::Join => "join",
            BlockReason::Mutex => "mutex",
            BlockReason::Condvar => "condvar",
            BlockReason::Semaphore => "semaphore",
            BlockReason::Barrier => "barrier",
            BlockReason::RwRead => "rw-read",
            BlockReason::RwWrite => "rw-write",
        }
    }

    fn from_name(s: &str) -> Option<BlockReason> {
        Some(match s {
            "join" => BlockReason::Join,
            "mutex" => BlockReason::Mutex,
            "condvar" => BlockReason::Condvar,
            "semaphore" => BlockReason::Semaphore,
            "barrier" => BlockReason::Barrier,
            "rw-read" => BlockReason::RwRead,
            "rw-write" => BlockReason::RwWrite,
            _ => return None,
        })
    }
}

/// A structured scheduler or memory event.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub enum EventKind {
    /// A thread was created.
    Spawn {
        /// The forking thread, if any (`None` for the root).
        parent: Option<u32>,
    },
    /// A thread ran for the first time (stack committed, latency endpoint).
    FirstDispatch,
    /// A thread blocked on a primitive.
    Block {
        /// Which primitive.
        reason: BlockReason,
        /// Per-run id of the sync object blocked on (`None` for joins,
        /// which block on a thread, not an object).
        obj: Option<u32>,
    },
    /// A blocked thread was made ready.
    Wake {
        /// Thread that published the wake (`None` only for wakes issued
        /// outside any thread context).
        waker: Option<u32>,
    },
    /// A wake-capable sync operation (notify, post, barrier completion,
    /// lock handoff) executed; records what the primitive observed and
    /// claimed atomically, which is what lets the happens-before checker
    /// ([`crate::check_trace`]) catch lost notifies without reconstructing
    /// wait-list state from interleaved timestamps.
    Notify {
        /// Primitive kind performing the wake.
        reason: BlockReason,
        /// Per-run id of the sync object.
        obj: u32,
        /// Waiters present when the operation ran.
        waiters: u64,
        /// Waiters the operation actually woke.
        woken: u64,
    },
    /// A join completed (the joiner observed the target's exit).
    Join {
        /// The joined (exited) thread.
        target: u32,
    },
    /// A work migration: the event's processor stole the event's thread.
    Steal {
        /// Processor the thread was stolen from, when the policy knows it.
        victim: Option<u32>,
    },
    /// The DF allocation hook inserted dummy throttle threads.
    DummyInsert {
        /// Number of dummies (δ = ⌈bytes/K⌉).
        count: u64,
    },
    /// Memory-quota preemption (DF policies).
    Preempt,
    /// Thread stack reserved (at creation).
    StackReserve {
        /// Reserved bytes.
        bytes: u64,
    },
    /// Thread stack released (at exit).
    StackRelease {
        /// Released bytes.
        bytes: u64,
    },
    /// Heap allocation at or above the configured threshold.
    Alloc {
        /// Allocation size.
        bytes: u64,
    },
    /// Heap free at or above the configured threshold.
    Free {
        /// Freed size.
        bytes: u64,
    },
    /// A free underflowed the live byte count (a double free in the
    /// modelled program); always recorded, regardless of threshold.
    FreeUnderflow {
        /// Bytes by which the free exceeded the live count.
        bytes: u64,
    },
    /// The committed footprint first crossed the armed space bound
    /// ([`crate::Config::with_space_bound`]); recorded once, at the
    /// crossing growth (footprint is monotone, so one event marks the
    /// excursion; `MemStats::bound_violations` counts every growth above).
    BoundViolation {
        /// Footprint after the crossing growth.
        footprint: u64,
        /// The armed bound in bytes.
        bound: u64,
    },
    /// A timed wait expired: the subject thread woke itself at its armed
    /// deadline instead of being woken by a notify. Sanctioned by the
    /// happens-before checker — a timeout wake requires no notifier.
    Timeout {
        /// Sync object the wait was parked on (`None` for `join_timeout`
        /// and artificial chaos deadlines).
        obj: Option<u32>,
    },
    /// The deadlock sentinel detected a waits-for cycle. One event is
    /// recorded per cycle member (the subject thread), all sharing a
    /// per-run `cycle` index; following `waits_for` from any member walks
    /// the whole cycle.
    Deadlock {
        /// Per-run index of the detected cycle (members share it).
        cycle: u32,
        /// The thread this member waits for (the next cycle member).
        waits_for: u32,
        /// Sync object this member waits on (`None` for a join edge).
        obj: Option<u32>,
    },
}

impl EventKind {
    /// Stable event-kind name (used in the Chrome export and summaries).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Spawn { .. } => "spawn",
            EventKind::FirstDispatch => "first-dispatch",
            EventKind::Block { .. } => "block",
            EventKind::Wake { .. } => "wake",
            EventKind::Notify { .. } => "notify",
            EventKind::Join { .. } => "join",
            EventKind::Steal { .. } => "steal",
            EventKind::DummyInsert { .. } => "dummy-insert",
            EventKind::Preempt => "preempt",
            EventKind::StackReserve { .. } => "stack-reserve",
            EventKind::StackRelease { .. } => "stack-release",
            EventKind::Alloc { .. } => "alloc",
            EventKind::Free { .. } => "free",
            EventKind::FreeUnderflow { .. } => "free-underflow",
            EventKind::BoundViolation { .. } => "bound-violation",
            EventKind::Timeout { .. } => "timeout",
            EventKind::Deadlock { .. } => "deadlock",
        }
    }
}

/// One event on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Event {
    /// Virtual time of the event.
    pub at: VirtTime,
    /// Acting processor.
    pub proc: ProcId,
    /// Subject thread, when known (machine-level memory events have none).
    pub thread: Option<u32>,
    /// What happened.
    pub kind: EventKind,
}

/// Counter tracks: `(virtual time, value)` samples.
///
/// `footprint`, `live_threads` and `sched_lock_wait` are sampled inside the
/// machine at every change (see `ptdf_smp::MachineRecording`), so
/// `max(footprint) == MemStats::footprint_hwm` and `max(live_threads) ==
/// MemStats::live_threads_hwm` exactly. `ready` and `active_deques` are
/// sampled at every dispatch.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct Counters {
    /// Committed footprint in bytes (the paper's Figure 9 curve).
    pub footprint: Vec<(VirtTime, u64)>,
    /// Live (created, not exited) threads.
    pub live_threads: Vec<(VirtTime, u64)>,
    /// Schedulable entries in the policy's ready set.
    pub ready: Vec<(VirtTime, u64)>,
    /// Live deques (deque policies only; empty for the serialized ones).
    pub active_deques: Vec<(VirtTime, u64)>,
    /// Cumulative scheduler-lock contention wait in nanoseconds.
    pub sched_lock_wait: Vec<(VirtTime, u64)>,
    /// Bytes cached in the host fiber-stack pool, sampled at every
    /// acquire/release (host memory; not part of the virtual footprint).
    pub host_pool_cached: Vec<(VirtTime, u64)>,
}

/// Per-thread lifecycle record.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ThreadLifecycle {
    /// Thread id.
    pub thread: u32,
    /// Creation time.
    pub spawned: VirtTime,
    /// First dispatch time (`None` if never dispatched).
    pub first_dispatch: Option<VirtTime>,
    /// Total time spent ready-but-not-running.
    pub ready_wait: VirtTime,
    /// Scheduling quanta received (full dispatches, not resumes).
    pub quanta: u64,
    /// Exit time (`None` if still live at trace capture).
    pub exited: Option<VirtTime>,
}

impl ThreadLifecycle {
    fn new(thread: u32, spawned: VirtTime) -> Self {
        ThreadLifecycle {
            thread,
            spawned,
            first_dispatch: None,
            ready_wait: VirtTime::ZERO,
            quanta: 0,
            exited: None,
        }
    }
}

/// Configuration echo carried by a trace so tools can interpret it
/// standalone.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct TraceMeta {
    /// Scheduler name (`"df"`, `"fifo"`, ...).
    pub scheduler: String,
    /// Virtual processor count.
    pub processors: usize,
    /// Default accounted stack size in bytes.
    pub default_stack: u64,
    /// DF memory quota `K`, for the quota-carrying policies.
    pub quota: Option<u64>,
    /// Schedule-perturbation seed the run used, if any — together with
    /// `scheduler` this is the full replay recipe for the schedule.
    pub perturb_seed: Option<u64>,
    /// Chaos-fault seed ([`crate::Config::with_chaos`]) the run used, if
    /// any; part of the replay recipe when present.
    pub chaos_seed: Option<u64>,
}

/// A recorded flight-recorder trace.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct Trace {
    /// Run configuration echo.
    pub meta: TraceMeta,
    /// All spans, in engine (real-time) order.
    pub spans: Vec<Span>,
    /// All events, sorted by virtual time (stable) once the run completes.
    pub events: Vec<Event>,
    /// Counter tracks.
    pub counters: Counters,
    /// Per-thread lifecycle records, indexed by thread id.
    pub threads: Vec<ThreadLifecycle>,
    /// Host-side engine phase profile, when the run was profiled
    /// ([`crate::Config::with_host_profile`]); rides along so trace tools
    /// can report it standalone.
    pub host_phase: Option<HostPhaseStats>,
}

/// Percentiles and a log₂ histogram over one latency population.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LatencyStats {
    /// Sample count.
    pub count: u64,
    /// Median.
    pub p50: VirtTime,
    /// 90th percentile.
    pub p90: VirtTime,
    /// 99th percentile.
    pub p99: VirtTime,
    /// Maximum.
    pub max: VirtTime,
    /// `hist_log2[0]` counts zero-valued samples; `hist_log2[i]` (i ≥ 1)
    /// counts samples in `[2^(i-1), 2^i)` nanoseconds.
    pub hist_log2: Vec<u64>,
}

impl LatencyStats {
    fn from_ns(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        samples.sort_unstable();
        let n = samples.len();
        let pct = |q: f64| {
            let idx = ((n - 1) as f64 * q).round() as usize;
            VirtTime::from_ns(samples[idx])
        };
        let mut hist = Vec::new();
        for &s in &samples {
            let bucket = if s == 0 { 0 } else { 64 - s.leading_zeros() as usize };
            if hist.len() <= bucket {
                hist.resize(bucket + 1, 0);
            }
            hist[bucket] += 1;
        }
        LatencyStats {
            count: n as u64,
            p50: pct(0.50),
            p90: pct(0.90),
            p99: pct(0.99),
            max: VirtTime::from_ns(samples[n - 1]),
            hist_log2: hist,
        }
    }
}

/// Aggregated per-thread lifecycle metrics (see [`Trace::lifecycle`]).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct LifecycleSummary {
    /// Threads with a lifecycle record.
    pub threads: u64,
    /// Total scheduling quanta across all threads (== total dispatches).
    pub total_quanta: u64,
    /// Spawn → first-dispatch latency, over dispatched threads.
    pub dispatch_latency: LatencyStats,
    /// Total ready-wait per thread, over all threads.
    pub ready_wait: LatencyStats,
}

impl Trace {
    pub(crate) fn new(meta: TraceMeta) -> Self {
        Trace {
            meta,
            ..Trace::default()
        }
    }

    pub(crate) fn record(
        &mut self,
        proc: ProcId,
        thread: ThreadId,
        start: VirtTime,
        end: VirtTime,
        kind: SpanKind,
    ) {
        self.spans.push(Span {
            proc,
            thread: thread.0,
            start,
            end,
            kind,
        });
    }

    fn lifecycle_mut(&mut self, thread: u32, spawned_hint: VirtTime) -> &mut ThreadLifecycle {
        let idx = thread as usize;
        while self.threads.len() <= idx {
            let t = self.threads.len() as u32;
            self.threads.push(ThreadLifecycle::new(t, spawned_hint));
        }
        &mut self.threads[idx]
    }

    /// Records an event, maintaining the lifecycle records for the
    /// lifecycle-bearing kinds.
    pub(crate) fn event(&mut self, at: VirtTime, proc: ProcId, thread: Option<u32>, kind: EventKind) {
        if let Some(t) = thread {
            match kind {
                EventKind::Spawn { .. } => {
                    self.lifecycle_mut(t, at).spawned = at;
                }
                EventKind::FirstDispatch => {
                    let lc = self.lifecycle_mut(t, at);
                    if lc.first_dispatch.is_none() {
                        lc.first_dispatch = Some(at);
                    }
                }
                _ => {}
            }
        }
        self.events.push(Event {
            at,
            proc,
            thread,
            kind,
        });
    }

    /// Counts one scheduling quantum for `thread`.
    pub(crate) fn note_quantum(&mut self, thread: u32, at: VirtTime) {
        self.lifecycle_mut(thread, at).quanta += 1;
    }

    /// Accrues ready-but-not-running wait for `thread`.
    pub(crate) fn add_ready_wait(&mut self, thread: u32, wait: VirtTime) {
        self.lifecycle_mut(thread, VirtTime::ZERO).ready_wait += wait;
    }

    /// Marks `thread` exited at `at`.
    pub(crate) fn note_exit(&mut self, thread: u32, at: VirtTime) {
        self.lifecycle_mut(thread, at).exited = Some(at);
    }

    /// Samples the ready-set size (deduplicating unchanged values).
    pub(crate) fn sample_ready(&mut self, at: VirtTime, len: u64) {
        if self.counters.ready.last().map(|&(_, v)| v) != Some(len) {
            self.counters.ready.push((at, len));
        }
    }

    /// Samples the active-deque count (deduplicating unchanged values).
    pub(crate) fn sample_active_deques(&mut self, at: VirtTime, n: u64) {
        if self.counters.active_deques.last().map(|&(_, v)| v) != Some(n) {
            self.counters.active_deques.push((at, n));
        }
    }

    /// Samples the host stack-pool cached bytes (deduplicating unchanged
    /// values).
    pub(crate) fn sample_pool_cached(&mut self, at: VirtTime, bytes: u64) {
        if self.counters.host_pool_cached.last().map(|&(_, v)| v) != Some(bytes) {
            self.counters.host_pool_cached.push((at, bytes));
        }
    }

    /// Merges the machine-level recording (memory events, exactly-sampled
    /// footprint/live-thread/lock-wait tracks) and sorts the merged event
    /// stream by virtual time. Called once at end of run.
    pub(crate) fn absorb_machine(&mut self, rec: MachineRecording) {
        for e in rec.events {
            let kind = match e.kind {
                MemEventKind::Alloc { bytes } => EventKind::Alloc { bytes },
                MemEventKind::Free { bytes } => EventKind::Free { bytes },
                MemEventKind::StackReserve { bytes } => EventKind::StackReserve { bytes },
                MemEventKind::StackRelease { bytes } => EventKind::StackRelease { bytes },
                MemEventKind::FreeUnderflow { bytes } => EventKind::FreeUnderflow { bytes },
                MemEventKind::BoundViolation { footprint, bound } => {
                    EventKind::BoundViolation { footprint, bound }
                }
            };
            self.events.push(Event {
                at: e.at,
                proc: e.proc,
                thread: None,
                kind,
            });
        }
        self.counters.footprint = rec.footprint;
        self.counters.live_threads = rec.live_threads;
        self.counters.sched_lock_wait = rec.sched_lock_wait;
        // Machine samples and runtime events arrive in engine (real-time)
        // order; processors' clocks interleave, so sort everything onto the
        // virtual timeline (stably: ties keep engine order).
        self.counters.footprint.sort_by_key(|&(at, _)| at);
        self.counters.live_threads.sort_by_key(|&(at, _)| at);
        self.counters.sched_lock_wait.sort_by_key(|&(at, _)| at);
        self.counters.ready.sort_by_key(|&(at, _)| at);
        self.counters.active_deques.sort_by_key(|&(at, _)| at);
        self.counters.host_pool_cached.sort_by_key(|&(at, _)| at);
        self.events.sort_by_key(|e| e.at);
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Per-processor busy time implied by the spans.
    pub fn busy_per_proc(&self, processors: usize) -> Vec<VirtTime> {
        let mut busy = vec![VirtTime::ZERO; processors];
        for s in &self.spans {
            if s.proc < processors {
                busy[s.proc] += s.end.since(s.start);
            }
        }
        busy
    }

    /// High-water committed footprint implied by the footprint track
    /// (equals `MemStats::footprint_hwm` exactly; 0 without counters).
    pub fn footprint_hwm(&self) -> u64 {
        self.counters.footprint.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Peak live threads implied by the live-thread track (equals
    /// `MemStats::live_threads_hwm` exactly; 0 without counters).
    pub fn max_live_threads(&self) -> u64 {
        self.counters.live_threads.iter().map(|&(_, v)| v).max().unwrap_or(0)
    }

    /// Event counts per kind name, sorted by name.
    pub fn event_kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for e in &self.events {
            let name = e.kind.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by_key(|&(n, _)| n);
        counts
    }

    /// Aggregates the per-thread lifecycle records into percentile
    /// summaries.
    pub fn lifecycle(&self) -> LifecycleSummary {
        let mut latency = Vec::new();
        let mut waits = Vec::new();
        let mut total_quanta = 0;
        for t in &self.threads {
            total_quanta += t.quanta;
            if let Some(fd) = t.first_dispatch {
                latency.push(fd.since(t.spawned).as_ns());
            }
            waits.push(t.ready_wait.as_ns());
        }
        LifecycleSummary {
            threads: self.threads.len() as u64,
            total_quanta,
            dispatch_latency: LatencyStats::from_ns(latency),
            ready_wait: LatencyStats::from_ns(waits),
        }
    }

    /// Sanity check: spans on the same processor must not overlap in
    /// virtual time. Returns the first violating pair (in `(proc, start)`
    /// order), if any. One sort + one linear pass.
    pub fn find_overlap(&self) -> Option<(Span, Span)> {
        let mut sorted = self.spans.clone();
        sorted.sort_by_key(|s| (s.proc, s.start));
        sorted
            .windows(2)
            .find(|w| w[0].proc == w[1].proc && w[1].start < w[0].end)
            .map(|w| (w[0], w[1]))
    }

    /// Structural validation: span sanity and no-overlap, globally sorted
    /// events, monotone counter tracks, and lifecycle ordering
    /// (spawn ≤ first dispatch ≤ exit; dispatched threads have quanta).
    pub fn validate(&self) -> Result<(), String> {
        for s in &self.spans {
            if s.end < s.start {
                return Err(format!("span t{} on proc {} ends before it starts", s.thread, s.proc));
            }
        }
        if let Some((a, b)) = self.find_overlap() {
            return Err(format!(
                "overlap on proc {}: t{} [{}, {}) and t{} [{}, {})",
                a.proc, a.thread, a.start, a.end, b.thread, b.start, b.end
            ));
        }
        if let Some(w) = self.events.windows(2).find(|w| w[1].at < w[0].at) {
            return Err(format!(
                "events out of order: {} at {} after {} at {}",
                w[1].kind.name(),
                w[1].at,
                w[0].kind.name(),
                w[0].at
            ));
        }
        for (name, track) in [
            ("footprint", &self.counters.footprint),
            ("live-threads", &self.counters.live_threads),
            ("ready", &self.counters.ready),
            ("active-deques", &self.counters.active_deques),
            ("sched-lock-wait", &self.counters.sched_lock_wait),
            ("host-pool-cached", &self.counters.host_pool_cached),
        ] {
            if track.windows(2).any(|w| w[1].0 < w[0].0) {
                return Err(format!("counter track {name} has out-of-order samples"));
            }
        }
        for t in &self.threads {
            if let Some(fd) = t.first_dispatch {
                if fd < t.spawned {
                    return Err(format!("t{} dispatched before spawn", t.thread));
                }
                if t.quanta == 0 {
                    return Err(format!("t{} dispatched but has zero quanta", t.thread));
                }
                if let Some(ex) = t.exited {
                    if ex < fd {
                        return Err(format!("t{} exited before first dispatch", t.thread));
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes to Chrome trace-event JSON (object form), loadable in
    /// `chrome://tracing` and Perfetto: spans as `"ph":"X"` durations,
    /// events as `"ph":"i"` instants, counters as `"ph":"C"` records
    /// (timestamps in microseconds). Exact nanosecond values ride in
    /// `args`, making [`Trace::from_chrome_json`] lossless.
    pub fn to_chrome_json(&self) -> String {
        self.chrome_doc(self.chrome_records()).to_json()
    }

    /// Serializes like [`Trace::to_chrome_json`], additionally rendering an
    /// analyzed critical path ([`crate::critpath::CritPath`]) as a dedicated
    /// Perfetto track: the path's segments become `"ph":"X"` durations on
    /// `pid` 1 (the base trace uses `pid` 0), named by blame bucket, so the
    /// realized critical path reads as one swim-lane above the
    /// per-processor lanes. [`Trace::from_chrome_json`] ignores the extra
    /// track (any record with a nonzero `pid`), so the round trip of the
    /// base trace still holds.
    pub fn to_chrome_json_with_critpath(&self, cp: &crate::critpath::CritPath) -> String {
        let us = |t: VirtTime| Value::Float(t.as_ns() as f64 / 1e3);
        let mut records = self.chrome_records();
        records.push(obj(vec![
            ("name", Value::Str("process_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(1)),
            ("args", obj(vec![("name", Value::Str("critical path".into()))])),
        ]));
        records.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::UInt(1)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("name", Value::Str("blame".into()))])),
        ]));
        for seg in &cp.segments {
            let name = match seg.bucket {
                crate::critpath::BlameBucket::LockWait { reason, obj } => match obj {
                    Some(o) => format!("lock-wait {}#{o}", reason.name()),
                    None => format!("lock-wait {}", reason.name()),
                },
                other => other.name().to_string(),
            };
            records.push(obj(vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str("X".into())),
                ("cat", Value::Str("critpath".into())),
                ("pid", Value::UInt(1)),
                ("tid", Value::UInt(0)),
                ("ts", us(seg.start)),
                ("dur", us(seg.end.since(seg.start))),
                (
                    "args",
                    obj(vec![
                        (
                            "thread",
                            seg.thread.map_or(Value::Null, |t| Value::UInt(t as u64)),
                        ),
                        ("bucket", Value::Str(seg.bucket.name().into())),
                        ("startNs", Value::UInt(seg.start.as_ns())),
                        ("endNs", Value::UInt(seg.end.as_ns())),
                    ]),
                ),
            ]));
        }
        self.chrome_doc(records).to_json()
    }

    /// Builds the per-span/event/counter records shared by both exporters.
    fn chrome_records(&self) -> Vec<Value> {
        let us = |t: VirtTime| Value::Float(t.as_ns() as f64 / 1e3);
        let mut records = Vec::new();
        for s in &self.spans {
            let name = match s.kind {
                SpanKind::Run => format!("t{}", s.thread),
                SpanKind::Dummy => format!("dummy t{}", s.thread),
                SpanKind::Resume => format!("t{} (resume)", s.thread),
            };
            records.push(obj(vec![
                ("name", Value::Str(name)),
                ("ph", Value::Str("X".into())),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(s.proc as u64)),
                ("ts", us(s.start)),
                ("dur", us(s.end.since(s.start))),
                (
                    "args",
                    obj(vec![
                        ("thread", Value::UInt(s.thread as u64)),
                        ("kind", Value::Str(s.kind.name().into())),
                        ("startNs", Value::UInt(s.start.as_ns())),
                        ("endNs", Value::UInt(s.end.as_ns())),
                    ]),
                ),
            ]));
        }
        for e in &self.events {
            let mut args = vec![
                ("ns", Value::UInt(e.at.as_ns())),
                (
                    "thread",
                    e.thread.map_or(Value::Null, |t| Value::UInt(t as u64)),
                ),
            ];
            match e.kind {
                EventKind::Spawn { parent } => args.push((
                    "parent",
                    parent.map_or(Value::Null, |p| Value::UInt(p as u64)),
                )),
                EventKind::Block { reason, obj } => {
                    args.push(("reason", Value::Str(reason.name().into())));
                    args.push(("obj", obj.map_or(Value::Null, |o| Value::UInt(o as u64))));
                }
                EventKind::Wake { waker } => args.push((
                    "waker",
                    waker.map_or(Value::Null, |w| Value::UInt(w as u64)),
                )),
                EventKind::Notify {
                    reason,
                    obj,
                    waiters,
                    woken,
                } => {
                    args.push(("reason", Value::Str(reason.name().into())));
                    args.push(("obj", Value::UInt(obj as u64)));
                    args.push(("waiters", Value::UInt(waiters)));
                    args.push(("woken", Value::UInt(woken)));
                }
                EventKind::Join { target } => args.push(("target", Value::UInt(target as u64))),
                EventKind::Steal { victim } => args.push((
                    "victim",
                    victim.map_or(Value::Null, |v| Value::UInt(v as u64)),
                )),
                EventKind::DummyInsert { count } => args.push(("count", Value::UInt(count))),
                EventKind::StackReserve { bytes }
                | EventKind::StackRelease { bytes }
                | EventKind::Alloc { bytes }
                | EventKind::Free { bytes }
                | EventKind::FreeUnderflow { bytes } => {
                    args.push(("bytes", Value::UInt(bytes)));
                }
                EventKind::BoundViolation { footprint, bound } => {
                    args.push(("footprint", Value::UInt(footprint)));
                    args.push(("bound", Value::UInt(bound)));
                }
                EventKind::Timeout { obj } => {
                    args.push(("obj", obj.map_or(Value::Null, |o| Value::UInt(o as u64))));
                }
                EventKind::Deadlock { cycle, waits_for, obj } => {
                    args.push(("cycle", Value::UInt(cycle as u64)));
                    args.push(("waitsFor", Value::UInt(waits_for as u64)));
                    args.push(("obj", obj.map_or(Value::Null, |o| Value::UInt(o as u64))));
                }
                EventKind::FirstDispatch | EventKind::Preempt => {}
            }
            records.push(obj(vec![
                ("name", Value::Str(e.kind.name().into())),
                ("ph", Value::Str("i".into())),
                ("s", Value::Str("t".into())),
                ("pid", Value::UInt(0)),
                ("tid", Value::UInt(e.proc as u64)),
                ("ts", us(e.at)),
                ("args", obj(args)),
            ]));
        }
        for (name, unit, track) in [
            ("footprint", "bytes", &self.counters.footprint),
            ("live-threads", "threads", &self.counters.live_threads),
            ("ready", "entries", &self.counters.ready),
            ("active-deques", "deques", &self.counters.active_deques),
            ("sched-lock-wait", "waitNs", &self.counters.sched_lock_wait),
            ("host-pool-cached", "bytes", &self.counters.host_pool_cached),
        ] {
            for &(at, v) in track {
                records.push(obj(vec![
                    ("name", Value::Str(name.into())),
                    ("ph", Value::Str("C".into())),
                    ("pid", Value::UInt(0)),
                    ("ts", us(at)),
                    (
                        "args",
                        obj(vec![(unit, Value::UInt(v)), ("ns", Value::UInt(at.as_ns()))]),
                    ),
                ]));
            }
        }
        records
    }

    /// Wraps the record array into the Chrome trace-event document, carrying
    /// the config echo (and the host-phase profile, when present) in
    /// `otherData`.
    fn chrome_doc(&self, records: Vec<Value>) -> Value {
        let host_phase = match &self.host_phase {
            None => Value::Null,
            Some(hp) => {
                let mut members = vec![("enabled", Value::Bool(hp.enabled))];
                let phase = |p: PhaseStat| {
                    obj(vec![
                        ("count", Value::UInt(p.count)),
                        ("ns", Value::UInt(p.ns)),
                    ])
                };
                for (name, p) in hp.phases() {
                    members.push((name, phase(p)));
                }
                obj(members)
            }
        };
        let threads = self
            .threads
            .iter()
            .map(|t| {
                obj(vec![
                    ("thread", Value::UInt(t.thread as u64)),
                    ("spawnedNs", Value::UInt(t.spawned.as_ns())),
                    (
                        "firstDispatchNs",
                        t.first_dispatch
                            .map_or(Value::Null, |v| Value::UInt(v.as_ns())),
                    ),
                    ("readyWaitNs", Value::UInt(t.ready_wait.as_ns())),
                    ("quanta", Value::UInt(t.quanta)),
                    (
                        "exitedNs",
                        t.exited.map_or(Value::Null, |v| Value::UInt(v.as_ns())),
                    ),
                ])
            })
            .collect();
        obj(vec![
            ("traceEvents", Value::Arr(records)),
            (
                "otherData",
                obj(vec![
                    ("scheduler", Value::Str(self.meta.scheduler.clone())),
                    ("processors", Value::UInt(self.meta.processors as u64)),
                    ("defaultStack", Value::UInt(self.meta.default_stack)),
                    (
                        "quota",
                        self.meta.quota.map_or(Value::Null, Value::UInt),
                    ),
                    (
                        "perturbSeed",
                        self.meta.perturb_seed.map_or(Value::Null, Value::UInt),
                    ),
                    (
                        "chaosSeed",
                        self.meta.chaos_seed.map_or(Value::Null, Value::UInt),
                    ),
                    ("hostPhase", host_phase),
                ]),
            ),
            ("ptdfThreads", Value::Arr(threads)),
        ])
    }

    /// Parses a trace back from [`Trace::to_chrome_json`] output. Exact:
    /// the result compares equal to the original trace.
    pub fn from_chrome_json(text: &str) -> Result<Trace, String> {
        let doc = Value::parse(text)?;
        let mut trace = Trace::default();
        if let Some(meta) = doc.get("otherData") {
            trace.meta = TraceMeta {
                scheduler: meta
                    .get("scheduler")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string(),
                processors: meta
                    .get("processors")
                    .and_then(Value::as_u64)
                    .unwrap_or(0) as usize,
                default_stack: meta
                    .get("defaultStack")
                    .and_then(Value::as_u64)
                    .unwrap_or(0),
                quota: meta.get("quota").and_then(Value::as_u64),
                perturb_seed: meta.get("perturbSeed").and_then(Value::as_u64),
                chaos_seed: meta.get("chaosSeed").and_then(Value::as_u64),
            };
            if let Some(hp) = meta.get("hostPhase") {
                if hp.get("enabled").is_some() {
                    let mut stats = HostPhaseStats {
                        enabled: hp.get("enabled").and_then(Value::as_bool).unwrap_or(false),
                        ..HostPhaseStats::default()
                    };
                    for (name, slot) in [
                        ("heap_push", &mut stats.heap_push),
                        ("heap_pop", &mut stats.heap_pop),
                        ("charge", &mut stats.charge),
                        ("sched_lock", &mut stats.sched_lock),
                        ("sched_pop", &mut stats.sched_pop),
                        ("dispatch", &mut stats.dispatch),
                        ("trace_alloc", &mut stats.trace_alloc),
                    ] {
                        if let Some(p) = hp.get(name) {
                            slot.count = p.get("count").and_then(Value::as_u64).unwrap_or(0);
                            slot.ns = p.get("ns").and_then(Value::as_u64).unwrap_or(0);
                        }
                    }
                    trace.host_phase = Some(stats);
                }
            }
        }
        let records = doc
            .get("traceEvents")
            .and_then(Value::as_arr)
            .ok_or("missing traceEvents array")?;
        for r in records {
            // Auxiliary tracks (the critical-path lane, metadata records)
            // live on nonzero pids; the recorded trace itself is pid 0.
            if r.get("pid").and_then(Value::as_u64).unwrap_or(0) != 0 {
                continue;
            }
            let ph = r.get("ph").and_then(Value::as_str).ok_or("record without ph")?;
            let name = r.get("name").and_then(Value::as_str).unwrap_or("");
            let args = r.get("args");
            let arg_u64 = |key: &str| args.and_then(|a| a.get(key)).and_then(Value::as_u64);
            let arg_str =
                |key: &str| args.and_then(|a| a.get(key)).and_then(Value::as_str);
            match ph {
                "X" => {
                    let kind = arg_str("kind")
                        .and_then(SpanKind::from_name)
                        .ok_or("span without kind")?;
                    trace.spans.push(Span {
                        proc: r.get("tid").and_then(Value::as_u64).unwrap_or(0) as usize,
                        thread: arg_u64("thread").ok_or("span without thread")? as u32,
                        start: VirtTime::from_ns(arg_u64("startNs").ok_or("span without startNs")?),
                        end: VirtTime::from_ns(arg_u64("endNs").ok_or("span without endNs")?),
                        kind,
                    });
                }
                "i" => {
                    let kind = match name {
                        "spawn" => EventKind::Spawn {
                            parent: arg_u64("parent").map(|v| v as u32),
                        },
                        "first-dispatch" => EventKind::FirstDispatch,
                        "block" => EventKind::Block {
                            reason: arg_str("reason")
                                .and_then(BlockReason::from_name)
                                .ok_or("block without reason")?,
                            obj: arg_u64("obj").map(|v| v as u32),
                        },
                        "wake" => EventKind::Wake {
                            waker: arg_u64("waker").map(|v| v as u32),
                        },
                        "notify" => EventKind::Notify {
                            reason: arg_str("reason")
                                .and_then(BlockReason::from_name)
                                .ok_or("notify without reason")?,
                            obj: arg_u64("obj").ok_or("notify without obj")? as u32,
                            waiters: arg_u64("waiters").ok_or("notify without waiters")?,
                            woken: arg_u64("woken").ok_or("notify without woken")?,
                        },
                        "join" => EventKind::Join {
                            target: arg_u64("target").ok_or("join without target")? as u32,
                        },
                        "steal" => EventKind::Steal {
                            victim: arg_u64("victim").map(|v| v as u32),
                        },
                        "dummy-insert" => EventKind::DummyInsert {
                            count: arg_u64("count").ok_or("dummy-insert without count")?,
                        },
                        "preempt" => EventKind::Preempt,
                        "stack-reserve" => EventKind::StackReserve {
                            bytes: arg_u64("bytes").ok_or("stack-reserve without bytes")?,
                        },
                        "stack-release" => EventKind::StackRelease {
                            bytes: arg_u64("bytes").ok_or("stack-release without bytes")?,
                        },
                        "alloc" => EventKind::Alloc {
                            bytes: arg_u64("bytes").ok_or("alloc without bytes")?,
                        },
                        "free-underflow" => EventKind::FreeUnderflow {
                            bytes: arg_u64("bytes").ok_or("free-underflow without bytes")?,
                        },
                        "bound-violation" => EventKind::BoundViolation {
                            footprint: arg_u64("footprint")
                                .ok_or("bound-violation without footprint")?,
                            bound: arg_u64("bound").ok_or("bound-violation without bound")?,
                        },
                        "free" => EventKind::Free {
                            bytes: arg_u64("bytes").ok_or("free without bytes")?,
                        },
                        "timeout" => EventKind::Timeout {
                            obj: arg_u64("obj").map(|v| v as u32),
                        },
                        "deadlock" => EventKind::Deadlock {
                            cycle: arg_u64("cycle").ok_or("deadlock without cycle")? as u32,
                            waits_for: arg_u64("waitsFor").ok_or("deadlock without waitsFor")?
                                as u32,
                            obj: arg_u64("obj").map(|v| v as u32),
                        },
                        other => return Err(format!("unknown instant event {other:?}")),
                    };
                    trace.events.push(Event {
                        at: VirtTime::from_ns(arg_u64("ns").ok_or("event without ns")?),
                        proc: r.get("tid").and_then(Value::as_u64).unwrap_or(0) as usize,
                        thread: arg_u64("thread").map(|v| v as u32),
                        kind,
                    });
                }
                "C" => {
                    let at = VirtTime::from_ns(arg_u64("ns").ok_or("counter without ns")?);
                    let (track, unit) = match name {
                        "footprint" => (&mut trace.counters.footprint, "bytes"),
                        "live-threads" => (&mut trace.counters.live_threads, "threads"),
                        "ready" => (&mut trace.counters.ready, "entries"),
                        "active-deques" => (&mut trace.counters.active_deques, "deques"),
                        "sched-lock-wait" => (&mut trace.counters.sched_lock_wait, "waitNs"),
                        "host-pool-cached" => (&mut trace.counters.host_pool_cached, "bytes"),
                        other => return Err(format!("unknown counter {other:?}")),
                    };
                    track.push((at, arg_u64(unit).ok_or("counter without value")?));
                }
                other => return Err(format!("unknown phase {other:?}")),
            }
        }
        if let Some(threads) = doc.get("ptdfThreads").and_then(Value::as_arr) {
            for t in threads {
                let u = |key: &str| t.get(key).and_then(Value::as_u64);
                trace.threads.push(ThreadLifecycle {
                    thread: u("thread").ok_or("lifecycle without thread")? as u32,
                    spawned: VirtTime::from_ns(u("spawnedNs").ok_or("lifecycle without spawnedNs")?),
                    first_dispatch: u("firstDispatchNs").map(VirtTime::from_ns),
                    ready_wait: VirtTime::from_ns(u("readyWaitNs").unwrap_or(0)),
                    quanta: u("quanta").unwrap_or(0),
                    exited: u("exitedNs").map(VirtTime::from_ns),
                });
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, Config, SchedKind};

    #[test]
    fn trace_records_all_dispatches_without_overlap() {
        let cfg = Config::new(4, SchedKind::Df).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..16 {
                    s.spawn(move || crate::work(1000 * (i + 1)));
                }
            })
        });
        let trace = report.trace.as_ref().expect("trace enabled");
        assert!(!trace.is_empty());
        // Every dispatch produced a span.
        let dispatches: u64 = report.stats.procs.iter().map(|p| p.dispatches).sum();
        assert!(trace.len() as u64 >= dispatches);
        assert!(
            trace.find_overlap().is_none(),
            "spans on one processor must not overlap"
        );
        // Busy time from the trace matches the stats' busy time closely.
        let busy = trace.busy_per_proc(4);
        for (b, p) in busy.iter().zip(&report.stats.procs) {
            let stat_busy = p.breakdown.busy();
            assert!(
                b.as_ns() <= stat_busy.as_ns(),
                "trace busy {} > stats busy {}",
                b,
                stat_busy
            );
        }
        trace.validate().expect("structurally valid trace");
    }

    #[test]
    fn chrome_json_round_trips_exactly() {
        let cfg = Config::new(2, SchedKind::Df).with_trace().with_quota(2048);
        let (_, report) = run(cfg, || {
            let h = crate::spawn(|| {
                crate::rt_alloc(64 * 1024); // forces dummies + preemption
                crate::work(5000);
                crate::rt_free(64 * 1024);
            });
            h.join();
        });
        let trace = report.trace.unwrap();
        let json = trace.to_chrome_json();
        // Well-formed JSON (full parse, not brace counting).
        let doc = Value::parse(&json).expect("well-formed JSON");
        assert!(doc.get("traceEvents").is_some());
        // Lossless round trip.
        let back = Trace::from_chrome_json(&json).expect("parse back");
        assert_eq!(back, trace);
    }

    #[test]
    fn chrome_json_round_trips_host_phase_and_skips_critpath_track() {
        let cfg = Config::new(2, SchedKind::Df).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..6 {
                    s.spawn(move || crate::work(1000 * (i + 1)));
                }
            })
        });
        let mut trace = report.trace.unwrap();
        let mut hp = HostPhaseStats {
            enabled: true,
            ..HostPhaseStats::default()
        };
        hp.heap_push.count = 3;
        hp.heap_push.ns = 1234;
        hp.dispatch.count = 17;
        hp.dispatch.ns = 98765;
        trace.host_phase = Some(hp);
        let back = Trace::from_chrome_json(&trace.to_chrome_json()).expect("parse back");
        assert_eq!(back, trace, "hostPhase must survive the round trip");
        // The merged critical-path export parses back to the same base
        // trace: the extra pid-1 lane is skipped on import.
        let cp = crate::critpath::analyze(&trace);
        assert!(!cp.segments.is_empty());
        let merged = trace.to_chrome_json_with_critpath(&cp);
        assert!(merged.contains("\"critpath\""));
        let back = Trace::from_chrome_json(&merged).expect("parse merged");
        assert_eq!(back, trace);
    }

    #[test]
    fn trace_disabled_by_default() {
        let (_, report) = run(Config::new(1, SchedKind::Df), || ());
        assert!(report.trace.is_none());
    }

    #[test]
    fn overlap_ignores_adjacent_processors() {
        let span = |proc, start, end| Span {
            proc,
            thread: 0,
            start: VirtTime::from_ns(start),
            end: VirtTime::from_ns(end),
            kind: SpanKind::Run,
        };
        // Overlapping intervals on *different* processors: not an overlap.
        let mut t = Trace::default();
        t.spans.push(span(0, 0, 100));
        t.spans.push(span(1, 50, 150));
        assert!(t.find_overlap().is_none(), "adjacent-processor false positive");
        // The same intervals on one processor: caught.
        let mut t = Trace::default();
        t.spans.push(span(2, 0, 100));
        t.spans.push(span(2, 50, 150));
        let (a, b) = t.find_overlap().expect("must catch same-proc overlap");
        assert_eq!((a.start.as_ns(), b.start.as_ns()), (0, 50));
    }

    #[test]
    fn events_cover_the_taxonomy() {
        // Df run: memory-path kinds (dummies, preemption, alloc/free).
        let cfg = Config::new(2, SchedKind::Df).with_trace().with_quota(1024);
        let (_, report) = run(cfg, || {
            let h = crate::spawn(|| crate::work(5000));
            crate::rt_alloc(8 * 1024); // > K -> dummies + preempt
            crate::rt_free(8 * 1024);
            h.join();
        });
        let trace = report.trace.unwrap();
        let counts = trace.event_kind_counts();
        let has = |k: &str| counts.iter().any(|&(n, _)| n == k);
        for kind in [
            "spawn",
            "first-dispatch",
            "join",
            "dummy-insert",
            "preempt",
            "stack-reserve",
            "stack-release",
            "alloc",
            "free",
        ] {
            assert!(has(kind), "missing event kind {kind}: {counts:?}");
        }
        assert!(counts.len() >= 6, "acceptance: >= 6 event kinds in one run");
        // Counter tracks: footprint, live-threads, ready at minimum.
        assert!(!trace.counters.footprint.is_empty());
        assert!(!trace.counters.live_threads.is_empty());
        assert!(!trace.counters.ready.is_empty());
        trace.validate().expect("valid df trace");

        // Fifo run: deterministic block/wake — with a two-party barrier,
        // whichever thread arrives first must block until the other shows.
        let cfg = Config::new(2, SchedKind::Fifo).with_trace();
        let (_, report) = run(cfg, || {
            let b = crate::Barrier::new(2);
            let b2 = b.clone();
            let h = crate::spawn(move || {
                crate::work(5000);
                b2.wait();
            });
            b.wait();
            h.join();
        });
        let trace = report.trace.unwrap();
        let blocks: Vec<_> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Block { reason, .. } => Some(reason),
                _ => None,
            })
            .collect();
        assert!(
            blocks.contains(&BlockReason::Barrier),
            "first barrier arrival must block: {blocks:?} / {:?}",
            trace.event_kind_counts()
        );
        let wakes = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Wake { .. }))
            .count();
        assert!(wakes >= 1, "barrier completion must produce a wake event");
        trace.validate().expect("valid fifo trace");
    }

    #[test]
    fn steal_events_carry_victims() {
        let cfg = Config::new(4, SchedKind::Ws).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for _ in 0..32 {
                    s.spawn(|| crate::work(50_000));
                }
            })
        });
        let trace = report.trace.unwrap();
        let steals: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Steal { .. }))
            .collect();
        assert_eq!(steals.len() as u64, report.steals, "one event per steal");
        assert!(!steals.is_empty(), "ws at p=4 must steal");
        for e in &steals {
            let EventKind::Steal { victim } = e.kind else {
                unreachable!()
            };
            let v = victim.expect("ws knows its victim") as usize;
            assert_ne!(v, e.proc, "no self-steals");
        }
    }

    #[test]
    fn lifecycle_percentiles_are_consistent() {
        let cfg = Config::new(2, SchedKind::Fifo).with_trace();
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..24 {
                    s.spawn(move || crate::work(2000 * (i % 5 + 1)));
                }
            })
        });
        let trace = report.trace.as_ref().unwrap();
        let lc = trace.lifecycle();
        assert_eq!(lc.threads, report.total_threads as u64);
        // Every dispatch is a quantum of exactly one thread.
        let dispatches: u64 = report.stats.procs.iter().map(|p| p.dispatches).sum();
        assert_eq!(lc.total_quanta, dispatches);
        assert!(lc.dispatch_latency.count > 0);
        assert!(lc.dispatch_latency.p50 <= lc.dispatch_latency.p90);
        assert!(lc.dispatch_latency.p90 <= lc.dispatch_latency.p99);
        assert!(lc.dispatch_latency.p99 <= lc.dispatch_latency.max);
        let hist_total: u64 = lc.dispatch_latency.hist_log2.iter().sum();
        assert_eq!(hist_total, lc.dispatch_latency.count);
        // FIFO at p=2 queues threads: someone must actually wait.
        assert!(lc.ready_wait.max > VirtTime::ZERO);
    }
}
