//! Run configuration: scheduler choice, processor count, thread attributes.

use ptdf_smp::CostModel;

/// Scheduling policy for unbound threads at a given priority level.
///
/// The paper's §2.1/§4 policies:
/// * [`SchedKind::Fifo`] — the original Solaris `SCHED_OTHER`: a FIFO ready
///   queue; forked children are enqueued and the parent keeps running. This
///   executes the computation graph breadth-first and is the policy whose
///   space/time blow-up the paper documents (Figures 5–6).
/// * [`SchedKind::Lifo`] — the paper's first fix (§4 item 1): a LIFO ready
///   queue, approximating depth-first order.
/// * [`SchedKind::Df`] — the paper's space-efficient scheduler (§4 item 2),
///   a variant of Narlikar & Blelloch's `S1 + O(p·D)` algorithm: a global
///   list of all live threads in serial (depth-first) execution order;
///   fork preempts the parent and runs the child; each scheduling quantum
///   carries a memory quota, with no-op "dummy" threads inserted before
///   allocations larger than the quota.
/// * [`SchedKind::Ws`] — Cilk-style per-processor work stealing (child
///   first, steal from the top), the main comparator in the space-efficiency
///   literature (space bound `p · S1`); included as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum SchedKind {
    /// Original Solaris FIFO queue.
    Fifo,
    /// LIFO stack of ready threads.
    Lifo,
    /// Space-efficient depth-first scheduler (the paper's contribution).
    Df,
    /// The paper's §5.3 future-work variant: depth-first order with a
    /// bounded locality window — a dispatching processor may take, from
    /// among the leftmost [`Config::locality_window`] ready threads, one
    /// that last ran on it. Weakens the space bound by at most the window
    /// size while restoring cache affinity at fine thread granularity.
    DfLocal,
    /// Parallelized depth-first scheduler after Narlikar's `DFDeques` (the
    /// paper's §6 scalability future work, reference \[34\]): per-processor
    /// deques kept in a global depth-first order; thieves steal the top of
    /// the leftmost deque. Same quota machinery as [`SchedKind::Df`], no
    /// global scheduler lock.
    DfDeques,
    /// Cilk-style work stealing (comparator).
    Ws,
}

impl SchedKind {
    /// Human-readable name used in reports and experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Fifo => "fifo",
            SchedKind::Lifo => "lifo",
            SchedKind::Df => "df",
            SchedKind::DfLocal => "df-local",
            SchedKind::DfDeques => "df-deques",
            SchedKind::Ws => "ws",
        }
    }
}

/// Default per-quantum memory quota `K` for the depth-first scheduler, in
/// bytes. The paper leaves `K` as the space/time knob (§4 item 2); the
/// `ablate_quota` bench sweeps it.
pub const DEFAULT_QUOTA: u64 = 64 * 1024;

/// The Solaris default thread stack size (1 MB), which §4 item 3 identifies
/// as wasteful for thread-churning programs.
pub const STACK_1MB: u64 = 1024 * 1024;

/// The reduced default stack size (one 8 KB page) of §4 item 3.
pub const STACK_8KB: u64 = 8 * 1024;

/// Configuration for a virtual-SMP run.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of virtual processors (the paper uses 1–8, §5.2 up to 16).
    pub processors: usize,
    /// Scheduling policy.
    pub scheduler: SchedKind,
    /// Memory quota `K` for [`SchedKind::Df`]; ignored by other policies.
    pub quota: u64,
    /// Machine cost model.
    pub cost: CostModel,
    /// Default *accounted* stack size for threads created with default
    /// attributes (1 MB in stock Solaris; 8 KB in the paper's modified
    /// library). This drives the lazy-commit stack memory model.
    pub default_stack: u64,
    /// Real host stack size for each fiber, in bytes. Purely an
    /// implementation detail of the reproduction; not accounted.
    pub fiber_stack: usize,
    /// Seed for the work-stealing victim sequence (determinism).
    pub seed: u64,
    /// Locality window for [`SchedKind::DfLocal`]: how many of the leftmost
    /// ready threads a processor may inspect for an affinity match.
    pub locality_window: usize,
    /// Record an execution trace (see [`crate::Trace`]).
    pub trace: bool,
    /// When tracing, heap allocs/frees at or above this many bytes produce
    /// individual trace events (smaller ones still move the footprint
    /// counter track). Keeps traces of allocation-heavy runs bounded.
    pub trace_alloc_threshold: u64,
    /// Schedule-perturbation seed. `Some(seed)` turns on deterministic
    /// schedule exploration: sync-operation boundaries gain clock jitter
    /// and may preempt the running thread, multi-thread wakes are
    /// delivered in shuffled order, same-timestamp processor ties break
    /// pseudo-randomly, and the work-stealing victim sequence is re-keyed.
    /// Everything is driven by seeded deterministic generators, so any
    /// `(policy, seed)` pair replays the exact same perturbed schedule —
    /// which is what lets the happens-before checker
    /// ([`crate::check_trace`]) turn a flagged run back into a repro.
    pub perturb_seed: Option<u64>,
    /// Chaos-fault seed. `Some(seed)` arms seeded fault injection on top of
    /// (and independent of) perturbation: lock-holder preemption storms at
    /// sync boundaries, delayed wake delivery, and spurious condvar wakeups
    /// (POSIX-sanctioned; `wait` may return without a notify, which is why
    /// `wait_while` re-checks its predicate). All draws come from a
    /// deterministic generator, so a `(policy, perturb seed, chaos seed)`
    /// triple replays the exact same faulted schedule.
    pub chaos_seed: Option<u64>,
    /// Arms the allocation ledger: per-thread attribution of every
    /// `rt_alloc`/`rt_free` (and TLS slot bytes), with a leak report on the
    /// run's [`crate::Report`]. Off by default — the ledger touches a hash
    /// map per allocation, which unarmed runs should not pay for.
    pub ledger: bool,
    /// Injects allocation failures at a seeded rate: `Some(n)` makes
    /// roughly one in `n` *fallible* allocation requests
    /// ([`crate::try_rt_alloc`], [`crate::try_spawn`]) fail. The infallible
    /// paths ([`crate::rt_alloc`], [`crate::spawn`]) never observe injected
    /// failures — they have no way to degrade gracefully. Implies
    /// [`Config::ledger`]. Driven by a generator seeded from
    /// [`Config::seed`], so runs replay deterministically.
    pub alloc_fail_rate: Option<u64>,
    /// Arms the runtime space-bound enforcer with an absolute byte limit,
    /// typically `S1 + c·p·D` (S1 from [`crate::run_serial`], D from the
    /// DAG crosscheck). Every footprint growth above the limit is counted
    /// in `MemStats::bound_violations`, and the crossing growth records a
    /// trace event (surfaced by [`crate::check_trace`] and `ptdf-trace
    /// audit`). Enforcement never changes the accounting itself.
    pub space_bound: Option<u64>,
    /// Byte cap of the host fiber-stack pool (recycled real stacks). `0`
    /// disables recycling. Cached stacks are touched memory, so the cap
    /// bounds real RSS; see `ptdf_fiber::StackPool`.
    pub stack_pool_cap: usize,
    /// Arms the host-side engine phase profiler: monotonic counters and
    /// host (real-time) nanosecond timers around the engine's internal
    /// phases — deadline-heap push/pop, clock charge points, scheduler-lock
    /// holds, policy pops, dispatch prologues, and trace-event allocation.
    /// Results land in `RunStats::host_phase` on the [`crate::Report`]. Off
    /// by default; when off every hook costs one `Option` discriminant test
    /// (or one boolean), leaving the dispatch hot path unchanged.
    pub host_profile: bool,
}

impl Config {
    /// A config reproducing the paper's modified library: space-efficient
    /// scheduler with small default stacks.
    pub fn new(processors: usize, scheduler: SchedKind) -> Self {
        Config {
            processors,
            scheduler,
            quota: DEFAULT_QUOTA,
            cost: CostModel::ultrasparc_167(),
            default_stack: STACK_8KB,
            fiber_stack: 64 * 1024,
            seed: 0x5EED,
            locality_window: 16,
            trace: false,
            trace_alloc_threshold: 4096,
            perturb_seed: None,
            chaos_seed: None,
            ledger: false,
            alloc_fail_rate: None,
            space_bound: None,
            stack_pool_cap: ptdf_fiber::DEFAULT_POOL_CAP,
            host_profile: false,
        }
    }

    /// The stock Solaris 2.5 library: FIFO queue, 1 MB default stacks.
    pub fn solaris_native(processors: usize) -> Self {
        Config {
            default_stack: STACK_1MB,
            ..Config::new(processors, SchedKind::Fifo)
        }
    }

    /// Sets the default stack size (builder style).
    pub fn with_stack(mut self, bytes: u64) -> Self {
        self.default_stack = bytes;
        self
    }

    /// Sets the DF memory quota (builder style).
    pub fn with_quota(mut self, bytes: u64) -> Self {
        self.quota = bytes;
        self
    }

    /// Sets the cost model (builder style).
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the DfLocal locality window (builder style).
    pub fn with_locality_window(mut self, window: usize) -> Self {
        self.locality_window = window;
        self
    }

    /// Enables execution tracing (builder style).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Sets the alloc/free trace-event threshold (builder style); implies
    /// nothing about tracing itself — combine with [`Config::with_trace`].
    pub fn with_trace_alloc_threshold(mut self, bytes: u64) -> Self {
        self.trace_alloc_threshold = bytes;
        self
    }

    /// Enables seeded schedule perturbation (builder style). See
    /// [`Config::perturb_seed`].
    pub fn with_perturbation(mut self, seed: u64) -> Self {
        self.perturb_seed = Some(seed);
        self
    }

    /// Arms seeded chaos-fault injection (builder style). See
    /// [`Config::chaos_seed`].
    pub fn with_chaos(mut self, seed: u64) -> Self {
        self.chaos_seed = Some(seed);
        self
    }

    /// Arms the allocation ledger (builder style). See [`Config::ledger`].
    pub fn with_ledger(mut self) -> Self {
        self.ledger = true;
        self
    }

    /// Injects roughly one allocation failure per `rate` fallible requests
    /// (builder style); implies the ledger. See [`Config::alloc_fail_rate`].
    pub fn with_alloc_failures(mut self, rate: u64) -> Self {
        assert!(rate > 0, "failure rate must be positive");
        self.alloc_fail_rate = Some(rate);
        self.ledger = true;
        self
    }

    /// Arms the space-bound enforcer with an absolute byte limit (builder
    /// style). See [`Config::space_bound`]. Use
    /// [`Config::with_space_bound_terms`] to pass the paper's terms
    /// directly.
    pub fn with_space_bound(mut self, limit_bytes: u64) -> Self {
        self.space_bound = Some(limit_bytes);
        self
    }

    /// Arms the space-bound enforcer at `S1 + factor · p · depth` bytes,
    /// with `p` taken from [`Config::processors`] (builder style).
    pub fn with_space_bound_terms(self, s1: u64, factor: u64, depth: u64) -> Self {
        let p = self.processors as u64;
        self.with_space_bound(s1 + factor * p * depth)
    }

    /// Sets the host fiber-stack pool's byte cap (builder style); `0`
    /// disables stack recycling. See [`Config::stack_pool_cap`].
    pub fn with_stack_pool_cap(mut self, bytes: usize) -> Self {
        self.stack_pool_cap = bytes;
        self
    }

    /// Arms (or explicitly disarms) the host-side engine phase profiler
    /// (builder style). See [`Config::host_profile`].
    pub fn with_host_profile(mut self, on: bool) -> Self {
        self.host_profile = on;
        self
    }
}

/// Per-thread creation attributes (the subset of `pthread_attr_t` the paper
/// exercises).
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct Attr {
    /// Accounted (reserved) stack size; `None` → the run's default.
    pub stack_size: Option<u64>,
    /// Priority level; higher runs first. All policies schedule strictly by
    /// priority, space-efficiently (or FIFO/LIFO) *within* a level, matching
    /// the paper's prioritized formulation (§2.1 end).
    pub priority: i32,
    /// Detached threads are reclaimed on exit without a join.
    pub detached: bool,
}


impl Attr {
    /// Attribute set with an explicit stack size.
    pub fn with_stack(bytes: u64) -> Self {
        Attr {
            stack_size: Some(bytes),
            ..Attr::default()
        }
    }

    /// Sets the priority (builder style).
    pub fn priority(mut self, prio: i32) -> Self {
        self.priority = prio;
        self
    }

    /// Marks the thread detached (builder style).
    pub fn detached(mut self) -> Self {
        self.detached = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = Config::new(8, SchedKind::Df).with_stack(STACK_1MB).with_quota(1024);
        assert_eq!(c.default_stack, STACK_1MB);
        assert_eq!(c.quota, 1024);
        assert_eq!(c.scheduler.name(), "df");
        let n = Config::solaris_native(4);
        assert_eq!(n.scheduler, SchedKind::Fifo);
        assert_eq!(n.default_stack, STACK_1MB);
        let a = Attr::with_stack(4096).priority(2).detached();
        assert_eq!(a.stack_size, Some(4096));
        assert_eq!(a.priority, 2);
        assert!(a.detached);
    }
}
