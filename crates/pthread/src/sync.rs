//! Blocking synchronization primitives: mutexes, condition variables,
//! semaphores, and barriers.
//!
//! These are the "rich Pthreads functionality" the paper emphasizes its
//! scheduler supports (unlike Cilk-style systems restricted to fork/join):
//! a thread that blocks keeps its placeholder in the DF scheduler's ordered
//! queue and resumes at its depth-first position when woken.
//!
//! Handle semantics: each primitive is a cheap clonable handle (like a
//! `pthread_mutex_t*`); clones refer to the same underlying object. Outside
//! a runtime the primitives degrade to plain sequential semantics (locking
//! an unlocked mutex succeeds; blocking would self-deadlock and panics).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::api::par_ctx;
use crate::runtime::suspend_current;
use crate::thread::{ThreadId, YieldReason};

/// Sentinel owner for lock acquisition outside a runtime.
const NO_THREAD: ThreadId = ThreadId(u32::MAX - 1);

fn current_or_sentinel() -> ThreadId {
    crate::api::current_thread().unwrap_or(NO_THREAD)
}

fn charge_sync_op() {
    if let Some(rc) = par_ctx() {
        {
            let mut inner = rc.borrow_mut();
            let (_, p) = inner.cur.expect("sync op outside a thread");
            let c = inner.machine.cost().sync_op;
            inner.machine.sync_op(p, c);
        }
        crate::runtime::maybe_timeslice(&rc);
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

struct MutexState {
    owner: Cell<Option<ThreadId>>,
    waiters: RefCell<VecDeque<ThreadId>>,
}

struct MutexInner<T: ?Sized> {
    state: MutexState,
    value: UnsafeCell<T>,
}

/// A blocking mutual-exclusion lock protecting a `T`.
///
/// Lock handoff is direct: `unlock` transfers ownership to the first waiter
/// (FIFO), which avoids barging and makes the timing model simple.
pub struct Mutex<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex {
            inner: self.inner.clone(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("locked", &self.inner.state.owner.get().is_some())
            .finish()
    }
}

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: Rc::new(MutexInner {
                state: MutexState {
                    owner: Cell::new(None),
                    waiters: RefCell::new(VecDeque::new()),
                },
                value: UnsafeCell::new(value),
            }),
        }
    }

    /// Acquires the lock, blocking the calling thread if necessary.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        charge_sync_op();
        let me = current_or_sentinel();
        match par_ctx() {
            Some(rc) => {
                let must_block = {
                    let st = &self.inner.state;
                    if st.owner.get().is_none() {
                        st.owner.set(Some(me));
                        false
                    } else {
                        assert_ne!(
                            st.owner.get(),
                            Some(me),
                            "recursive lock would self-deadlock"
                        );
                        st.waiters.borrow_mut().push_back(me);
                        let mut inner = rc.borrow_mut();
                        inner.block_current(crate::trace::BlockReason::Mutex);
                        true
                    }
                };
                if must_block {
                    suspend_current(&rc, YieldReason::Blocked);
                    // Direct handoff: the unlocker made us the owner.
                    debug_assert_eq!(self.inner.state.owner.get(), Some(me));
                }
            }
            None => {
                assert!(
                    self.inner.state.owner.get().is_none(),
                    "mutex contended outside a runtime: would deadlock"
                );
                self.inner.state.owner.set(Some(me));
            }
        }
        MutexGuard { mutex: self }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        charge_sync_op();
        let st = &self.inner.state;
        if st.owner.get().is_none() {
            st.owner.set(Some(current_or_sentinel()));
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Whether the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.state.owner.get().is_some()
    }

    /// Consumes the mutex, returning the protected value (fails if other
    /// handles still share it).
    pub fn into_inner(self) -> Result<T, Mutex<T>> {
        assert!(!self.is_locked(), "into_inner on a locked mutex");
        match Rc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.value.into_inner()),
            Err(inner) => Err(Mutex { inner }),
        }
    }

    fn unlock(&self) {
        charge_sync_op();
        let st = &self.inner.state;
        let next = st.waiters.borrow_mut().pop_front();
        match next {
            Some(w) => {
                st.owner.set(Some(w));
                if let Some(rc) = par_ctx() {
                    if let Ok(mut inner) = rc.try_borrow_mut() {
                        if let Some((_, p)) = inner.cur {
                            inner.make_ready(w, p);
                        }
                    }
                }
            }
            None => st.owner.set(None),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive logical ownership.
        unsafe { &*self.mutex.inner.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.mutex.inner.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable; pairs with [`Mutex`] as `pthread_cond_t` pairs with
/// `pthread_mutex_t`.
#[derive(Clone, Default)]
pub struct Condvar {
    waiters: Rc<RefCell<VecDeque<ThreadId>>>,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically releases `guard` and blocks until notified; re-acquires
    /// the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let rc = par_ctx().expect("Condvar::wait requires a runtime");
        let mutex = guard.mutex;
        {
            let me = crate::api::current_thread().expect("wait outside a thread");
            self.waiters.borrow_mut().push_back(me);
            let mut inner = rc.borrow_mut();
            inner.block_current(crate::trace::BlockReason::Condvar);
        }
        drop(guard); // releases the mutex (may hand it to a lock waiter)
        suspend_current(&rc, YieldReason::Blocked);
        mutex.lock()
    }

    /// Blocks until `cond(&mut value)` is false, re-checking after every
    /// wakeup (`pthread_cond_wait` in its canonical while-loop idiom).
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut cond: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while cond(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        charge_sync_op();
        let woken = self.waiters.borrow_mut().pop_front();
        if let Some(w) = woken {
            wake(w);
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        charge_sync_op();
        let woken: Vec<_> = self.waiters.borrow_mut().drain(..).collect();
        for w in woken {
            wake(w);
        }
    }

    /// Number of threads currently waiting.
    pub fn waiter_count(&self) -> usize {
        self.waiters.borrow().len()
    }
}

fn wake(t: ThreadId) {
    let rc = par_ctx().expect("notify requires a runtime");
    let mut inner = rc.borrow_mut();
    let (_, p) = inner.cur.expect("notify outside a thread");
    inner.make_ready(t, p);
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    permits: Cell<i64>,
    waiters: RefCell<VecDeque<ThreadId>>,
}

/// A counting semaphore (POSIX `sem_t`), used by the paper's Figure 3
/// two-thread synchronization microbenchmark.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<SemState>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: i64) -> Self {
        Semaphore {
            state: Rc::new(SemState {
                permits: Cell::new(permits),
                waiters: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// P / `sem_wait`: takes a permit, blocking while none are available.
    pub fn acquire(&self) {
        charge_sync_op();
        match par_ctx() {
            Some(rc) => {
                let must_block = {
                    if self.state.permits.get() > 0 {
                        self.state.permits.set(self.state.permits.get() - 1);
                        false
                    } else {
                        let me = crate::api::current_thread().expect("acquire outside a thread");
                        self.state.waiters.borrow_mut().push_back(me);
                        let mut inner = rc.borrow_mut();
                        inner.block_current(crate::trace::BlockReason::Semaphore);
                        true
                    }
                };
                if must_block {
                    // Direct handoff: the releaser consumed the permit for us.
                    suspend_current(&rc, YieldReason::Blocked);
                }
            }
            None => {
                assert!(
                    self.state.permits.get() > 0,
                    "semaphore acquire would deadlock outside a runtime"
                );
                self.state.permits.set(self.state.permits.get() - 1);
            }
        }
    }

    /// Non-blocking P: takes a permit if one is available.
    pub fn try_acquire(&self) -> bool {
        charge_sync_op();
        if self.state.permits.get() > 0 {
            self.state.permits.set(self.state.permits.get() - 1);
            true
        } else {
            false
        }
    }

    /// V / `sem_post`: returns a permit, waking one waiter if present.
    pub fn release(&self) {
        charge_sync_op();
        let woken = self.state.waiters.borrow_mut().pop_front();
        match woken {
            Some(w) => wake(w),
            None => self.state.permits.set(self.state.permits.get() + 1),
        }
    }

    /// Current permit count.
    pub fn permits(&self) -> i64 {
        self.state.permits.get()
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    n: usize,
    count: Cell<usize>,
    waiters: RefCell<Vec<ThreadId>>,
}

/// A reusable barrier for `n` threads (the coarse-grained SPMD benchmarks
/// synchronize phases with one of these, as in SPLASH-2).
#[derive(Clone)]
pub struct Barrier {
    state: Rc<BarrierState>,
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Barrier {
            state: Rc::new(BarrierState {
                n,
                count: Cell::new(0),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Blocks until all `n` participants arrive. Returns `true` on the
    /// leader (last arriver).
    pub fn wait(&self) -> bool {
        charge_sync_op();
        if self.state.n == 1 {
            return true;
        }
        let rc = par_ctx().expect("Barrier::wait with n > 1 requires a runtime");
        let arrived = self.state.count.get() + 1;
        if arrived == self.state.n {
            self.state.count.set(0);
            let woken = std::mem::take(&mut *self.state.waiters.borrow_mut());
            let mut inner = rc.borrow_mut();
            let (_, p) = inner.cur.expect("barrier outside a thread");
            for w in woken {
                inner.make_ready(w, p);
            }
            true
        } else {
            self.state.count.set(arrived);
            {
                let me = crate::api::current_thread().expect("barrier outside a thread");
                self.state.waiters.borrow_mut().push(me);
                let mut inner = rc.borrow_mut();
                inner.block_current(crate::trace::BlockReason::Barrier);
            }
            suspend_current(&rc, YieldReason::Blocked);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, spawn, Config, SchedKind};

    #[test]
    fn wait_while_loops_until_condition_clears() {
        let (seen, _) = run(Config::new(2, SchedKind::Df), || {
            let q = Mutex::new(0u32);
            let cv = Condvar::new();
            let (q2, cv2) = (q.clone(), cv.clone());
            let producer = spawn(move || {
                for _ in 0..5 {
                    crate::work(10_000);
                    *q2.lock() += 1;
                    cv2.notify_one(); // wakes even when below threshold
                }
            });
            let g = cv.wait_while(q.lock(), |v| *v < 5);
            let seen = *g;
            drop(g);
            producer.join();
            seen
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn try_acquire_counts_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn mutex_into_inner_roundtrip() {
        let m = Mutex::new(vec![1, 2, 3]);
        let m2 = m.clone();
        // Shared: must fail and give the handle back.
        let m = m.into_inner().unwrap_err();
        drop(m2);
        assert_eq!(m.into_inner().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_while_under_contention() {
        let (total, _) = run(Config::new(4, SchedKind::Ws), || {
            let slots = Mutex::new(3i32);
            let cv = Condvar::new();
            let done = Mutex::new(0u32);
            scope(|s| {
                for _ in 0..12 {
                    let (slots, cv, done) = (slots.clone(), cv.clone(), done.clone());
                    s.spawn(move || {
                        // Acquire one of 3 slots, work, release.
                        let mut g = cv.wait_while(slots.lock(), |v| *v == 0);
                        *g -= 1;
                        drop(g);
                        crate::work(5_000);
                        *slots.lock() += 1;
                        cv.notify_one();
                        *done.lock() += 1;
                    });
                }
            });
            let v = *done.lock();
            v
        });
        assert_eq!(total, 12);
    }
}
