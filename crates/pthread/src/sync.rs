//! Blocking synchronization primitives: mutexes, condition variables,
//! semaphores, and barriers.
//!
//! These are the "rich Pthreads functionality" the paper emphasizes its
//! scheduler supports (unlike Cilk-style systems restricted to fork/join):
//! a thread that blocks keeps its placeholder in the DF scheduler's ordered
//! queue and resumes at its depth-first position when woken.
//!
//! Handle semantics: each primitive is a cheap clonable handle (like a
//! `pthread_mutex_t*`); clones refer to the same underlying object. Outside
//! a runtime the primitives degrade to plain sequential semantics (locking
//! an unlocked mutex succeeds; blocking would self-deadlock and panics).

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::api::par_ctx;
use crate::runtime::suspend_current;
use crate::thread::{ThreadId, YieldReason};

/// Sentinel owner for lock acquisition outside a runtime.
const NO_THREAD: ThreadId = ThreadId(u32::MAX - 1);

fn current_or_sentinel() -> ThreadId {
    crate::api::current_thread().unwrap_or(NO_THREAD)
}

fn charge_sync_op() {
    if let Some(rc) = par_ctx() {
        {
            let mut inner = rc.borrow_mut();
            // Lenient on context: stall-teardown destructors (guard drops,
            // TLS values) release primitives with no current thread.
            let Some((_, p)) = inner.cur else {
                return;
            };
            let c = inner.machine.cost().sync_op;
            inner.machine.sync_op(p, c);
        }
        crate::runtime::maybe_timeslice(&rc);
        // Schedule exploration: sync-operation boundaries are exactly the
        // points where involuntary preemption exposes protocol windows.
        crate::runtime::maybe_perturb_yield(&rc);
        // Chaos fault injection preempts at the same boundaries — sync ops
        // are exactly where threads hold locks, so this is the lock-holder
        // preemption storm.
        crate::runtime::maybe_chaos_yield(&rc);
    }
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

struct MutexState {
    /// Per-run trace id, assigned at first engine interaction.
    id: Cell<Option<u32>>,
    owner: Cell<Option<ThreadId>>,
    waiters: RefCell<VecDeque<ThreadId>>,
}

struct MutexInner<T: ?Sized> {
    state: MutexState,
    value: UnsafeCell<T>,
}

/// A blocking mutual-exclusion lock protecting a `T`.
///
/// Lock handoff is direct: `unlock` transfers ownership to the first waiter
/// (FIFO), which avoids barging and makes the timing model simple.
pub struct Mutex<T> {
    inner: Rc<MutexInner<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex {
            inner: self.inner.clone(),
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex")
            .field("locked", &self.inner.state.owner.get().is_some())
            .finish()
    }
}

/// RAII guard; unlocks on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: Rc::new(MutexInner {
                state: MutexState {
                    id: Cell::new(None),
                    owner: Cell::new(None),
                    waiters: RefCell::new(VecDeque::new()),
                },
                value: UnsafeCell::new(value),
            }),
        }
    }

    /// Acquires the lock, blocking the calling thread if necessary.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        charge_sync_op();
        let me = current_or_sentinel();
        match par_ctx() {
            Some(rc) => {
                let must_block = {
                    let st = &self.inner.state;
                    if st.owner.get().is_none() {
                        st.owner.set(Some(me));
                        false
                    } else {
                        let owner = st.owner.get().expect("contended lock with no owner");
                        let mut inner = rc.borrow_mut();
                        let obj = inner.sync_id_for(&st.id);
                        // Publish the live holder and probe the prospective
                        // waits-for edge *before* enqueueing: a closed cycle
                        // (including the recursive self-lock) unwinds as a
                        // structured DeadlockError instead of blocking a
                        // doomed thread. The unwind releases every guard the
                        // thread holds, so its cycle peers can proceed.
                        inner.note_holders(obj, vec![owner]);
                        if let Some(info) = inner.check_for_cycle(me, Some(obj), None) {
                            inner.record_deadlock(&info);
                            if st.waiters.borrow().is_empty() {
                                inner.note_holders(obj, Vec::new());
                            }
                            drop(inner);
                            std::panic::panic_any(crate::DeadlockError { info });
                        }
                        st.waiters.borrow_mut().push_back(me);
                        inner.block_current(crate::trace::BlockReason::Mutex, Some(obj), None);
                        true
                    }
                };
                if must_block {
                    suspend_current(&rc, YieldReason::Blocked);
                    // Direct handoff: the unlocker made us the owner.
                    debug_assert_eq!(self.inner.state.owner.get(), Some(me));
                }
            }
            None => {
                assert!(
                    self.inner.state.owner.get().is_none(),
                    "mutex contended outside a runtime: would deadlock"
                );
                self.inner.state.owner.set(Some(me));
            }
        }
        MutexGuard { mutex: self }
    }

    /// Like [`Mutex::lock`], but gives up after `timeout` of virtual time,
    /// returning [`crate::TimedOut`] instead of a guard.
    ///
    /// Timed waits are exempt from the deadlock sentinel — the deadline
    /// itself guarantees progress — which makes this the building block for
    /// deadlock *recovery* (pair it with [`crate::backoff::Backoff`]).
    pub fn lock_timeout(
        &self,
        timeout: ptdf_smp::VirtTime,
    ) -> Result<MutexGuard<'_, T>, crate::TimedOut> {
        charge_sync_op();
        let me = current_or_sentinel();
        let st = &self.inner.state;
        let Some(rc) = par_ctx() else {
            // Outside a runtime no other thread can release the lock: an
            // uncontended acquire succeeds, a contended one times out
            // immediately (there is no virtual clock to wait on).
            if st.owner.get().is_none() {
                st.owner.set(Some(me));
                return Ok(MutexGuard { mutex: self });
            }
            return Err(crate::TimedOut);
        };
        if st.owner.get().is_none() {
            st.owner.set(Some(me));
            return Ok(MutexGuard { mutex: self });
        }
        {
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&st.id);
            st.waiters.borrow_mut().push_back(me);
            inner.block_current(crate::trace::BlockReason::Mutex, Some(obj), None);
            inner.arm_timed_wait(timeout);
        }
        suspend_current(&rc, YieldReason::Blocked);
        {
            let mut inner = rc.borrow_mut();
            if inner.consume_timeout() {
                // Withdraw from the queue (the unlocker may already have
                // dropped us); retire the holders entry with the last
                // waiter so the sentinel never walks a stale edge.
                st.waiters.borrow_mut().retain(|&w| w != me);
                if st.waiters.borrow().is_empty() {
                    let obj = inner.sync_id_for(&st.id);
                    inner.note_holders(obj, Vec::new());
                }
                return Err(crate::TimedOut);
            }
        }
        // Direct handoff: the unlocker made us the owner.
        debug_assert_eq!(st.owner.get(), Some(me));
        Ok(MutexGuard { mutex: self })
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        charge_sync_op();
        let st = &self.inner.state;
        if st.owner.get().is_none() {
            st.owner.set(Some(current_or_sentinel()));
            Some(MutexGuard { mutex: self })
        } else {
            None
        }
    }

    /// Whether the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.inner.state.owner.get().is_some()
    }

    /// Consumes the mutex, returning the protected value (fails if other
    /// handles still share it).
    pub fn into_inner(self) -> Result<T, Mutex<T>> {
        assert!(!self.is_locked(), "into_inner on a locked mutex");
        match Rc::try_unwrap(self.inner) {
            Ok(inner) => Ok(inner.value.into_inner()),
            Err(inner) => Err(Mutex { inner }),
        }
    }

    fn unlock(&self) {
        charge_sync_op();
        let st = &self.inner.state;
        let nwaiters = st.waiters.borrow().len() as u64;
        let ctx = par_ctx();
        let mut inner = match ctx.as_ref() {
            Some(rc) => rc.try_borrow_mut().ok(),
            None => None,
        };
        // Hand off to the next *still-blocked* waiter. A timeout-woken
        // waiter in the queue already had its wake; it is dropped here (it
        // also removes itself on resume — whoever gets there first).
        let next = loop {
            let cand = st.waiters.borrow_mut().pop_front();
            match (cand, inner.as_deref_mut()) {
                (Some(w), Some(inner)) if !inner.thread_is_blocked(w) => continue,
                (cand, _) => break cand,
            }
        };
        match next {
            Some(w) => {
                // Ownership transfers *before* the wake is published, so
                // the resumed waiter can assert the handoff.
                st.owner.set(Some(w));
                if let Some(inner) = inner.as_deref_mut() {
                    if let Some((_, p)) = inner.cur {
                        let obj = inner.sync_id_for(&st.id);
                        inner.note_sync(crate::trace::BlockReason::Mutex, obj, nwaiters, 1);
                        // Sentinel registry: `w` is the holder now; retire
                        // the entry when the queue drained.
                        if st.waiters.borrow().is_empty() {
                            inner.note_holders(obj, Vec::new());
                        } else {
                            inner.note_holders(obj, vec![w]);
                        }
                        inner.make_ready(w, p);
                    }
                }
            }
            None => st.owner.set(None),
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive logical ownership.
        unsafe { &*self.mutex.inner.value.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.mutex.inner.value.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.unlock();
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

#[derive(Default)]
struct CvState {
    /// Per-run trace id, assigned at first engine interaction.
    id: Cell<Option<u32>>,
    waiters: RefCell<VecDeque<ThreadId>>,
}

/// A condition variable; pairs with [`Mutex`] as `pthread_cond_t` pairs with
/// `pthread_mutex_t`.
#[derive(Clone, Default)]
pub struct Condvar {
    state: Rc<CvState>,
}

impl Condvar {
    /// New condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically releases `guard` and blocks until notified; re-acquires
    /// the mutex before returning.
    ///
    /// There is no naked-notify window here: the waiter is appended to the
    /// wait list *before* the mutex is released, and the engine runs no
    /// other thread between the two steps (the single preemption hook on
    /// the unlock path, `runtime::maybe_timeslice` — and its
    /// perturbation twin — refuses to yield a thread whose state is already
    /// `Blocked`). A notifier therefore either sees the waiter on the list
    /// or runs strictly before the wait began.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let rc = par_ctx().expect("Condvar::wait requires a runtime");
        let mutex = guard.mutex;
        let me = crate::api::current_thread().expect("wait outside a thread");
        {
            self.state.waiters.borrow_mut().push_back(me);
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&self.state.id);
            inner.block_current(crate::trace::BlockReason::Condvar, Some(obj), None);
            // Chaos fault: occasionally arm a short artificial deadline so
            // this wait returns *spuriously* — POSIX sanctions spurious
            // wakeups, and callers in the canonical `wait_while` idiom must
            // tolerate them. Confined to condvars: every other primitive's
            // resume protocol asserts a real handoff happened.
            let spurious = inner.chaos.as_mut().is_some_and(|c| c.chance(1, 8));
            if spurious {
                let jitter = inner.chaos.as_mut().expect("checked").below(1_500);
                inner.arm_timed_wait(ptdf_smp::VirtTime::from_ns(500 + jitter));
            }
        }
        drop(guard); // releases the mutex (may hand it to a lock waiter)
        suspend_current(&rc, YieldReason::Blocked);
        {
            let mut inner = rc.borrow_mut();
            if inner.consume_timeout() {
                // Spurious wake: withdraw from the wait list so a later
                // notify is not charged for a wake it never delivered.
                self.state.waiters.borrow_mut().retain(|&w| w != me);
            }
        }
        mutex.lock()
    }

    /// Blocks until `cond(&mut value)` is false, re-checking after every
    /// wakeup (`pthread_cond_wait` in its canonical while-loop idiom).
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut cond: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while cond(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Like [`Condvar::wait`], but gives up after `timeout` of virtual
    /// time. The mutex is re-acquired either way; `Err(TimedOut)` tells the
    /// caller the deadline passed without a delivered notify.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: ptdf_smp::VirtTime,
    ) -> (MutexGuard<'a, T>, Result<(), crate::TimedOut>) {
        let rc = par_ctx().expect("Condvar::wait_timeout requires a runtime");
        let mutex = guard.mutex;
        let me = crate::api::current_thread().expect("wait outside a thread");
        {
            self.state.waiters.borrow_mut().push_back(me);
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&self.state.id);
            inner.block_current(crate::trace::BlockReason::Condvar, Some(obj), None);
            inner.arm_timed_wait(timeout);
        }
        drop(guard);
        suspend_current(&rc, YieldReason::Blocked);
        let timed_out = {
            let mut inner = rc.borrow_mut();
            let timed_out = inner.consume_timeout();
            if timed_out {
                // Withdraw from the wait list so a later notify is not
                // charged for a wake it never delivered.
                self.state.waiters.borrow_mut().retain(|&w| w != me);
            }
            timed_out
        };
        let guard = mutex.lock();
        (guard, if timed_out { Err(crate::TimedOut) } else { Ok(()) })
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        charge_sync_op();
        let nwaiters = self.state.waiters.borrow().len() as u64;
        match par_ctx() {
            Some(rc) => {
                let mut inner = rc.borrow_mut();
                // Skip waiters that already woke spuriously (no longer
                // Blocked): delivering this notify to one would lose it.
                let woken = loop {
                    match self.state.waiters.borrow_mut().pop_front() {
                        Some(w) if !inner.thread_is_blocked(w) => continue,
                        other => break other,
                    }
                };
                let obj = inner.sync_id_for(&self.state.id);
                inner.note_sync(
                    crate::trace::BlockReason::Condvar,
                    obj,
                    nwaiters,
                    woken.is_some() as u64,
                );
                if let Some(w) = woken {
                    if let Some((_, p)) = inner.cur {
                        inner.make_ready(w, p);
                    }
                }
            }
            None => {
                let woken = self.state.waiters.borrow_mut().pop_front();
                assert!(woken.is_none(), "notify requires a runtime");
            }
        }
    }

    /// Wakes all waiters (delivery order is shuffled under schedule
    /// perturbation — simultaneous wakes have no defined order).
    pub fn notify_all(&self) {
        charge_sync_op();
        let mut woken: Vec<_> = self.state.waiters.borrow_mut().drain(..).collect();
        match par_ctx() {
            Some(rc) => {
                let mut inner = rc.borrow_mut();
                // Drop waiters that already woke spuriously; their wake
                // happened and counting them would overstate delivery.
                woken.retain(|&w| inner.thread_is_blocked(w));
                let obj = inner.sync_id_for(&self.state.id);
                inner.shuffle_wake_order(&mut woken);
                let n = woken.len() as u64;
                inner.note_sync(crate::trace::BlockReason::Condvar, obj, n, n);
                if let Some((_, p)) = inner.cur {
                    for &w in &woken {
                        inner.make_ready(w, p);
                    }
                }
            }
            None => assert!(woken.is_empty(), "notify requires a runtime"),
        }
    }

    /// Number of threads currently waiting.
    pub fn waiter_count(&self) -> usize {
        self.state.waiters.borrow().len()
    }
}

/// Test-only raw wake (the production paths all wake under the borrow they
/// already hold); kept lenient like the other bookkeeping paths.
#[cfg(test)]
fn wake(t: ThreadId) {
    if let Some(rc) = par_ctx() {
        if let Ok(mut inner) = rc.try_borrow_mut() {
            if let Some((_, p)) = inner.cur {
                inner.make_ready(t, p);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

struct SemState {
    /// Per-run trace id, assigned at first engine interaction.
    id: Cell<Option<u32>>,
    permits: Cell<i64>,
    waiters: RefCell<VecDeque<ThreadId>>,
}

/// A counting semaphore (POSIX `sem_t`), used by the paper's Figure 3
/// two-thread synchronization microbenchmark.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<SemState>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: i64) -> Self {
        Semaphore {
            state: Rc::new(SemState {
                id: Cell::new(None),
                permits: Cell::new(permits),
                waiters: RefCell::new(VecDeque::new()),
            }),
        }
    }

    /// P / `sem_wait`: takes a permit, blocking while none are available.
    pub fn acquire(&self) {
        charge_sync_op();
        match par_ctx() {
            Some(rc) => {
                let must_block = {
                    if self.state.permits.get() > 0 {
                        self.state.permits.set(self.state.permits.get() - 1);
                        false
                    } else {
                        let me = crate::api::current_thread().expect("acquire outside a thread");
                        self.state.waiters.borrow_mut().push_back(me);
                        let mut inner = rc.borrow_mut();
                        let obj = inner.sync_id_for(&self.state.id);
                        inner.block_current(crate::trace::BlockReason::Semaphore, Some(obj), None);
                        true
                    }
                };
                if must_block {
                    // Direct handoff: the releaser consumed the permit for us.
                    suspend_current(&rc, YieldReason::Blocked);
                }
            }
            None => {
                assert!(
                    self.state.permits.get() > 0,
                    "semaphore acquire would deadlock outside a runtime"
                );
                self.state.permits.set(self.state.permits.get() - 1);
            }
        }
    }

    /// Timed P: takes a permit, giving up with [`crate::TimedOut`] if none
    /// arrived within `timeout` of virtual time.
    pub fn acquire_timeout(&self, timeout: ptdf_smp::VirtTime) -> Result<(), crate::TimedOut> {
        charge_sync_op();
        let st = &*self.state;
        let Some(rc) = par_ctx() else {
            // Outside a runtime nobody can release: succeed or time out now.
            if st.permits.get() > 0 {
                st.permits.set(st.permits.get() - 1);
                return Ok(());
            }
            return Err(crate::TimedOut);
        };
        if st.permits.get() > 0 {
            st.permits.set(st.permits.get() - 1);
            return Ok(());
        }
        let me = crate::api::current_thread().expect("acquire outside a thread");
        {
            st.waiters.borrow_mut().push_back(me);
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&st.id);
            inner.block_current(crate::trace::BlockReason::Semaphore, Some(obj), None);
            inner.arm_timed_wait(timeout);
        }
        suspend_current(&rc, YieldReason::Blocked);
        let mut inner = rc.borrow_mut();
        if inner.consume_timeout() {
            st.waiters.borrow_mut().retain(|&w| w != me);
            return Err(crate::TimedOut);
        }
        // Direct handoff: the releaser consumed the permit for us.
        Ok(())
    }

    /// Non-blocking P: takes a permit if one is available.
    pub fn try_acquire(&self) -> bool {
        charge_sync_op();
        if self.state.permits.get() > 0 {
            self.state.permits.set(self.state.permits.get() - 1);
            true
        } else {
            false
        }
    }

    /// V / `sem_post`: returns a permit, waking the longest-blocked waiter
    /// (FIFO) if one may now proceed.
    ///
    /// While the permit count is negative — a "debt" from constructing the
    /// semaphore with a negative initial value — releases pay the debt
    /// down toward zero *before* any waiter is woken. (The previous
    /// behaviour handed the permit to a waiter whenever one was queued,
    /// which let an acquirer through while the semaphore still owed
    /// releases: `new(-2)` acted like `new(0)` the moment a waiter
    /// blocked.)
    pub fn release(&self) {
        charge_sync_op();
        let st = &*self.state;
        if st.permits.get() < 0 {
            st.permits.set(st.permits.get() + 1);
            return;
        }
        let nwaiters = st.waiters.borrow().len() as u64;
        let ctx = par_ctx();
        let mut inner = match ctx.as_ref() {
            Some(rc) => rc.try_borrow_mut().ok(),
            None => None,
        };
        // Skip timeout-woken waiters (no longer Blocked): the permit must
        // not be consumed on behalf of a thread that already gave up.
        let woken = loop {
            let cand = st.waiters.borrow_mut().pop_front();
            match (cand, inner.as_deref_mut()) {
                (Some(w), Some(inner)) if !inner.thread_is_blocked(w) => continue,
                (cand, _) => break cand,
            }
        };
        match woken {
            Some(w) => {
                // Direct handoff: the permit is consumed on the waiter's
                // behalf (never parked in `permits`, so a concurrent
                // `try_acquire` cannot steal it from under the wake).
                if let Some(inner) = inner.as_deref_mut() {
                    let obj = inner.sync_id_for(&st.id);
                    inner.note_sync(crate::trace::BlockReason::Semaphore, obj, nwaiters, 1);
                    if let Some((_, p)) = inner.cur {
                        inner.make_ready(w, p);
                    }
                }
            }
            None => st.permits.set(st.permits.get() + 1),
        }
    }

    /// Current permit count.
    pub fn permits(&self) -> i64 {
        self.state.permits.get()
    }
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

struct BarrierState {
    /// Per-run trace id, assigned at first engine interaction.
    id: Cell<Option<u32>>,
    n: usize,
    count: Cell<usize>,
    /// Completed-round counter. Bumped by the leader *before* it wakes
    /// anyone, so back-to-back reuse (a woken thread re-entering `wait`
    /// while earlier waiters are still being delivered) always joins a
    /// fresh round, and a resumed waiter can assert its own round closed.
    generation: Cell<u64>,
    waiters: RefCell<Vec<ThreadId>>,
}

/// A reusable barrier for `n` threads (the coarse-grained SPMD benchmarks
/// synchronize phases with one of these, as in SPLASH-2).
#[derive(Clone)]
pub struct Barrier {
    state: Rc<BarrierState>,
}

impl Barrier {
    /// Creates a barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        Barrier {
            state: Rc::new(BarrierState {
                id: Cell::new(None),
                n,
                count: Cell::new(0),
                generation: Cell::new(0),
                waiters: RefCell::new(Vec::new()),
            }),
        }
    }

    /// Blocks until all `n` participants arrive. Returns `true` on the
    /// leader (last arriver).
    pub fn wait(&self) -> bool {
        charge_sync_op();
        if self.state.n == 1 {
            return true;
        }
        let rc = par_ctx().expect("Barrier::wait with n > 1 requires a runtime");
        let st = &*self.state;
        let arrived = st.count.get() + 1;
        if arrived == st.n {
            // Leader: close this generation before waking anyone, so the
            // barrier is immediately reusable — a woken thread re-entering
            // `wait` starts round g+1 against fully reset state even while
            // round g's wakes are still being delivered.
            st.count.set(0);
            st.generation.set(st.generation.get().wrapping_add(1));
            let mut woken = std::mem::take(&mut *st.waiters.borrow_mut());
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&st.id);
            inner.shuffle_wake_order(&mut woken);
            let n = woken.len() as u64;
            inner.note_sync(crate::trace::BlockReason::Barrier, obj, n, n);
            if let Some((_, p)) = inner.cur {
                for w in woken {
                    inner.make_ready(w, p);
                }
            }
            true
        } else {
            st.count.set(arrived);
            let gen = st.generation.get();
            {
                let me = crate::api::current_thread().expect("barrier outside a thread");
                st.waiters.borrow_mut().push(me);
                let mut inner = rc.borrow_mut();
                let obj = inner.sync_id_for(&st.id);
                inner.block_current(crate::trace::BlockReason::Barrier, Some(obj), None);
            }
            suspend_current(&rc, YieldReason::Blocked);
            // The leader drains the waiter list atomically while bumping
            // the generation, so a resumed waiter must observe its own
            // round closed — a same-generation resume would be a stale
            // wake from a previous round's delivery leaking across reuse.
            assert_ne!(
                st.generation.get(),
                gen,
                "barrier waiter resumed with its own round still open"
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{check_trace, Violation};
    use crate::{run, scope, spawn, Config, SchedKind};

    #[test]
    fn wait_while_loops_until_condition_clears() {
        let (seen, _) = run(Config::new(2, SchedKind::Df), || {
            let q = Mutex::new(0u32);
            let cv = Condvar::new();
            let (q2, cv2) = (q.clone(), cv.clone());
            let producer = spawn(move || {
                for _ in 0..5 {
                    crate::work(10_000);
                    *q2.lock() += 1;
                    cv2.notify_one(); // wakes even when below threshold
                }
            });
            let g = cv.wait_while(q.lock(), |v| *v < 5);
            let seen = *g;
            drop(g);
            producer.join();
            seen
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn try_acquire_counts_permits() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn mutex_into_inner_roundtrip() {
        let m = Mutex::new(vec![1, 2, 3]);
        let m2 = m.clone();
        // Shared: must fail and give the handle back.
        let m = m.into_inner().unwrap_err();
        drop(m2);
        assert_eq!(m.into_inner().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn semaphore_negative_permits_require_extra_releases() {
        // Regression: release() used to hand the permit to any queued
        // waiter even while the count was negative, making `new(-2)`
        // behave like `new(0)` — the waiter must only run after the debt
        // is paid *and* one real permit arrives (3 releases for -2).
        let (order, _) = run(Config::new(2, SchedKind::Fifo), || {
            let s = Semaphore::new(-2);
            let log = Mutex::new(Vec::<&'static str>::new());
            let (s2, log2) = (s.clone(), log.clone());
            let h = spawn(move || {
                s2.acquire();
                log2.lock().push("acquired");
            });
            while s.state.waiters.borrow().is_empty() {
                crate::yield_now();
            }
            for _ in 0..3 {
                log.lock().push("release");
                s.release();
            }
            h.join();
            assert_eq!(s.permits(), 0, "handoff consumed the permit directly");
            let v = log.lock().clone();
            v
        });
        assert_eq!(order, ["release", "release", "release", "acquired"]);
    }

    #[test]
    fn semaphore_negative_permits_nonblocking_accounting() {
        let s = Semaphore::new(-1);
        assert!(!s.try_acquire(), "in debt: nothing to take");
        s.release();
        assert_eq!(s.permits(), 0);
        assert!(!s.try_acquire(), "debt paid but no permit yet");
        s.release();
        assert_eq!(s.permits(), 1);
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
    }

    #[test]
    fn semaphore_wakes_waiters_in_fifo_order() {
        // p=1 FIFO makes the blocking order deterministic (spawn order);
        // releases must then admit waiters strictly first-come-first-served.
        let (order, _) = run(Config::new(1, SchedKind::Fifo), || {
            let s = Semaphore::new(0);
            let log = Mutex::new(Vec::new());
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let (s2, log2) = (s.clone(), log.clone());
                    spawn(move || {
                        s2.acquire();
                        log2.lock().push(i);
                    })
                })
                .collect();
            while s.state.waiters.borrow().len() < 3 {
                crate::yield_now();
            }
            for _ in 0..3 {
                s.release();
            }
            for h in handles {
                h.join();
            }
            let v = log.lock().clone();
            v
        });
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn no_naked_notify_window_under_perturbation() {
        // Satellite audit of Condvar::notify_one vs a racing wait: the
        // waiter enqueues itself *before* releasing the mutex and the
        // engine's yield hooks refuse to preempt a thread that is already
        // Blocked, so no schedule can slip a notify between the predicate
        // check and the block. Fuzz the claim across perturbed schedules
        // and prove every trace causally clean.
        for kind in [SchedKind::Fifo, SchedKind::Ws] {
            for seed in 0..16u64 {
                let cfg = Config::new(4, kind).with_trace().with_perturbation(seed);
                let (_, report) = run(cfg, || {
                    let m = Mutex::new(0u32);
                    let cv = Condvar::new();
                    scope(|s| {
                        for _ in 0..4 {
                            let (m, cv) = (m.clone(), cv.clone());
                            s.spawn(move || {
                                let mut g = m.lock();
                                *g += 1;
                                cv.notify_one(); // often naked: nobody waits yet
                                g = cv.wait_while(g, |v| *v < 4);
                                drop(g);
                                cv.notify_one(); // unblock the next waiter
                            });
                        }
                    });
                    assert_eq!(*m.lock(), 4);
                });
                let check = check_trace(&report.trace.unwrap());
                assert!(
                    check.is_clean(),
                    "{kind:?} seed {seed}: {:?}",
                    check.violations
                );
            }
        }
    }

    #[test]
    fn barrier_immediate_reuse_under_perturbation() {
        // Back-to-back rounds with zero work between them: a woken thread
        // re-enters `wait` while the previous round's wakes are still
        // being delivered (in shuffled order under perturbation). The
        // generation assert inside `wait` catches stale-round wakes; the
        // checker proves block/wake pairing for every round.
        for seed in 0..16u64 {
            let cfg = Config::new(4, SchedKind::Ws)
                .with_trace()
                .with_perturbation(seed);
            let (_, report) = run(cfg, || {
                let b = Barrier::new(4);
                let hits = Mutex::new(vec![0u32; 8]);
                scope(|s| {
                    for _ in 0..4 {
                        let (b, hits) = (b.clone(), hits.clone());
                        s.spawn(move || {
                            for round in 0..8 {
                                b.wait();
                                hits.lock()[round] += 1;
                            }
                        });
                    }
                });
                let v = hits.lock().clone();
                assert_eq!(v, vec![4; 8], "every round must see all 4 threads");
            });
            let check = check_trace(&report.trace.unwrap());
            assert!(check.is_clean(), "seed {seed}: {:?}", check.violations);
        }
    }

    #[test]
    fn checker_catches_a_dropped_notify() {
        // Acceptance: an intentionally lossy condvar — records the Notify
        // a real notify_one would have published, then drops the wake on
        // the floor — must be flagged by the checker. (A rescue wake lets
        // the run terminate; the lie is already in the trace.)
        let (_, report) = run(Config::new(2, SchedKind::Fifo).with_trace(), || {
            let m = Mutex::new(());
            let cv = Condvar::new();
            let (m2, cv2) = (m.clone(), cv.clone());
            let h = spawn(move || {
                let g = m2.lock();
                let _g = cv2.wait(g);
            });
            while cv.waiter_count() == 0 {
                crate::yield_now();
            }
            let w = cv.state.waiters.borrow_mut().pop_front().expect("one waiter");
            {
                let rc = par_ctx().expect("runtime");
                let mut inner = rc.borrow_mut();
                let obj = inner.sync_id_for(&cv.state.id);
                inner.note_sync(crate::trace::BlockReason::Condvar, obj, 1, 0);
            }
            wake(w);
            h.join();
        });
        let check = check_trace(&report.trace.unwrap());
        assert!(
            check
                .violations
                .iter()
                .any(|v| matches!(v, Violation::LostNotify { waiters: 1, .. })),
            "lossy notify must be flagged, got {:?}",
            check.violations
        );
    }

    #[test]
    fn wait_while_under_contention() {
        let (total, _) = run(Config::new(4, SchedKind::Ws), || {
            let slots = Mutex::new(3i32);
            let cv = Condvar::new();
            let done = Mutex::new(0u32);
            scope(|s| {
                for _ in 0..12 {
                    let (slots, cv, done) = (slots.clone(), cv.clone(), done.clone());
                    s.spawn(move || {
                        // Acquire one of 3 slots, work, release.
                        let mut g = cv.wait_while(slots.lock(), |v| *v == 0);
                        *g -= 1;
                        drop(g);
                        crate::work(5_000);
                        *slots.lock() += 1;
                        cv.notify_one();
                        *done.lock() += 1;
                    });
                }
            });
            let v = *done.lock();
            v
        });
        assert_eq!(total, 12);
    }
}
