//! Reader-writer lock (`pthread_rwlock_t`).
//!
//! Writer-preferring: once a writer is queued, new readers block behind it,
//! avoiding writer starvation. Blocking threads keep their DF-queue
//! placeholder like every other blocking primitive.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::rc::Rc;

use crate::api::par_ctx;
use crate::runtime::suspend_current;
use crate::thread::{ThreadId, YieldReason};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    Reader(ThreadId),
    Writer(ThreadId),
}

struct RwState {
    /// Per-run trace id, assigned at first engine interaction.
    id: Cell<Option<u32>>,
    /// Active readers (writer active is represented by `writer`).
    readers: Cell<usize>,
    writer: Cell<bool>,
    /// Identity of the active writer / readers, for the deadlock sentinel's
    /// waits-for graph. Best-effort: acquisitions outside a runtime (no
    /// thread id) are counted in `readers`/`writer` but not recorded here.
    writer_id: Cell<Option<ThreadId>>,
    reader_ids: RefCell<Vec<ThreadId>>,
    waiters: RefCell<VecDeque<Waiter>>,
}

impl RwState {
    /// Current holder snapshot: the writer, or the reader set.
    fn holders(&self) -> Vec<ThreadId> {
        if self.writer.get() {
            self.writer_id.get().into_iter().collect()
        } else {
            self.reader_ids.borrow().clone()
        }
    }
}

struct RwInner<T> {
    state: RwState,
    value: UnsafeCell<T>,
}

/// A blocking readers-writer lock protecting a `T` (handle semantics, like
/// [`crate::Mutex`]).
pub struct RwLock<T> {
    inner: Rc<RwInner<T>>,
}

impl<T> Clone for RwLock<T> {
    fn clone(&self) -> Self {
        RwLock {
            inner: self.inner.clone(),
        }
    }
}

/// Shared (read) guard.
pub struct ReadGuard<'a, T> {
    lock: &'a RwLock<T>,
}

/// Exclusive (write) guard.
pub struct WriteGuard<'a, T> {
    lock: &'a RwLock<T>,
}

fn charge_op() {
    if let Some(rc) = par_ctx() {
        {
            let mut inner = rc.borrow_mut();
            // Lenient on context: stall-teardown destructors (guard drops)
            // release the lock with no current thread.
            let Some((_, p)) = inner.cur else {
                return;
            };
            let c = inner.machine.cost().sync_op;
            inner.machine.sync_op(p, c);
        }
        crate::runtime::maybe_timeslice(&rc);
        crate::runtime::maybe_chaos_yield(&rc);
    }
}

/// The calling thread's id, when inside a runtime thread.
fn me() -> Option<ThreadId> {
    crate::api::current_thread()
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: Rc::new(RwInner {
                state: RwState {
                    id: Cell::new(None),
                    readers: Cell::new(0),
                    writer: Cell::new(false),
                    writer_id: Cell::new(None),
                    reader_ids: RefCell::new(Vec::new()),
                    waiters: RefCell::new(VecDeque::new()),
                },
                value: UnsafeCell::new(value),
            }),
        }
    }

    /// Acquires shared access; blocks while a writer holds or awaits the
    /// lock (writer preference).
    pub fn read(&self) -> ReadGuard<'_, T> {
        charge_op();
        let st = &self.inner.state;
        let writer_queued = st
            .waiters
            .borrow()
            .iter()
            .any(|w| matches!(w, Waiter::Writer(_)));
        if !st.writer.get() && !writer_queued {
            st.readers.set(st.readers.get() + 1);
            if let Some(me) = me() {
                st.reader_ids.borrow_mut().push(me);
            }
            return ReadGuard { lock: self };
        }
        let rc = par_ctx().expect("contended rwlock outside a runtime would deadlock");
        let me = crate::api::current_thread().expect("read outside a thread");
        {
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&st.id);
            // Publish the live holders and probe the prospective waits-for
            // edge before enqueueing (see Mutex::lock). The edge points at
            // the *actual* holders, skipping any queued writer: a blocked
            // reader transitively waits on whatever the writer waits on.
            inner.note_holders(obj, st.holders());
            if let Some(info) = inner.check_for_cycle(me, Some(obj), None) {
                inner.record_deadlock(&info);
                if st.waiters.borrow().is_empty() {
                    inner.note_holders(obj, Vec::new());
                }
                drop(inner);
                std::panic::panic_any(crate::DeadlockError { info });
            }
            st.waiters.borrow_mut().push_back(Waiter::Reader(me));
            inner.block_current(crate::trace::BlockReason::RwRead, Some(obj), None);
        }
        suspend_current(&rc, YieldReason::Blocked);
        // Woken by release(): reader count already incremented on our behalf.
        debug_assert!(st.readers.get() > 0);
        ReadGuard { lock: self }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> WriteGuard<'_, T> {
        charge_op();
        let st = &self.inner.state;
        if !st.writer.get() && st.readers.get() == 0 {
            st.writer.set(true);
            st.writer_id.set(me());
            return WriteGuard { lock: self };
        }
        let rc = par_ctx().expect("contended rwlock outside a runtime would deadlock");
        let me = crate::api::current_thread().expect("write outside a thread");
        {
            let mut inner = rc.borrow_mut();
            let obj = inner.sync_id_for(&st.id);
            inner.note_holders(obj, st.holders());
            if let Some(info) = inner.check_for_cycle(me, Some(obj), None) {
                inner.record_deadlock(&info);
                if st.waiters.borrow().is_empty() {
                    inner.note_holders(obj, Vec::new());
                }
                drop(inner);
                std::panic::panic_any(crate::DeadlockError { info });
            }
            st.waiters.borrow_mut().push_back(Waiter::Writer(me));
            inner.block_current(crate::trace::BlockReason::RwWrite, Some(obj), None);
        }
        suspend_current(&rc, YieldReason::Blocked);
        debug_assert!(st.writer.get());
        WriteGuard { lock: self }
    }

    /// Attempts shared access without blocking.
    pub fn try_read(&self) -> Option<ReadGuard<'_, T>> {
        charge_op();
        let st = &self.inner.state;
        if !st.writer.get() && st.waiters.borrow().is_empty() {
            st.readers.set(st.readers.get() + 1);
            if let Some(me) = me() {
                st.reader_ids.borrow_mut().push(me);
            }
            Some(ReadGuard { lock: self })
        } else {
            None
        }
    }

    /// Attempts exclusive access without blocking. Like [`RwLock::try_read`]
    /// it also fails while any waiter is queued: an admitted-but-not-yet-run
    /// waiter owns the next turn, and barging past it would hand two
    /// threads the lock's fairness slot at once.
    pub fn try_write(&self) -> Option<WriteGuard<'_, T>> {
        charge_op();
        let st = &self.inner.state;
        if !st.writer.get() && st.readers.get() == 0 && st.waiters.borrow().is_empty() {
            st.writer.set(true);
            st.writer_id.set(me());
            Some(WriteGuard { lock: self })
        } else {
            None
        }
    }

    /// Wakes whatever the fairness policy admits next: either the front
    /// writer, or the maximal prefix of readers.
    fn release_next(&self) {
        let st = &self.inner.state;
        let mut waiters = st.waiters.borrow_mut();
        let nwaiters = waiters.len() as u64;
        match waiters.front() {
            Some(Waiter::Writer(_)) if st.readers.get() == 0 && !st.writer.get() => {
                let Some(Waiter::Writer(w)) = waiters.pop_front() else {
                    unreachable!()
                };
                st.writer.set(true);
                st.writer_id.set(Some(w));
                drop(waiters);
                self.wake_batch(crate::trace::BlockReason::RwWrite, nwaiters, vec![w]);
            }
            Some(Waiter::Reader(_)) if !st.writer.get() => {
                let mut woken = Vec::new();
                while let Some(Waiter::Reader(r)) = waiters.front().copied() {
                    waiters.pop_front();
                    st.readers.set(st.readers.get() + 1);
                    st.reader_ids.borrow_mut().push(r);
                    woken.push(r);
                }
                drop(waiters);
                self.wake_batch(crate::trace::BlockReason::RwRead, nwaiters, woken);
            }
            _ => {}
        }
    }

    /// Refreshes the sentinel's holder entry for this lock: the current
    /// holder snapshot while waiters are queued, retired otherwise. Lenient
    /// on context like [`RwLock::wake_batch`].
    fn publish_holders(&self) {
        if let Some(rc) = par_ctx() {
            if let Ok(mut inner) = rc.try_borrow_mut() {
                let st = &self.inner.state;
                let obj = inner.sync_id_for(&st.id);
                let holders = if st.waiters.borrow().is_empty() {
                    Vec::new()
                } else {
                    st.holders()
                };
                inner.note_holders(obj, holders);
            }
        }
    }

    /// Wakes an admitted batch, shuffled under schedule perturbation (a
    /// reader batch has no defined admission order), and records the
    /// handoff for the happens-before checker. Lenient on context like the
    /// old free `wake`: a guard dropped outside a thread context (teardown
    /// paths) skips the bookkeeping.
    fn wake_batch(&self, reason: crate::trace::BlockReason, nwaiters: u64, mut batch: Vec<ThreadId>) {
        if let Some(rc) = par_ctx() {
            if let Ok(mut inner) = rc.try_borrow_mut() {
                if let Some((_, p)) = inner.cur {
                    let st = &self.inner.state;
                    let obj = inner.sync_id_for(&st.id);
                    inner.shuffle_wake_order(&mut batch);
                    inner.note_sync(reason, obj, nwaiters, batch.len() as u64);
                    // Sentinel registry: the admitted batch holds the lock
                    // now; retire the entry once the queue drained.
                    let holders = if st.waiters.borrow().is_empty() {
                        Vec::new()
                    } else {
                        st.holders()
                    };
                    inner.note_holders(obj, holders);
                    for w in batch {
                        inner.make_ready(w, p);
                    }
                }
            }
        }
    }
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: shared access is held (readers > 0, no writer).
        unsafe { &*self.lock.inner.value.get() }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        charge_op();
        let st = &self.lock.inner.state;
        st.readers.set(st.readers.get() - 1);
        if let Some(me) = me() {
            let mut ids = st.reader_ids.borrow_mut();
            if let Some(i) = ids.iter().position(|&r| r == me) {
                ids.swap_remove(i);
            }
        }
        if st.readers.get() == 0 {
            self.lock.release_next();
        } else if !st.waiters.borrow().is_empty() {
            // Partial release under contention: keep the sentinel's holder
            // snapshot accurate so it never walks a stale reader edge.
            self.lock.publish_holders();
        }
    }
}

impl<T> std::ops::Deref for WriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive access is held.
        unsafe { &*self.lock.inner.value.get() }
    }
}

impl<T> std::ops::DerefMut for WriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: exclusive access is held.
        unsafe { &mut *self.lock.inner.value.get() }
    }
}

impl<T> Drop for WriteGuard<'_, T> {
    fn drop(&mut self) {
        charge_op();
        self.lock.inner.state.writer.set(false);
        self.lock.inner.state.writer_id.set(None);
        self.lock.release_next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, spawn, Config, SchedKind};

    #[test]
    fn uncontended_read_write_outside_runtime() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_variants() {
        let l = RwLock::new(0);
        let r = l.try_read().unwrap();
        assert!(l.try_write().is_none(), "writer blocked by reader");
        assert!(l.try_read().is_some(), "second reader admitted");
        drop(r);
    }

    #[test]
    fn readers_share_writers_exclude() {
        for kind in [SchedKind::Fifo, SchedKind::Df] {
            let (total, _) = run(Config::new(4, kind), || {
                let l = RwLock::new(0u64);
                scope(|s| {
                    for _ in 0..4 {
                        let l = l.clone();
                        s.spawn(move || {
                            for _ in 0..10 {
                                let mut g = l.write();
                                let v = *g;
                                crate::work(1_000); // hold across work
                                *g = v + 1;
                            }
                        });
                    }
                    for _ in 0..4 {
                        let l = l.clone();
                        s.spawn(move || {
                            for _ in 0..10 {
                                let g = l.read();
                                crate::work(500);
                                std::hint::black_box(*g);
                            }
                        });
                    }
                });
                let v = *l.read();
                v
            });
            assert_eq!(total, 40, "{kind:?}: lost update through RwLock");
        }
    }

    #[test]
    fn try_write_respects_queued_waiters_under_perturbation() {
        // Regression pin for the try_write/try_read asymmetry: try_write
        // used to ignore the wait queue, so it could barge past queued
        // waiters. A perturbed storm mixes blocking writers, try_write
        // opportunists and invariant-checking readers: the two halves of
        // the protected pair must never be observed torn, and the total
        // must equal the number of successful writes.
        for seed in 0..16u64 {
            let cfg = Config::new(4, SchedKind::DfDeques).with_perturbation(seed);
            let ((pair, tries), _) = run(cfg, || {
                let l = RwLock::new([0u64; 2]);
                let tries = crate::Mutex::new(0u64);
                scope(|s| {
                    for _ in 0..4 {
                        let l = l.clone();
                        s.spawn(move || {
                            for _ in 0..8 {
                                let mut g = l.write();
                                g[0] += 1;
                                crate::work(500); // hold across work
                                g[1] += 1;
                            }
                        });
                    }
                    for _ in 0..4 {
                        let (l, tries) = (l.clone(), tries.clone());
                        s.spawn(move || {
                            for _ in 0..8 {
                                if let Some(mut g) = l.try_write() {
                                    assert_eq!(g[0], g[1], "torn write observed");
                                    g[0] += 1;
                                    crate::work(500);
                                    g[1] += 1;
                                    *tries.lock() += 1;
                                }
                                crate::yield_now();
                            }
                        });
                    }
                    for _ in 0..2 {
                        let l = l.clone();
                        s.spawn(move || {
                            for _ in 0..8 {
                                let g = l.read();
                                assert_eq!(g[0], g[1], "reader saw a torn write");
                                crate::work(200);
                            }
                        });
                    }
                });
                let pair = *l.read();
                let t = *tries.lock();
                (pair, t)
            });
            assert_eq!(pair[0], pair[1], "seed {seed}");
            assert_eq!(pair[0], 32 + tries, "seed {seed}: lost updates");
        }
    }

    #[test]
    fn writer_preference_no_starvation() {
        // A stream of readers must not starve a queued writer.
        let (order, _) = run(Config::new(2, SchedKind::Df), || {
            let l = RwLock::new(Vec::<&'static str>::new());
            let l2 = l.clone();
            let g = l.read(); // hold a read lock
            let writer = spawn(move || {
                l2.write().push("writer");
            });
            crate::work(50_000);
            // A late reader arriving while the writer waits must queue
            // behind it (can't test non-blocking here; try_read observes it).
            assert!(l.try_read().is_none(), "writer queued → reader must wait");
            drop(g);
            writer.join();
            let v = l.read().clone();
            v
        });
        assert_eq!(order, vec!["writer"]);
    }
}
