//! Thread-specific data (`pthread_key_create` / `pthread_setspecific`).
//!
//! A [`TlsKey<T>`] gives each runtime thread its own slot of type `T`.
//! Slots are created lazily via the key's initializer and dropped when the
//! run ends (the paper's library destroys TSD at thread exit; values here
//! live in the key, keyed by [`crate::ThreadId`], and ids are never reused
//! within a run, which gives the same observable semantics).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use crate::thread::ThreadId;

/// A key for per-thread values of type `T` (handle semantics; clones share
/// the same key).
pub struct TlsKey<T> {
    slots: Rc<RefCell<HashMap<ThreadId, T>>>,
    init: Rc<dyn Fn() -> T>,
}

impl<T> Clone for TlsKey<T> {
    fn clone(&self) -> Self {
        TlsKey {
            slots: self.slots.clone(),
            init: self.init.clone(),
        }
    }
}

/// Key used for code running outside any runtime thread (serial mode /
/// plain calls): a single shared slot.
const OUTSIDE: ThreadId = ThreadId(u32::MAX - 2);

impl<T> TlsKey<T> {
    /// Creates a key whose per-thread values start as `init()`.
    pub fn new(init: impl Fn() -> T + 'static) -> Self {
        TlsKey {
            slots: Rc::new(RefCell::new(HashMap::new())),
            init: Rc::new(init),
        }
    }

    fn me(&self) -> ThreadId {
        crate::api::current_thread().unwrap_or(OUTSIDE)
    }

    /// Runs `f` with a mutable reference to the calling thread's slot
    /// (initializing it first if needed).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let me = self.me();
        let mut slots = self.slots.borrow_mut();
        let slot = slots.entry(me).or_insert_with(|| (self.init)());
        f(slot)
    }

    /// Replaces the calling thread's value (`pthread_setspecific`).
    pub fn set(&self, value: T) {
        self.slots.borrow_mut().insert(self.me(), value);
    }

    /// Takes the calling thread's value out, if set.
    pub fn take(&self) -> Option<T> {
        self.slots.borrow_mut().remove(&self.me())
    }

    /// Clones the calling thread's value (`pthread_getspecific`).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.with(|v| v.clone())
    }

    /// Number of threads that have touched this key.
    pub fn len(&self) -> usize {
        self.slots.borrow().len()
    }

    /// True if no thread has touched the key.
    pub fn is_empty(&self) -> bool {
        self.slots.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, Config, SchedKind};

    #[test]
    fn outside_runtime_acts_as_single_slot() {
        let k = TlsKey::new(|| 0u32);
        k.set(7);
        assert_eq!(k.get(), 7);
        k.with(|v| *v += 1);
        assert_eq!(k.take(), Some(8));
        assert_eq!(k.get(), 0, "fresh after take");
    }

    #[test]
    fn each_thread_gets_its_own_slot() {
        let (sums, _) = run(Config::new(4, SchedKind::Df), || {
            let key = TlsKey::new(|| 0u64);
            let k2 = key.clone();
            scope(|s| {
                for i in 0..16u64 {
                    let key = key.clone();
                    s.spawn(move || {
                        // Accumulate privately; no synchronization needed.
                        for _ in 0..=i {
                            key.with(|v| *v += 1);
                        }
                    });
                }
            });
            // 16 worker slots were created (none shared).
            assert!(k2.len() >= 16);
            k2
        });
        let _ = sums;
    }

    #[test]
    fn values_do_not_leak_across_threads() {
        let (ok, _) = run(Config::new(2, SchedKind::Fifo), || {
            let key = TlsKey::new(|| -1i64);
            let k1 = key.clone();
            let a = crate::spawn(move || {
                k1.set(100);
                k1.get()
            });
            let k2 = key.clone();
            let b = crate::spawn(move || k2.get());
            a.join() == 100 && b.join() == -1
        });
        assert!(ok);
    }
}
