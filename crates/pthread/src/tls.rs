//! Thread-specific data (`pthread_key_create` / `pthread_setspecific`).
//!
//! A [`TlsKey<T>`] gives each runtime thread its own slot of type `T`.
//! Slots are created lazily via the key's initializer and — like pthread
//! TSD destructors — **destroyed when their thread exits**: the key
//! registers a per-run exit cleaner with the engine on first touch, so a
//! long run churning through threads keeps the key's map bounded by the
//! number of *live* threads, not the number ever created. Slot bytes are
//! attributed through the allocation ledger when one is armed
//! ([`crate::Config::with_ledger`]). Slot value destructors run inside the
//! engine's exit path and must not call back into the runtime.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use crate::thread::ThreadId;

/// A key for per-thread values of type `T` (handle semantics; clones share
/// the same key).
pub struct TlsKey<T> {
    slots: Rc<RefCell<HashMap<ThreadId, T>>>,
    init: Rc<dyn Fn() -> T>,
    /// Run token of the run this key last registered its exit cleaner with
    /// (keys outlive runs; shared across clones so each run registers one
    /// cleaner no matter how many clones touch it).
    registered: Rc<Cell<u64>>,
}

impl<T> Clone for TlsKey<T> {
    fn clone(&self) -> Self {
        TlsKey {
            slots: self.slots.clone(),
            init: self.init.clone(),
            registered: self.registered.clone(),
        }
    }
}

/// Key used for code running outside any runtime thread (serial mode /
/// plain calls): a single shared slot.
const OUTSIDE: ThreadId = ThreadId(u32::MAX - 2);

impl<T: 'static> TlsKey<T> {
    /// Creates a key whose per-thread values start as `init()`.
    pub fn new(init: impl Fn() -> T + 'static) -> Self {
        TlsKey {
            slots: Rc::new(RefCell::new(HashMap::new())),
            init: Rc::new(init),
            registered: Rc::new(Cell::new(0)),
        }
    }

    fn me(&self) -> ThreadId {
        crate::api::current_thread().unwrap_or(OUTSIDE)
    }

    /// First touch of this key by `me` in the active run: registers the
    /// key's thread-exit cleaner (once per run) and attributes the new
    /// slot's bytes to `me` in the ledger, when one is armed.
    fn attach(&self, me: ThreadId) {
        if me == OUTSIDE {
            return;
        }
        let Some(rc) = crate::api::par_ctx() else {
            return;
        };
        let mut inner = rc.borrow_mut();
        if let Some(ledger) = inner.ledger.as_mut() {
            ledger.charge_tls(me.0, std::mem::size_of::<T>() as u64);
        }
        if self.registered.get() != inner.run_token {
            self.registered.set(inner.run_token);
            // Weak: the engine's cleaner list must not keep a dropped key's
            // map (and every value in it) alive until the end of the run.
            let slots = Rc::downgrade(&self.slots);
            inner.tls_cleaners.push(Box::new(move |tid| {
                slots.upgrade().map_or(0, |map| {
                    map.borrow_mut()
                        .remove(&tid)
                        .map_or(0, |_| std::mem::size_of::<T>() as u64)
                })
            }));
        }
    }

    /// Releases the ledger attribution for a slot `me` removed explicitly
    /// (via [`TlsKey::take`]) rather than by the exit cleaner.
    fn detach(&self, me: ThreadId) {
        if me == OUTSIDE {
            return;
        }
        if let Some(rc) = crate::api::par_ctx() {
            if let Some(ledger) = rc.borrow_mut().ledger.as_mut() {
                ledger.release_tls(me.0, std::mem::size_of::<T>() as u64);
            }
        }
    }

    /// Runs `f` with a mutable reference to the calling thread's slot
    /// (initializing it first if needed).
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let me = self.me();
        let fresh = {
            let mut slots = self.slots.borrow_mut();
            match slots.entry(me) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert((self.init)());
                    true
                }
            }
        };
        if fresh {
            self.attach(me);
        }
        let mut slots = self.slots.borrow_mut();
        f(slots.get_mut(&me).expect("slot just ensured"))
    }

    /// Replaces the calling thread's value (`pthread_setspecific`).
    pub fn set(&self, value: T) {
        let me = self.me();
        let fresh = self.slots.borrow_mut().insert(me, value).is_none();
        if fresh {
            self.attach(me);
        }
    }

    /// Takes the calling thread's value out, if set.
    pub fn take(&self) -> Option<T> {
        let me = self.me();
        let v = self.slots.borrow_mut().remove(&me);
        if v.is_some() {
            self.detach(me);
        }
        v
    }

    /// Clones the calling thread's value (`pthread_getspecific`).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.with(|v| v.clone())
    }

    /// Number of threads that have touched this key.
    pub fn len(&self) -> usize {
        self.slots.borrow().len()
    }

    /// True if no thread has touched the key.
    pub fn is_empty(&self) -> bool {
        self.slots.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, Config, SchedKind};

    #[test]
    fn outside_runtime_acts_as_single_slot() {
        let k = TlsKey::new(|| 0u32);
        k.set(7);
        assert_eq!(k.get(), 7);
        k.with(|v| *v += 1);
        assert_eq!(k.take(), Some(8));
        assert_eq!(k.get(), 0, "fresh after take");
    }

    #[test]
    fn each_thread_gets_its_own_slot() {
        let (ok, _) = run(Config::new(4, SchedKind::Df), || {
            let key = TlsKey::new(|| 0u64);
            scope(|s| {
                let handles: Vec<_> = (0..16u64)
                    .map(|i| {
                        let key = key.clone();
                        s.spawn(move || {
                            // Accumulate privately; no synchronization
                            // needed. The final value equals this thread's
                            // own contribution only if no slot is shared.
                            for _ in 0..=i {
                                key.with(|v| *v += 1);
                            }
                            key.with(|v| *v) == i + 1
                        })
                    })
                    .collect();
                handles.into_iter().all(|h| h.join())
            })
        });
        assert!(ok);
    }

    #[test]
    fn exited_threads_do_not_leak_slots() {
        // Thread-churn storm: without TSD destruction at exit, the key's
        // map would grow by one slot per exited thread (512 here).
        let ((), report) = run(Config::new(2, SchedKind::Df).with_ledger(), || {
            let key = TlsKey::new(|| [0u64; 4]);
            for _wave in 0..64 {
                let handles: Vec<_> = (0..8)
                    .map(|_| {
                        let k = key.clone();
                        crate::spawn(move || k.with(|v| v[0] += 1))
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                // All workers of the wave exited; their slots went with
                // them (the root never touches the key).
                assert_eq!(key.len(), 0);
            }
        });
        let leaks = report.leaks.expect("ledger armed");
        assert_eq!(leaks.tls_leaked_bytes, 0);
        assert!(leaks.is_clean(), "storm leaked: {leaks:?}");
    }

    #[test]
    fn values_do_not_leak_across_threads() {
        let (ok, _) = run(Config::new(2, SchedKind::Fifo), || {
            let key = TlsKey::new(|| -1i64);
            let k1 = key.clone();
            let a = crate::spawn(move || {
                k1.set(100);
                k1.get()
            });
            let k2 = key.clone();
            let b = crate::spawn(move || k2.get());
            a.join() == 100 && b.join() == -1
        });
        assert!(ok);
    }
}
