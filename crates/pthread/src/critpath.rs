//! Blame-attributed observed-critical-path analysis over a recorded
//! [`Trace`].
//!
//! The analyzer walks the flight-recorder trace *backwards* from the span
//! with the latest end, following the causal edges the happens-before
//! checker ([`crate::check_trace`]) also uses — wake (who published my
//! wake), spawn (who forked me), join (whose exit I slept on), preemption
//! and timeout — and produces the **realized critical path**: a sequence of
//! [`Segment`]s that tile `[0, makespan]` exactly, each blamed on one
//! [`BlameBucket`]:
//!
//! * `Compute` — a thread on the path was executing.
//! * `ReadyWait` — the path crossed a ready-but-not-dispatched interval
//!   (scheduler/queue delay, including spawn → first dispatch).
//! * `LockWait { reason, obj }` — the path crossed a block on a sync
//!   object. Walk time spent *inside* such a window (the wake publisher's
//!   own history between the block and the wake) is recolored to the
//!   window's object: that time is what the blocked successor was waiting
//!   out.
//! * `JoinWait` — the path crossed a join wait (the joined child's own
//!   compute stays `Compute`; only the wake→dispatch and sleep slivers are
//!   join-blamed, so a closed fork/join program's compute-only path equals
//!   its DAG critical path).
//! * `Preempt` — a quota/chaos preemption window on the path.
//! * `Residual` — time the walk could not attribute (cross-processor
//!   wake-clamp skew, engine tail past the last span, degenerate traces).
//!
//! The bucket totals sum **bit-exactly** to the makespan: every step of the
//! walk extends the tiling downward and the loop only terminates at zero
//! (or by dumping the untiled prefix into `Residual`).
//!
//! The same module owns the causal-edge extraction ([`causal_edge`]) shared
//! with the vector-clock checker in `check.rs`, so the two features cannot
//! drift apart on what constitutes a happens-before edge.

use std::collections::HashMap;

use ptdf_smp::VirtTime;

use crate::trace::{BlockReason, Event, EventKind, Trace};

/// A happens-before edge carried by one trace [`Event`], as consumed by
/// both the vector-clock checker and the critical-path analyzer.
///
/// | Event | Edge | Meaning |
/// |---|---|---|
/// | `Spawn{parent}` | `Spawn` | parent's past ⟶ child |
/// | `Wake{waker}` | `Wake` | waker's past ⟶ woken thread |
/// | `Timeout` | `Timeout` | self-wake at a deadline (no publisher) |
/// | `Join{target}` | `Join` | target's exit ⟶ joiner |
/// | `Block{obj}` | `BlockPublish` | blocker's past ⟶ sync object |
/// | `Notify{obj}` | `NotifyExchange` | object ⟷ notifier (both ways) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalEdge {
    /// The child inherits the parent's past.
    Spawn {
        /// Forking thread.
        parent: u32,
        /// Created thread.
        child: u32,
    },
    /// The woken thread inherits the waker's past.
    Wake {
        /// Publishing thread, when the wake came from inside a thread.
        waker: Option<u32>,
        /// The thread made ready.
        woken: u32,
    },
    /// A timed wait expired: the thread woke itself; no inbound edge.
    Timeout {
        /// The self-woken thread.
        woken: u32,
    },
    /// The joiner inherits the joined thread's (exited) past.
    Join {
        /// The joined, exited thread.
        target: u32,
        /// The joining thread.
        joiner: u32,
    },
    /// A blocking thread publishes its past into the sync object.
    BlockPublish {
        /// The blocking thread.
        thread: u32,
        /// Per-run sync-object id.
        obj: u32,
    },
    /// A notify exchanges pasts with the sync object (both directions).
    NotifyExchange {
        /// The notifying thread.
        thread: u32,
        /// Per-run sync-object id.
        obj: u32,
    },
}

/// Extracts the happens-before edge carried by `e`, if any. Events without
/// a subject thread (machine-level memory events) and kinds that carry no
/// cross-thread ordering (first-dispatch, steal, preempt, stack/heap
/// events, deadlock annotations) yield `None`.
pub fn causal_edge(e: &Event) -> Option<CausalEdge> {
    let t = e.thread?;
    Some(match e.kind {
        EventKind::Spawn { parent: Some(p) } => CausalEdge::Spawn { parent: p, child: t },
        EventKind::Wake { waker } => CausalEdge::Wake { waker, woken: t },
        EventKind::Timeout { .. } => CausalEdge::Timeout { woken: t },
        EventKind::Join { target } => CausalEdge::Join { target, joiner: t },
        EventKind::Block { obj: Some(o), .. } => CausalEdge::BlockPublish { thread: t, obj: o },
        EventKind::Notify { obj, .. } => CausalEdge::NotifyExchange { thread: t, obj },
        _ => return None,
    })
}

/// Blame assignment of one critical-path [`Segment`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum BlameBucket {
    /// A path thread was executing.
    Compute,
    /// Ready-but-not-running: scheduler/queue delay on the path.
    ReadyWait,
    /// Blocked on a sync object (or path time recolored into such a
    /// window).
    LockWait {
        /// The blocking primitive.
        reason: BlockReason,
        /// Per-run sync-object id (`None` for objectless blocks).
        obj: Option<u32>,
    },
    /// Waiting for a joined thread's exit (slivers only; the child's own
    /// compute stays [`BlameBucket::Compute`]).
    JoinWait,
    /// A preemption window (memory-quota or injected).
    Preempt,
    /// Unattributable time (clock skew, engine tail, degenerate traces).
    #[default]
    Residual,
}

impl BlameBucket {
    /// Stable bucket name for reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            BlameBucket::Compute => "compute",
            BlameBucket::ReadyWait => "ready-wait",
            BlameBucket::LockWait { .. } => "lock-wait",
            BlameBucket::JoinWait => "join-wait",
            BlameBucket::Preempt => "preempt",
            BlameBucket::Residual => "residual",
        }
    }
}

/// One contiguous interval of the realized critical path.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct Segment {
    /// The thread the walk was in (`None` for the engine tail / empty
    /// traces).
    pub thread: Option<u32>,
    /// Interval start (virtual).
    pub start: VirtTime,
    /// Interval end (virtual).
    pub end: VirtTime,
    /// Who gets the blame.
    pub bucket: BlameBucket,
}

impl Segment {
    /// Segment duration.
    pub fn dur(&self) -> VirtTime {
        self.end.since(self.start)
    }
}

/// Per-bucket totals over the whole path. [`Blame::sum`] equals the
/// makespan bit-exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize)]
pub struct Blame {
    /// Total [`BlameBucket::Compute`] time.
    pub compute: VirtTime,
    /// Total [`BlameBucket::ReadyWait`] time.
    pub ready_wait: VirtTime,
    /// Total [`BlameBucket::LockWait`] time (all objects).
    pub lock_wait: VirtTime,
    /// Total [`BlameBucket::JoinWait`] time.
    pub join_wait: VirtTime,
    /// Total [`BlameBucket::Preempt`] time.
    pub preempt: VirtTime,
    /// Total [`BlameBucket::Residual`] time.
    pub residual: VirtTime,
}

impl Blame {
    /// Named view of every bucket, in display order.
    pub fn named(&self) -> [(&'static str, VirtTime); 6] {
        [
            ("compute", self.compute),
            ("ready-wait", self.ready_wait),
            ("lock-wait", self.lock_wait),
            ("join-wait", self.join_wait),
            ("preempt", self.preempt),
            ("residual", self.residual),
        ]
    }

    /// Sum over all buckets — equals the makespan bit-exactly.
    pub fn sum(&self) -> VirtTime {
        self.named()
            .iter()
            .fold(VirtTime::ZERO, |acc, &(_, v)| acc + v)
    }

    /// The largest bucket (first in display order on ties).
    pub fn dominant(&self) -> (&'static str, VirtTime) {
        let named = self.named();
        let mut best = named[0];
        for &(n, v) in &named[1..] {
            if v > best.1 {
                best = (n, v);
            }
        }
        best
    }
}

/// Cumulative path blame against one sync object.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ObjectBlame {
    /// The blocking primitive.
    pub reason: BlockReason,
    /// Per-run sync-object id (`None` for objectless blocks).
    pub obj: Option<u32>,
    /// Total path time blamed on this object.
    pub wait: VirtTime,
    /// Path segments blamed on it.
    pub segments: u64,
}

/// Per-thread on-path totals.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ThreadBlame {
    /// Thread id.
    pub thread: u32,
    /// Total path time attributed while the walk was in this thread.
    pub on_path: VirtTime,
    /// Of which pure compute.
    pub compute: VirtTime,
    /// Path segments in this thread.
    pub segments: u64,
}

/// The analyzed realized critical path of one run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct CritPath {
    /// True when the trace recorded no spans (the result is a structured
    /// "empty" value: one residual segment if the makespan is nonzero).
    pub empty: bool,
    /// The makespan the segments tile (bit-exact: `blame.sum() ==
    /// makespan`).
    pub makespan: VirtTime,
    /// Path segments in increasing time order, tiling `[0, makespan]`.
    pub segments: Vec<Segment>,
    /// Per-bucket totals.
    pub blame: Blame,
    /// Per-object lock-wait blame, largest first.
    pub objects: Vec<ObjectBlame>,
    /// Per-thread on-path totals, largest first.
    pub threads: Vec<ThreadBlame>,
}

/// Analyzes `trace`, taking the latest span end as the makespan. Use
/// [`analyze_with_makespan`] (or [`crate::Report::critpath`]) when the
/// run's true makespan is known — the engine can charge scheduler time past
/// the last span, and that tail must be tiled too.
pub fn analyze(trace: &Trace) -> CritPath {
    analyze_with_makespan(trace, VirtTime::ZERO)
}

/// Analyzes `trace` against a known run makespan (clamped up to the latest
/// span end, so the tiling is always total).
pub fn analyze_with_makespan(trace: &Trace, makespan: VirtTime) -> CritPath {
    Analyzer::new(trace).run(makespan)
}

/// Cumulative blocked time against one sync object across *all* threads
/// (not just the critical path); see [`object_waits`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct ObjectWait {
    /// The blocking primitive.
    pub reason: BlockReason,
    /// Per-run sync-object id.
    pub obj: u32,
    /// Completed block→wake/timeout episodes.
    pub waits: u64,
    /// Total blocked time across episodes.
    pub total: VirtTime,
    /// Longest single episode.
    pub max: VirtTime,
}

/// Per-object blocked time over the whole trace: pairs each `Block` on a
/// sync object with the same thread's next `Wake`/`Timeout` and accumulates
/// the waits per `(reason, obj)`. Sorted by total descending (ties: reason
/// name, then id).
pub fn object_waits(trace: &Trace) -> Vec<ObjectWait> {
    let mut order: Vec<usize> = (0..trace.events.len()).collect();
    order.sort_by_key(|&i| trace.events[i].at);
    let mut pending: HashMap<u32, (VirtTime, BlockReason, u32)> = HashMap::new();
    let mut agg: HashMap<(BlockReason, u32), ObjectWait> = HashMap::new();
    for &i in &order {
        let e = &trace.events[i];
        let Some(t) = e.thread else { continue };
        match e.kind {
            EventKind::Block {
                reason,
                obj: Some(o),
            } => {
                pending.insert(t, (e.at, reason, o));
            }
            EventKind::Block { obj: None, .. } => {
                pending.remove(&t);
            }
            EventKind::Wake { .. } | EventKind::Timeout { .. } => {
                if let Some((at, reason, o)) = pending.remove(&t) {
                    let wait = e.at.since(at);
                    let entry = agg.entry((reason, o)).or_insert(ObjectWait {
                        reason,
                        obj: o,
                        waits: 0,
                        total: VirtTime::ZERO,
                        max: VirtTime::ZERO,
                    });
                    entry.waits += 1;
                    entry.total += wait;
                    entry.max = entry.max.max(wait);
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<ObjectWait> = agg.into_values().collect();
    out.sort_by(|a, b| {
        b.total
            .cmp(&a.total)
            .then(a.reason.name().cmp(b.reason.name()))
            .then(a.obj.cmp(&b.obj))
    });
    out
}

/// Why a span's thread got dispatched, reconstructed per span by a forward
/// pass over each thread's events.
#[derive(Debug, Clone, Copy)]
enum Cause {
    /// A wake published at `at`, optionally resolving a block.
    Woken {
        at: VirtTime,
        waker: Option<u32>,
        block: Option<(VirtTime, BlockReason, Option<u32>)>,
    },
    /// A timed wait expired at `at`, resolving a block without a notifier.
    TimedOut {
        at: VirtTime,
        block: Option<(VirtTime, BlockReason, Option<u32>)>,
    },
    /// Requeued after a preemption at `at`.
    Preempted { at: VirtTime },
    /// First dispatch (spawn → queue → here).
    First,
}

/// An active lock-contention recolor window on the walk stack: path time in
/// `(floor, pushed-at]` is blamed on `(reason, obj)`.
struct Window {
    reason: BlockReason,
    obj: Option<u32>,
    floor: VirtTime,
}

struct Analyzer<'a> {
    trace: &'a Trace,
    /// Span indices per thread, sorted by `(start, end, idx)`.
    by_thread: HashMap<u32, Vec<usize>>,
    /// Dispatch cause per span index.
    causes: Vec<Option<Cause>>,
    /// First `Join{target}` event inside each span: `(at, target)`.
    joins_in_span: HashMap<usize, (VirtTime, u32)>,
    /// Spawn time and parent per thread.
    spawn_info: HashMap<u32, (VirtTime, Option<u32>)>,
    windows: Vec<Window>,
    /// Built in decreasing time order, reversed at the end.
    segs: Vec<Segment>,
    /// Forced span position for the next lookup, used when descending to
    /// the same thread's previous span across a zero-length boundary
    /// (contiguous `Resume` spans share `end == start`, so a pure time
    /// lookup would return the span just processed forever).
    hint: Option<(u32, usize)>,
}

impl<'a> Analyzer<'a> {
    fn new(trace: &'a Trace) -> Self {
        let mut by_thread: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, s) in trace.spans.iter().enumerate() {
            by_thread.entry(s.thread).or_default().push(i);
        }
        for list in by_thread.values_mut() {
            list.sort_by_key(|&i| (trace.spans[i].start, trace.spans[i].end, i));
        }
        let mut events_by_thread: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut order: Vec<usize> = (0..trace.events.len()).collect();
        order.sort_by_key(|&i| trace.events[i].at);
        let mut spawn_info = HashMap::new();
        for &i in &order {
            let e = &trace.events[i];
            let Some(t) = e.thread else { continue };
            if let EventKind::Spawn { parent } = e.kind {
                spawn_info.entry(t).or_insert((e.at, parent));
            }
            if matches!(
                e.kind,
                EventKind::Block { .. }
                    | EventKind::Wake { .. }
                    | EventKind::Timeout { .. }
                    | EventKind::Preempt
                    | EventKind::FirstDispatch
                    | EventKind::Join { .. }
            ) {
                events_by_thread.entry(t).or_default().push(i);
            }
        }
        let mut causes: Vec<Option<Cause>> = vec![None; trace.spans.len()];
        let mut joins_in_span = HashMap::new();
        for (&t, evs) in &events_by_thread {
            let spans = by_thread.get(&t).map(Vec::as_slice).unwrap_or(&[]);
            let mut pending: Option<(VirtTime, BlockReason, Option<u32>)> = None;
            let mut resolution: Option<Cause> = None;
            let mut last_span: Option<usize> = None;
            let (mut ei, mut si) = (0usize, 0usize);
            loop {
                // Events strictly before the next span start are processed
                // first; at equal times, dispatch causes (wake, timeout,
                // preempt, first-dispatch, block) still precede the span,
                // but a `Join` belongs to the span it completes *inside*.
                // Once a dispatch cause is pending it binds to the next
                // same-instant span: pop the span before reading further
                // events, or a cluster of zero-length spans at one instant
                // (block/wake chains under a zero-cost model) would shift
                // every cause one span late and leak the last one onto an
                // unrelated later span.
                let next_event = evs.get(ei).map(|&i| &trace.events[i]);
                let next_span = spans.get(si).map(|&i| &trace.spans[i]);
                let take_event = match (next_event, next_span) {
                    (Some(e), Some(s)) => {
                        e.at < s.start
                            || (e.at == s.start
                                && resolution.is_none()
                                && !matches!(e.kind, EventKind::Join { .. }))
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_event {
                    let e = next_event.expect("checked");
                    match e.kind {
                        EventKind::Block { reason, obj } => {
                            pending = Some((e.at, reason, obj));
                        }
                        EventKind::Wake { waker } => {
                            resolution = Some(Cause::Woken {
                                at: e.at,
                                waker,
                                block: pending.take(),
                            });
                        }
                        EventKind::Timeout { .. } => {
                            resolution = Some(Cause::TimedOut {
                                at: e.at,
                                block: pending.take(),
                            });
                        }
                        EventKind::Preempt => resolution = Some(Cause::Preempted { at: e.at }),
                        EventKind::FirstDispatch => resolution = Some(Cause::First),
                        EventKind::Join { target } => {
                            if let Some(open) = last_span {
                                joins_in_span.entry(open).or_insert((e.at, target));
                            }
                        }
                        _ => {}
                    }
                    ei += 1;
                } else if let Some(&idx) = spans.get(si) {
                    causes[idx] = resolution.take();
                    last_span = Some(idx);
                    si += 1;
                } else {
                    break;
                }
            }
        }
        Analyzer {
            trace,
            by_thread,
            causes,
            joins_in_span,
            spawn_info,
            windows: Vec::new(),
            segs: Vec::new(),
            hint: None,
        }
    }

    /// Latest span of `thread` with `start <= t` (position in the thread's
    /// sorted list, plus the span index).
    fn find_span(&self, thread: u32, t: VirtTime) -> Option<(usize, usize)> {
        let list = self.by_thread.get(&thread)?;
        let pos = list.partition_point(|&i| self.trace.spans[i].start <= t);
        pos.checked_sub(1).map(|p| (p, list[p]))
    }

    /// Whether the walk can continue inside `thread` at time `t`.
    fn walkable(&self, thread: u32, t: VirtTime) -> bool {
        self.find_span(thread, t).is_some()
    }

    /// Thread exit time: lifecycle record, else its latest span end.
    fn exit_of(&self, thread: u32) -> Option<VirtTime> {
        if let Some(lc) = self.trace.threads.get(thread as usize) {
            if let Some(e) = lc.exited {
                return Some(e);
            }
        }
        self.by_thread
            .get(&thread)
            .and_then(|l| l.last())
            .map(|&i| self.trace.spans[i].end)
    }

    fn push(&mut self, thread: Option<u32>, start: VirtTime, end: VirtTime, bucket: BlameBucket) {
        debug_assert!(start <= end);
        if start < end {
            self.segs.push(Segment {
                thread,
                start,
                end,
                bucket,
            });
        }
    }

    /// Attributes span coverage `[a, hi]`, splitting at lock-window floors:
    /// inside an active window the time is recolored to the window's
    /// object, otherwise it is compute.
    fn emit_coverage(&mut self, thread: u32, a: VirtTime, mut hi: VirtTime) {
        while hi > a {
            self.windows.retain(|w| w.floor < hi);
            match self.windows.last() {
                None => {
                    self.push(Some(thread), a, hi, BlameBucket::Compute);
                    hi = a;
                }
                Some(w) => {
                    let bucket = BlameBucket::LockWait {
                        reason: w.reason,
                        obj: w.obj,
                    };
                    let lo = a.max(w.floor);
                    self.push(Some(thread), lo, hi, bucket);
                    hi = lo;
                }
            }
        }
    }

    fn wait_bucket(reason: BlockReason, obj: Option<u32>) -> BlameBucket {
        if reason == BlockReason::Join {
            BlameBucket::JoinWait
        } else {
            BlameBucket::LockWait { reason, obj }
        }
    }

    fn run(mut self, makespan: VirtTime) -> CritPath {
        let last = self
            .trace
            .spans
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.end, s.start, *i));
        let Some((_, last_span)) = last else {
            // Degenerate trace: no spans at all. Still produce a total
            // tiling (one residual segment) instead of panicking.
            let mut cp = CritPath {
                empty: true,
                makespan,
                ..CritPath::default()
            };
            if makespan > VirtTime::ZERO {
                cp.segments.push(Segment {
                    thread: None,
                    start: VirtTime::ZERO,
                    end: makespan,
                    bucket: BlameBucket::Residual,
                });
            }
            return finalize(cp);
        };
        let makespan = makespan.max(last_span.end);
        let mut cur = last_span.thread;
        let mut t = makespan;
        if makespan > last_span.end {
            // Engine tail: scheduler/teardown charges past the last span.
            self.push(None, last_span.end, makespan, BlameBucket::Residual);
            t = last_span.end;
        }
        let cap = 4 * (self.trace.spans.len() + self.trace.events.len()) + 64;
        let mut iters = 0usize;
        while t > VirtTime::ZERO {
            iters += 1;
            if iters > cap {
                // Pathological trace (e.g. a zero-cost wake cycle): dump the
                // untiled prefix so the sum invariant still holds.
                self.push(Some(cur), VirtTime::ZERO, t, BlameBucket::Residual);
                break;
            }
            let (cur0, t0) = (cur, t);
            let looked_up = match self.hint.take() {
                Some((th, p)) if th == cur => {
                    let list = &self.by_thread[&cur];
                    Some((p, list[p]))
                }
                _ => self.find_span(cur, t),
            };
            let Some((pos, si)) = looked_up else {
                self.push(Some(cur), VirtTime::ZERO, t, BlameBucket::Residual);
                break;
            };
            let s = self.trace.spans[si];
            if s.end < t {
                // The walk hopped here at a time the thread was not running
                // (cross-processor wake-clamp skew, chaos jitter).
                self.push(Some(cur), s.end, t, BlameBucket::Residual);
                t = s.end;
                continue;
            }
            self.emit_coverage(cur, s.start, t);
            t = s.start;
            match self.causes[si] {
                Some(Cause::Woken { at, waker, block }) => {
                    let w = at.min(t);
                    let ready = match block {
                        Some((_, BlockReason::Join, _)) => BlameBucket::JoinWait,
                        _ => BlameBucket::ReadyWait,
                    };
                    self.push(Some(cur), w, t, ready);
                    t = w;
                    match block {
                        Some((b_at, reason, obj)) => {
                            let b = b_at.min(w);
                            // Hop only into a waker that was still around at
                            // the wake instant. A join of an already-exited
                            // child emits a wake clamped to the *block* time,
                            // after the child's last span — following it
                            // would land in a hole; the critical predecessor
                            // is this thread's own earlier activity.
                            let hop = waker.is_some_and(|wk| {
                                self.walkable(wk, w)
                                    && self.exit_of(wk).is_some_and(|x| x >= w)
                            });
                            if hop {
                                if reason != BlockReason::Join {
                                    self.windows.push(Window {
                                        reason,
                                        obj,
                                        floor: b,
                                    });
                                }
                                cur = waker.expect("checked");
                            } else {
                                self.push(Some(cur), b, w, Self::wait_bucket(reason, obj));
                                t = b;
                            }
                        }
                        None => {
                            if let Some(wk) = waker {
                                if self.walkable(wk, w)
                                    && self.exit_of(wk).is_some_and(|x| x >= w)
                                {
                                    cur = wk;
                                }
                            }
                        }
                    }
                }
                Some(Cause::TimedOut { at, block }) => {
                    let to = at.min(t);
                    self.push(Some(cur), to, t, BlameBucket::ReadyWait);
                    t = to;
                    if let Some((b_at, reason, obj)) = block {
                        let b = b_at.min(to);
                        self.push(Some(cur), b, to, Self::wait_bucket(reason, obj));
                        t = b;
                    }
                }
                Some(Cause::Preempted { at }) => {
                    let pe = at.min(t);
                    self.push(Some(cur), pe, t, BlameBucket::Preempt);
                    t = pe;
                    // The preempt time lies inside the previous span; force
                    // the descent there in case the boundary is zero-width.
                    if pos > 0 {
                        self.hint = Some((cur, pos - 1));
                    }
                }
                Some(Cause::First) => {
                    let (sp_at, parent) = self
                        .spawn_info
                        .get(&cur)
                        .copied()
                        .unwrap_or((VirtTime::ZERO, None));
                    let sp = sp_at.min(t);
                    self.push(Some(cur), sp, t, BlameBucket::ReadyWait);
                    t = sp;
                    match parent {
                        Some(par) if self.walkable(par, sp) => cur = par,
                        Some(_) => {}
                        None => {
                            // The root: everything before its spawn record
                            // is runtime startup, charged as ready-wait
                            // (spawn → first-dispatch latency).
                            self.push(Some(cur), VirtTime::ZERO, sp, BlameBucket::ReadyWait);
                            t = VirtTime::ZERO;
                        }
                    }
                }
                None => {
                    let prev_end = pos.checked_sub(1).map(|p| {
                        let list = &self.by_thread[&cur];
                        self.trace.spans[list[p]].end
                    });
                    // A join completed inside this span with no wake event:
                    // the thread slept (`JoinWake`) until the target's exit.
                    // Hop through the join edge so the target's compute is
                    // on the path. The hop is only sound when the thread was
                    // actually off-processor before the join instant `e` —
                    // but zero-length dispatch slivers at `e` itself (the
                    // JoinWake republications, common under a zero-cost
                    // model) don't refute that gap, so skip them when
                    // locating the real predecessor end.
                    let join_hop = self.joins_in_span.get(&si).copied().and_then(|(_, tgt)| {
                        let e = self.exit_of(tgt)?.min(t);
                        let list = &self.by_thread[&cur];
                        let mut gap_end = None;
                        for q in (0..pos).rev() {
                            let ps = self.trace.spans[list[q]];
                            if ps.start == ps.end && ps.end >= e {
                                continue;
                            }
                            gap_end = Some(ps.end);
                            break;
                        }
                        let gap_ok = gap_end.is_none_or(|pe| pe < e);
                        (gap_ok && self.walkable(tgt, e)).then_some((tgt, e))
                    });
                    if let Some((tgt, e)) = join_hop {
                        self.push(Some(cur), e, t, BlameBucket::JoinWait);
                        t = e;
                        cur = tgt;
                    } else if let Some(pe) = prev_end {
                        let pe = pe.min(t);
                        self.push(Some(cur), pe, t, BlameBucket::ReadyWait);
                        t = pe;
                        self.hint = Some((cur, pos - 1));
                    } else {
                        self.push(Some(cur), VirtTime::ZERO, t, BlameBucket::Residual);
                        break;
                    }
                }
            }
            if (cur, t) == (cur0, t0) && self.hint.is_none() {
                // No progress this iteration (all-zero-length causes with no
                // hop). Force the descent to the previous span, or give up
                // into residual.
                let list = &self.by_thread[&cur];
                match pos.checked_sub(1).map(|p| self.trace.spans[list[p]].end) {
                    Some(pe) => {
                        let pe = pe.min(t);
                        self.push(Some(cur), pe, t, BlameBucket::ReadyWait);
                        t = pe;
                        self.hint = Some((cur, pos - 1));
                    }
                    None => {
                        self.push(Some(cur), VirtTime::ZERO, t, BlameBucket::Residual);
                        break;
                    }
                }
            }
        }
        self.segs.reverse();
        finalize(CritPath {
            empty: false,
            makespan,
            segments: std::mem::take(&mut self.segs),
            ..CritPath::default()
        })
    }
}

/// Fills the aggregate views (bucket totals, per-object and per-thread
/// tables) from the segment tiling.
fn finalize(mut cp: CritPath) -> CritPath {
    let mut objects: HashMap<(BlockReason, Option<u32>), ObjectBlame> = HashMap::new();
    let mut threads: HashMap<u32, ThreadBlame> = HashMap::new();
    for seg in &cp.segments {
        let d = seg.dur();
        match seg.bucket {
            BlameBucket::Compute => cp.blame.compute += d,
            BlameBucket::ReadyWait => cp.blame.ready_wait += d,
            BlameBucket::LockWait { reason, obj } => {
                cp.blame.lock_wait += d;
                let e = objects.entry((reason, obj)).or_insert(ObjectBlame {
                    reason,
                    obj,
                    wait: VirtTime::ZERO,
                    segments: 0,
                });
                e.wait += d;
                e.segments += 1;
            }
            BlameBucket::JoinWait => cp.blame.join_wait += d,
            BlameBucket::Preempt => cp.blame.preempt += d,
            BlameBucket::Residual => cp.blame.residual += d,
        }
        if let Some(th) = seg.thread {
            let e = threads.entry(th).or_insert(ThreadBlame {
                thread: th,
                on_path: VirtTime::ZERO,
                compute: VirtTime::ZERO,
                segments: 0,
            });
            e.on_path += d;
            e.segments += 1;
            if seg.bucket == BlameBucket::Compute {
                e.compute += d;
            }
        }
    }
    cp.objects = objects.into_values().collect();
    cp.objects.sort_by(|a, b| {
        b.wait
            .cmp(&a.wait)
            .then(a.reason.name().cmp(b.reason.name()))
            .then(a.obj.cmp(&b.obj))
    });
    cp.threads = threads.into_values().collect();
    cp.threads
        .sort_by(|a, b| b.on_path.cmp(&a.on_path).then(a.thread.cmp(&b.thread)));
    debug_assert_eq!(cp.blame.sum(), cp.makespan, "blame must tile the makespan");
    cp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run, scope, Config, SchedKind};

    fn all_policies() -> [SchedKind; 5] {
        [
            SchedKind::Fifo,
            SchedKind::Lifo,
            SchedKind::Df,
            SchedKind::DfDeques,
            SchedKind::Ws,
        ]
    }

    fn forkjoin_trace(kind: SchedKind, perturb: Option<u64>) -> (Trace, VirtTime) {
        let mut cfg = Config::new(4, kind).with_trace();
        if let Some(seed) = perturb {
            cfg = cfg.with_perturbation(seed);
        }
        let (_, report) = run(cfg, || {
            scope(|s| {
                for i in 0..12 {
                    s.spawn(move || {
                        crate::work(3_000 * (i % 4 + 1));
                        if i % 3 == 0 {
                            let h = crate::spawn(move || crate::work(2_000));
                            h.join();
                        }
                    });
                }
            })
        });
        (report.trace.unwrap(), report.stats.makespan)
    }

    #[test]
    fn blame_tiles_the_makespan_under_all_policies() {
        for kind in all_policies() {
            let (trace, makespan) = forkjoin_trace(kind, None);
            let cp = analyze_with_makespan(&trace, makespan);
            assert!(!cp.empty);
            assert_eq!(
                cp.blame.sum(),
                makespan,
                "{kind:?}: buckets must sum bit-exactly to the makespan"
            );
            assert_eq!(cp.makespan, makespan);
            // The tiling is contiguous and ordered.
            let mut prev = VirtTime::ZERO;
            for seg in &cp.segments {
                assert_eq!(seg.start, prev, "{kind:?}: tiling gap at {}", seg.start);
                assert!(seg.end >= seg.start);
                prev = seg.end;
            }
            assert_eq!(prev, makespan);
            assert!(cp.blame.compute > VirtTime::ZERO, "{kind:?}: path has compute");
            // Residual should be a sliver, not the bulk of the path.
            assert!(
                cp.blame.residual.as_ns() * 4 < makespan.as_ns(),
                "{kind:?}: residual {} of makespan {}",
                cp.blame.residual,
                makespan
            );
        }
    }

    #[test]
    fn blame_tiles_under_a_perturbed_schedule() {
        // Pin: perturbation shuffles the schedule but can never break the
        // tiling invariant.
        for seed in [0xBEEF, 0x1234] {
            let (trace, makespan) = forkjoin_trace(SchedKind::Df, Some(seed));
            let cp = analyze_with_makespan(&trace, makespan);
            assert_eq!(cp.blame.sum(), makespan, "seed {seed:#x}");
        }
    }

    #[test]
    fn contention_is_blamed_on_the_lock() {
        let cfg = Config::new(4, SchedKind::Fifo).with_trace();
        let (_, report) = run(cfg, || {
            let m = crate::Mutex::new(0u64);
            scope(|s| {
                for _ in 0..4 {
                    let m = m.clone();
                    s.spawn(move || {
                        // Each worker runs far longer than the virtual
                        // spawn stagger, so the lock really is contended.
                        for _ in 0..16 {
                            let mut g = m.lock();
                            crate::work(20_000);
                            *g += 1;
                        }
                    });
                }
            });
        });
        let trace = report.trace.unwrap();
        let cp = analyze_with_makespan(&trace, report.stats.makespan);
        assert_eq!(cp.blame.sum(), report.stats.makespan);
        assert!(
            cp.blame.lock_wait > VirtTime::ZERO,
            "serialized mutex must put lock wait on the path: {:?}",
            cp.blame
        );
        let top = cp.objects.first().expect("a blamed object");
        assert_eq!(top.reason, BlockReason::Mutex);
        // Whole-trace per-object waits see the same contention.
        let waits = object_waits(&trace);
        assert!(!waits.is_empty());
        assert_eq!(waits[0].reason, BlockReason::Mutex);
        assert!(waits[0].total > VirtTime::ZERO);
    }

    #[test]
    fn empty_trace_yields_a_structured_empty_result() {
        let empty = Trace::default();
        let cp = analyze(&empty);
        assert!(cp.empty);
        assert_eq!(cp.makespan, VirtTime::ZERO);
        assert!(cp.segments.is_empty());
        assert_eq!(cp.blame.sum(), VirtTime::ZERO);
        // With a known nonzero makespan the tiling is one residual segment.
        let cp = analyze_with_makespan(&empty, VirtTime::from_us(5));
        assert!(cp.empty);
        assert_eq!(cp.blame.sum(), VirtTime::from_us(5));
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.segments[0].bucket, BlameBucket::Residual);
        // And the degenerate lifecycle summary stays graceful too.
        let lc = empty.lifecycle();
        assert_eq!(lc.threads, 0);
        assert_eq!(lc.dispatch_latency.count, 0);
    }

    #[test]
    fn causal_edges_cover_the_taxonomy() {
        use crate::trace::Event;
        let ev = |thread: Option<u32>, kind| Event {
            at: VirtTime::ZERO,
            proc: 0,
            thread,
            kind,
        };
        assert_eq!(
            causal_edge(&ev(Some(2), EventKind::Spawn { parent: Some(1) })),
            Some(CausalEdge::Spawn {
                parent: 1,
                child: 2
            })
        );
        assert_eq!(
            causal_edge(&ev(Some(3), EventKind::Wake { waker: Some(1) })),
            Some(CausalEdge::Wake {
                waker: Some(1),
                woken: 3
            })
        );
        assert_eq!(
            causal_edge(&ev(Some(3), EventKind::Timeout { obj: None })),
            Some(CausalEdge::Timeout { woken: 3 })
        );
        assert_eq!(
            causal_edge(&ev(Some(1), EventKind::Join { target: 2 })),
            Some(CausalEdge::Join {
                target: 2,
                joiner: 1
            })
        );
        assert_eq!(
            causal_edge(&ev(
                Some(1),
                EventKind::Block {
                    reason: BlockReason::Mutex,
                    obj: Some(7)
                }
            )),
            Some(CausalEdge::BlockPublish { thread: 1, obj: 7 })
        );
        assert_eq!(
            causal_edge(&ev(
                Some(1),
                EventKind::Notify {
                    reason: BlockReason::Condvar,
                    obj: 7,
                    waiters: 1,
                    woken: 1
                }
            )),
            Some(CausalEdge::NotifyExchange { thread: 1, obj: 7 })
        );
        // No subject, or no ordering content: no edge.
        assert_eq!(causal_edge(&ev(None, EventKind::Alloc { bytes: 1 })), None);
        assert_eq!(causal_edge(&ev(Some(1), EventKind::Preempt)), None);
        assert_eq!(
            causal_edge(&ev(Some(1), EventKind::Spawn { parent: None })),
            None
        );
    }
}
