//! Run reports.

use ptdf_smp::{RunStats, VirtTime};

use crate::config::{Config, SchedKind};

/// Summary of one virtual-SMP run: configuration echo plus the machine's
/// collected statistics. Everything the paper's figures plot is here.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Report {
    /// Scheduler name ("fifo", "lifo", "df", "ws").
    pub scheduler: String,
    /// Virtual processor count.
    pub processors: usize,
    /// Default accounted stack size in bytes.
    pub default_stack: u64,
    /// DF memory quota, if the DF policy ran.
    pub quota: Option<u64>,
    /// Total threads created over the run.
    pub total_threads: usize,
    /// Successful work-migration steals (Ws and DfDeques policies; 0 for
    /// the serialized schedulers, which never migrate queued work).
    pub steals: u64,
    /// Machine statistics (makespan, breakdowns, memory).
    pub stats: RunStats,
    /// Execution trace, when enabled via [`Config::with_trace`].
    #[serde(skip_serializing_if = "Option::is_none")]
    pub trace: Option<crate::trace::Trace>,
    /// Allocation-ledger leak report, when the run was configured with
    /// [`Config::with_ledger`] (or failure injection, which implies it).
    #[serde(skip_serializing_if = "Option::is_none")]
    pub leaks: Option<crate::mem::LeakReport>,
    /// Waits-for cycles detected by the deadlock sentinel, in detection
    /// order. Each is also a `Deadlock` flight-recorder event (when tracing)
    /// and an unwound [`crate::DeadlockError`] in the detecting thread.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub deadlocks: Vec<crate::sentinel::DeadlockInfo>,
    /// The virtual-time watchdog's verdict, when the run stalled (all
    /// processors idle with live threads). Only [`crate::try_run`] can
    /// return a report with this set — [`crate::run`] panics on a stall.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub stalled: Option<crate::sentinel::StallInfo>,
}

impl Report {
    pub(crate) fn new(
        config: &Config,
        stats: RunStats,
        total_threads: usize,
        steals: u64,
        trace: Option<crate::trace::Trace>,
        leaks: Option<crate::mem::LeakReport>,
        deadlocks: Vec<crate::sentinel::DeadlockInfo>,
    ) -> Self {
        Report {
            scheduler: config.scheduler.name().to_string(),
            processors: config.processors,
            default_stack: config.default_stack,
            quota: (config.scheduler == SchedKind::Df).then_some(config.quota),
            total_threads,
            steals,
            stats,
            trace,
            leaks,
            deadlocks,
            stalled: None,
        }
    }

    /// Virtual wall-clock of the run.
    pub fn makespan(&self) -> VirtTime {
        self.stats.makespan
    }

    /// High-water committed memory footprint in bytes (the paper's space
    /// metric).
    pub fn footprint(&self) -> u64 {
        self.stats.mem.footprint_hwm
    }

    /// Same, in megabytes.
    pub fn footprint_mb(&self) -> f64 {
        self.footprint() as f64 / (1024.0 * 1024.0)
    }

    /// Peak simultaneously-live threads (the "Threads" column of Figure 8).
    pub fn max_live_threads(&self) -> u64 {
        self.stats.mem.live_threads_hwm
    }

    /// Speedup of this run against a serial makespan.
    pub fn speedup_vs(&self, serial: VirtTime) -> f64 {
        self.stats.speedup_vs(serial)
    }

    /// Per-thread lifecycle summary (dispatch-latency and ready-wait
    /// percentiles, quantum counts) derived from the flight recorder;
    /// `None` unless the run traced ([`Config::with_trace`]).
    pub fn lifecycle(&self) -> Option<crate::trace::LifecycleSummary> {
        self.trace.as_ref().map(|t| t.lifecycle())
    }

    /// Blame-attributed observed critical path of the run, walked backwards
    /// through the trace's causal edges; `None` unless the run traced
    /// ([`Config::with_trace`]). The returned buckets sum bit-exactly to
    /// [`Report::makespan`]. Degenerate traces (no spans) yield a
    /// structured empty result, never a panic.
    pub fn critpath(&self) -> Option<crate::critpath::CritPath> {
        self.trace
            .as_ref()
            .map(|t| crate::critpath::analyze_with_makespan(t, self.stats.makespan))
    }

    /// Host-side engine phase profile; `enabled` is false (all counters
    /// zero) unless the run was configured with
    /// [`Config::with_host_profile`].
    pub fn host_phase(&self) -> &ptdf_smp::HostPhaseStats {
        &self.stats.host_phase
    }

    /// Host fiber-stack pool hit rate in `[0, 1]` (`1.0` when the run
    /// spawned nothing). Hits are spawns served a recycled real stack.
    pub fn stack_pool_hit_rate(&self) -> f64 {
        let total = self.stats.mem.host_stack_hits + self.stats.mem.host_stack_misses;
        if total == 0 {
            1.0
        } else {
            self.stats.mem.host_stack_hits as f64 / total as f64
        }
    }

    /// Footprint growths observed above the armed space bound
    /// ([`Config::with_space_bound`]); `0` when unarmed or within bound.
    pub fn bound_violations(&self) -> u64 {
        self.stats.mem.bound_violations
    }

    /// Waits-for cycles detected by the deadlock sentinel (empty when the
    /// run was cycle-free).
    pub fn deadlocks(&self) -> &[crate::sentinel::DeadlockInfo] {
        &self.deadlocks
    }

    /// The watchdog's stall verdict, if the run halted without completing
    /// (see [`crate::try_run`]).
    pub fn stalled(&self) -> Option<&crate::sentinel::StallInfo> {
        self.stalled.as_ref()
    }
}
