//! Minimal JSON document model: a `serde_json`-style value tree with a
//! spec-correct serializer (full string escaping, non-finite floats become
//! `null`) and a strict recursive-descent parser.
//!
//! The build environment has no crates.io access, so this stands in for
//! `serde_json` where the trace subsystem needs *real* JSON — the earlier
//! hand-`format!`ed exporter produced invalid documents for non-finite
//! durations and did no string escaping. Object member order is preserved
//! (members are a `Vec`, not a map), which is what makes the Chrome-trace
//! round trip (`Trace::to_chrome_json` / `Trace::from_chrome_json`)
//! byte-stable.

use std::fmt::Write as _;

/// A JSON value.
///
/// Numbers keep their lexical class: integers parse to [`Value::UInt`] /
/// [`Value::Int`] (so `u64` virtual-time nanoseconds survive bit-exactly),
/// everything else to [`Value::Float`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A non-integral (or out-of-range) number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; member order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `f64` (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => {
                // JSON has no NaN/Infinity; serialize them as null rather
                // than emitting an invalid document.
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                    // `Display` prints integral floats without a point;
                    // keep the float class for the round trip.
                    if !out.ends_with(['.', 'e'])
                        && !out[out.rfind(|c: char| !c.is_ascii_digit() && c != '-').map_or(0, |i| i)..]
                            .contains(['.', 'e', 'E'])
                    {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing whitespace is allowed; trailing
    /// garbage is an error.
    pub fn parse(input: &str) -> Result<Value, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal with full escaping.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            b as char,
            pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected ',' or ']' at byte {pos}, found {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    other => return Err(format!("expected ',' or '}}' at byte {pos}, found {other:?}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let mut code =
                            u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        *pos += 4;
                        // Surrogate pair?
                        if (0xD800..0xDC00).contains(&code)
                            && bytes.get(*pos + 1..*pos + 3) == Some(b"\\u")
                        {
                            if let Some(hex2) = bytes.get(*pos + 3..*pos + 7) {
                                let hex2 = std::str::from_utf8(hex2).map_err(|e| e.to_string())?;
                                if let Ok(low) = u32::from_str_radix(hex2, 16) {
                                    if (0xDC00..0xE000).contains(&low) {
                                        code = 0x10000
                                            + ((code - 0xD800) << 10)
                                            + (low - 0xDC00);
                                        *pos += 6;
                                    }
                                }
                            }
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are sound; find the char at this byte offset).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("invalid number at byte {start}"));
    }
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::Int(v));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|e| format!("invalid number {text:?}: {e}"))
}

/// Builds an object value from `(key, value)` pairs (order preserved).
pub fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_hostile_strings() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab\rand\u{8}bs",
            "control \u{1} char",
            "unicode: héllo ✓ 数",
        ] {
            let json = Value::Str(s.to_string()).to_json();
            assert_eq!(Value::parse(&json).unwrap(), Value::Str(s.to_string()), "{json}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Value::Float(f64::NAN).to_json(), "null");
        assert_eq!(Value::Float(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::Float(f64::NEG_INFINITY).to_json(), "null");
        assert_eq!(Value::Float(1.5).to_json(), "1.5");
    }

    #[test]
    fn integers_survive_bit_exactly() {
        let v = Value::UInt(u64::MAX);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
        let v = Value::Int(-42);
        assert_eq!(Value::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn nested_document_round_trips() {
        let doc = obj(vec![
            ("a", Value::Arr(vec![Value::UInt(1), Value::Null, Value::Bool(true)])),
            ("b", obj(vec![("nested", Value::Str("x\"y".into()))])),
            ("c", Value::Float(0.125)),
        ]);
        let text = doc.to_json();
        assert_eq!(Value::parse(&text).unwrap(), doc);
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        assert!(Value::parse(" { \"k\" : [ 1 , 2 ] } ").is_ok());
        assert!(Value::parse("{} trailing").is_err());
        assert!(Value::parse("{\"k\":}").is_err());
        assert!(Value::parse("[1,]").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Value::parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::Str("😀".to_string())
        );
    }
}
