//! # ptdf — a space-efficient, Pthreads-style lightweight threads runtime
//!
//! Reproduction of the system of **"Pthreads for Dynamic and Irregular
//! Parallelism"** (Narlikar & Blelloch, SC 1998): a user-level threads
//! library in which programs *dynamically create a large number of
//! lightweight threads* — one per parallel task — and a pluggable scheduler
//! maps them onto processors. The paper's contribution is a **space-
//! efficient depth-first scheduler** (bounding memory at `S1 + O(p·D)`)
//! retrofitted into the Solaris Pthreads library; this crate implements that
//! scheduler alongside the original FIFO policy, a LIFO policy, and
//! Cilk-style work stealing, over a deterministic virtual-time SMP
//! ([`ptdf_smp`]) driven by real stackful fibers ([`ptdf_fiber`]).
//!
//! ## Quick start
//!
//! ```
//! use ptdf::{run, spawn, Config, SchedKind};
//!
//! let (sum, report) = run(Config::new(4, SchedKind::Df), || {
//!     let handles: Vec<_> = (0..16u64)
//!         .map(|i| spawn(move || {
//!             ptdf::work(10_000); // 10k cycles of modelled compute
//!             i * i
//!         }))
//!         .collect();
//!     handles.into_iter().map(|h| h.join()).sum::<u64>()
//! });
//! assert_eq!(sum, (0..16u64).map(|i| i * i).sum());
//! assert_eq!(report.processors, 4);
//! ```
//!
//! ## The API in paper terms
//!
//! | Paper / Pthreads | This crate |
//! |---|---|
//! | `pthread_create` | [`spawn`] / [`spawn_attr`] / [`Scope::spawn`] |
//! | `pthread_join` | [`JoinHandle::join`] |
//! | `pthread_attr_t` (stack size, priority) | [`Attr`] |
//! | `SCHED_OTHER` (FIFO) / modified scheduler | [`SchedKind`] |
//! | `pthread_mutex_t` | [`Mutex`] |
//! | `pthread_cond_t` | [`Condvar`] |
//! | `pthread_rwlock_t` | [`RwLock`] |
//! | `pthread_key_create` / TSD | [`TlsKey`] |
//! | `sem_t` | [`Semaphore`] |
//! | instrumented `malloc`/`free` | [`rt_alloc`] / [`rt_free`] / [`TrackedBuf`] |
//!
//! Benchmarks additionally report modelled compute with [`work`] and data
//! locality with [`touch`]; see DESIGN.md for the virtual-time methodology.

#![warn(missing_docs)]

mod api;
pub mod backoff;
#[cfg(feature = "bench-internals")]
pub mod bench_api;
pub mod check;
mod config;
pub mod critpath;
pub mod json;
mod mem;
mod report;
mod runtime;
mod rwlock;
mod sched;
mod sentinel;
mod serial;
mod sync;
mod thread;
mod tls;
pub mod trace;

pub use api::{
    current_thread, processors, scope, spawn, spawn_attr, touch, try_spawn, try_spawn_attr,
    work, yield_now, Scope, ScopedHandle, SpawnError,
};
pub use check::{check_trace, CheckReport, Violation};
pub use critpath::{
    analyze_with_makespan, causal_edge, object_waits, Blame, BlameBucket, CausalEdge, CritPath,
    ObjectBlame, ObjectWait, Segment, ThreadBlame,
};
pub use config::{Attr, Config, SchedKind, DEFAULT_QUOTA, STACK_1MB, STACK_8KB};
pub use mem::{
    rt_alloc, rt_free, try_rt_alloc, AllocError, LeakReport, ThreadLedger, TrackedBuf,
};
pub use report::Report;
pub use runtime::{run, try_run};
pub use sentinel::{
    DeadlockError, DeadlockInfo, RunError, StallInfo, StalledThread, TimedOut,
};
pub use serial::{run_serial, SerialReport};
pub use rwlock::{ReadGuard, RwLock, WriteGuard};
pub use sync::{Barrier, Condvar, Mutex, MutexGuard, Semaphore};
pub use thread::{JoinError, JoinHandle, ThreadId};
pub use tls::TlsKey;
pub use trace::{
    BlockReason, Counters, Event, EventKind, LatencyStats, LifecycleSummary, Span, SpanKind,
    ThreadLifecycle, Trace, TraceMeta,
};

// Re-export the quantities callers need to interpret reports.
pub use ptdf_smp::{CostModel, VirtTime};

#[cfg(test)]
mod tests {
    use super::*;
    use crate as ptdf;

    fn all_schedulers() -> Vec<SchedKind> {
        vec![
            SchedKind::Fifo,
            SchedKind::Lifo,
            SchedKind::Df,
            SchedKind::DfLocal,
            SchedKind::DfDeques,
            SchedKind::Ws,
        ]
    }

    #[test]
    fn spawn_join_returns_value_under_all_schedulers() {
        for kind in all_schedulers() {
            let (v, report) = run(Config::new(2, kind), || {
                let h = spawn(|| 41 + 1);
                h.join()
            });
            assert_eq!(v, 42, "{kind:?}");
            assert!(report.total_threads >= 2);
        }
    }

    #[test]
    fn host_profile_collects_phase_counters_when_enabled() {
        let workload = || {
            // A semaphore nobody posts: the timed acquire arms a deadline,
            // exercising the machine's event-heap phases.
            let sem = std::rc::Rc::new(Semaphore::new(0));
            let s = sem.clone();
            let waiter = spawn(move || {
                s.acquire_timeout(VirtTime::from_us(50)).unwrap_err();
            });
            let hs: Vec<_> = (0..8).map(|_| spawn(|| ptdf::work(5_000))).collect();
            for h in hs {
                h.join();
            }
            waiter.join();
        };
        let (_, on) = run(
            Config::new(2, SchedKind::Df)
                .with_trace()
                .with_host_profile(true),
            workload,
        );
        let hp = on.host_phase();
        assert!(hp.enabled);
        // The engine dispatched and popped at least once per thread, and
        // every trace record passed through the trace-alloc phase.
        assert!(hp.dispatch.count >= 9, "dispatch {:?}", hp.dispatch);
        assert!(hp.sched_pop.count > 0, "sched_pop {:?}", hp.sched_pop);
        assert!(hp.trace_alloc.count > 0);
        assert!(hp.heap_push.count > 0 && hp.heap_pop.count > 0);
        assert!(hp.total_ns() > 0);
        // The combined profile rides on the trace for standalone tools.
        let tr = on.trace.as_ref().expect("traced run");
        assert_eq!(tr.host_phase, Some(*hp));

        let (_, off) = run(Config::new(2, SchedKind::Df).with_trace(), workload);
        assert!(!off.host_phase().enabled);
        assert_eq!(off.host_phase().total_ns(), 0);
        assert_eq!(off.trace.as_ref().unwrap().host_phase, None);
    }

    #[test]
    fn fork_join_tree_computes_correctly() {
        fn tree_sum(depth: u32) -> u64 {
            if depth == 0 {
                ptdf::work(1000);
                return 1;
            }
            let l = spawn(move || tree_sum(depth - 1));
            let r = spawn(move || tree_sum(depth - 1));
            l.join() + r.join()
        }
        for kind in all_schedulers() {
            for p in [1, 3, 8] {
                let (v, _) = run(Config::new(p, kind), || tree_sum(6));
                assert_eq!(v, 64, "{kind:?} p={p}");
            }
        }
    }

    #[test]
    fn df_keeps_live_threads_near_depth_fifo_explodes() {
        // A binary fork tree of depth 10 (1023 internal + 1024 leaves).
        fn tree(depth: u32) {
            if depth == 0 {
                ptdf::work(100);
                return;
            }
            let l = spawn(move || tree(depth - 1));
            let r = spawn(move || tree(depth - 1));
            l.join();
            r.join();
        }
        let (_, fifo) = run(Config::new(1, SchedKind::Fifo), || tree(10));
        let (_, df) = run(Config::new(1, SchedKind::Df), || tree(10));
        // FIFO executes breadth-first: nearly all threads live at once.
        assert!(
            fifo.max_live_threads() > 1000,
            "fifo live hwm = {}",
            fifo.max_live_threads()
        );
        // DF executes depth-first: live threads bounded by ~2 per level.
        assert!(
            df.max_live_threads() <= 25,
            "df live hwm = {}",
            df.max_live_threads()
        );
    }

    #[test]
    fn lifo_live_threads_between_fifo_and_df() {
        fn tree(depth: u32) {
            if depth == 0 {
                return;
            }
            let l = spawn(move || tree(depth - 1));
            let r = spawn(move || tree(depth - 1));
            l.join();
            r.join();
        }
        let (_, fifo) = run(Config::new(1, SchedKind::Fifo), || tree(8));
        let (_, lifo) = run(Config::new(1, SchedKind::Lifo), || tree(8));
        let (_, df) = run(Config::new(1, SchedKind::Df), || tree(8));
        assert!(lifo.max_live_threads() < fifo.max_live_threads());
        assert!(df.max_live_threads() <= lifo.max_live_threads());
    }

    #[test]
    fn speedup_scales_with_processors() {
        let workload = || {
            ptdf::scope(|s| {
                for _ in 0..64 {
                    s.spawn(|| ptdf::work(1_000_000));
                }
            })
        };
        let (_, serial) = run_serial(CostModel::ultrasparc_167(), || {
            for _ in 0..64 {
                ptdf::work(1_000_000);
            }
        });
        let (_, r1) = run(Config::new(1, SchedKind::Df), workload);
        let (_, r8) = run(Config::new(8, SchedKind::Df), workload);
        let s1 = r1.speedup_vs(serial.time);
        let s8 = r8.speedup_vs(serial.time);
        assert!(s1 <= 1.05, "s1 = {s1}");
        assert!(s8 > 5.0, "s8 = {s8}");
        assert!(s8 > 3.0 * s1, "s1 = {s1}, s8 = {s8}");
    }

    #[test]
    fn mutex_provides_mutual_exclusion_and_blocking() {
        for kind in all_schedulers() {
            let (v, _) = run(Config::new(4, kind), || {
                let m = Mutex::new(0u64);
                ptdf::scope(|s| {
                    for _ in 0..20 {
                        let m = m.clone();
                        s.spawn(move || {
                            let mut g = m.lock();
                            let old = *g;
                            ptdf::work(5_000); // hold the lock across work
                            *g = old + 1;
                        });
                    }
                });
                let v = *m.lock();
                v
            });
            assert_eq!(v, 20, "{kind:?}");
        }
    }

    #[test]
    fn condvar_producer_consumer() {
        let (got, _) = run(Config::new(2, SchedKind::Df), || {
            let q = Mutex::new(Vec::<u32>::new());
            let cv = Condvar::new();
            let (q2, cv2) = (q.clone(), cv.clone());
            let producer = spawn(move || {
                for i in 0..10 {
                    ptdf::work(2_000);
                    q2.lock().push(i);
                    cv2.notify_one();
                }
            });
            let mut got = Vec::new();
            while got.len() < 10 {
                let mut g = q.lock();
                while g.is_empty() {
                    g = cv.wait(g);
                }
                got.append(&mut *g);
            }
            producer.join();
            got
        });
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn semaphore_ping_pong() {
        let (count, _) = run(Config::new(2, SchedKind::Df), || {
            let ping = Semaphore::new(1);
            let pong = Semaphore::new(0);
            let (ping2, pong2) = (ping.clone(), pong.clone());
            let t = spawn(move || {
                for _ in 0..50 {
                    ping2.acquire();
                    pong2.release();
                }
            });
            let mut count = 0;
            for _ in 0..50 {
                pong.acquire();
                count += 1;
                ping.release();
            }
            t.join();
            count
        });
        assert_eq!(count, 50);
    }

    #[test]
    fn barrier_phases() {
        let (v, _) = run(Config::new(4, SchedKind::Fifo), || {
            let n = 4;
            let barrier = Barrier::new(n);
            let phase_sum = Mutex::new(vec![0u32; 2]);
            ptdf::scope(|s| {
                for i in 0..n {
                    let barrier = barrier.clone();
                    let phase_sum = phase_sum.clone();
                    s.spawn(move || {
                        phase_sum.lock()[0] += i as u32;
                        barrier.wait();
                        // Phase 0 complete for everyone.
                        assert_eq!(phase_sum.lock()[0], 6);
                        phase_sum.lock()[1] += 1;
                        barrier.wait();
                    });
                }
            });
            let v = phase_sum.lock().clone();
            v
        });
        assert_eq!(v, vec![6, 4]);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let (sum, _) = run(Config::new(4, SchedKind::Df), || {
            let data: Vec<u64> = (0..1000).collect();
            let chunks: Vec<&[u64]> = data.chunks(100).collect();
            let mut partial = vec![0u64; chunks.len()];
            ptdf::scope(|s| {
                for (out, chunk) in partial.iter_mut().zip(&chunks) {
                    let chunk = *chunk;
                    s.spawn(move || {
                        *out = chunk.iter().sum();
                    });
                }
            });
            partial.iter().sum::<u64>()
        });
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn thread_panic_delivered_at_join() {
        let (caught, _) = run(Config::new(2, SchedKind::Df), || {
            let h = spawn(|| -> u32 { panic!("worker exploded") });
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| h.join()));
            r.is_err()
        });
        assert!(caught);
    }

    #[test]
    fn try_join_surfaces_child_panic_without_unwinding() {
        let (ok, _) = run(Config::new(2, SchedKind::Df), || {
            let h = spawn(|| -> u32 { panic!("worker exploded") });
            match h.try_join() {
                Err(JoinError::Panicked(p)) => {
                    p.downcast_ref::<&str>() == Some(&"worker exploded")
                }
                _ => false,
            }
        });
        assert!(ok);
    }

    #[test]
    fn injected_spawn_failures_degrade_gracefully() {
        let cfg = Config::new(2, SchedKind::Df).with_alloc_failures(4);
        let ((ok_spawns, failures), report) = run(cfg, || {
            let (mut ok, mut failed) = (0u64, 0u64);
            let mut handles = Vec::new();
            for i in 0..64u64 {
                match try_spawn(move || i) {
                    Ok(h) => {
                        ok += 1;
                        handles.push(h);
                    }
                    Err(e) => {
                        failed += 1;
                        assert!(e.stack_bytes > 0);
                    }
                }
            }
            for h in handles {
                h.join();
            }
            (ok, failed)
        });
        assert_eq!(ok_spawns + failures, 64);
        assert!(failures > 0, "rate 4 over 64 tries should inject");
        let leaks = report.leaks.expect("failure injection implies the ledger");
        assert_eq!(leaks.injected_failures, failures);
    }

    #[test]
    fn injected_alloc_failures_are_err_not_abort() {
        let cfg = Config::new(1, SchedKind::Df).with_alloc_failures(2);
        let (failed, report) = run(cfg, || {
            let mut failed = 0u64;
            for _ in 0..64 {
                match try_rt_alloc(1024) {
                    Ok(()) => rt_free(1024),
                    Err(e) => {
                        failed += 1;
                        assert_eq!(e.bytes, 1024);
                    }
                }
            }
            failed
        });
        assert!(failed > 0, "rate 2 over 64 tries should inject");
        let leaks = report.leaks.expect("ledger armed");
        assert_eq!(leaks.injected_failures, failed);
        // Denied requests were never charged: the run still balances.
        assert!(leaks.is_clean(), "{leaks:?}");
    }

    #[test]
    fn ledger_attributes_leaks_to_threads() {
        let cfg = Config::new(2, SchedKind::Df).with_ledger();
        let (_, report) = run(cfg, || {
            spawn(|| rt_alloc(4096)).join(); // never freed
            rt_alloc(512);
            rt_free(512);
        });
        let leaks = report.leaks.expect("ledger armed");
        assert_eq!(leaks.leaked_bytes, 4096);
        assert!(!leaks.is_clean());
        // Exactly one thread carries a net balance, with the right amount.
        assert_eq!(leaks.per_thread.len(), 1);
        assert_eq!(leaks.per_thread[0].allocated, 4096);
        assert_eq!(leaks.per_thread[0].freed, 0);
    }

    #[test]
    fn double_free_is_surfaced_not_saturated() {
        let cfg = Config::new(1, SchedKind::Df).with_ledger().with_trace();
        // Stacks keep their committed bytes live in the heap model, so the
        // over-free must exceed anything plausibly live to underflow.
        let over = 1u64 << 40;
        let (_, report) = run(cfg, move || {
            rt_alloc(1000);
            rt_free(1000);
            rt_free(over); // free of never-allocated memory
        });
        assert_eq!(report.stats.mem.free_underflows, 1);
        let leaks = report.leaks.expect("ledger armed");
        assert_eq!(leaks.free_underflows, 1);
        assert!(!leaks.is_clean());
        let check = check_trace(report.trace.as_ref().expect("traced"));
        assert!(
            check
                .violations
                .iter()
                .any(|v| matches!(v, Violation::FreeUnderflow { .. })),
            "checker must flag the double free: {:?}",
            check.violations
        );
    }

    #[test]
    fn stack_pool_recycles_across_spawn_waves() {
        let (_, report) = run(Config::new(2, SchedKind::Df), || {
            for _ in 0..32 {
                let hs: Vec<_> = (0..8).map(|i| spawn(move || i)).collect();
                for h in hs {
                    h.join();
                }
            }
        });
        if ptdf_fiber::HAS_REAL_STACKS {
            let rate = report.stack_pool_hit_rate();
            assert!(rate > 0.9, "hit rate {rate}");
            assert!(report.stats.mem.host_stack_cached_hwm > 0);
        }
    }

    #[test]
    fn space_bound_enforcer_counts_excursions() {
        // A breadth-first FIFO storm with 1 MB stacks blows far past a tiny
        // bound; the same run unarmed must report bit-identical footprint.
        let storm = || {
            let hs: Vec<_> = (0..64).map(|_| spawn(|| ())).collect();
            for h in hs {
                h.join();
            }
        };
        let base = Config::solaris_native(1);
        let (_, unarmed) = run(base.clone(), storm);
        let (_, armed) = run(base.with_space_bound(64 * 1024).with_trace(), storm);
        assert_eq!(
            armed.stats.mem.footprint_hwm, unarmed.stats.mem.footprint_hwm,
            "arming the bound must not change the accounting"
        );
        assert_eq!(unarmed.bound_violations(), 0);
        assert!(armed.bound_violations() > 0);
        let check = check_trace(armed.trace.as_ref().expect("traced"));
        let crossings = check
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::SpaceBound { .. }))
            .count();
        assert_eq!(crossings, 1, "exactly one crossing event marks the excursion");
    }

    #[test]
    fn df_quota_preempts_and_inserts_dummies() {
        let cfg = Config::new(2, SchedKind::Df).with_quota(1024);
        let (_, report) = run(cfg, || {
            // 10 KB > K=1 KB: must insert ⌈10240/1024⌉ = 10 dummies.
            rt_alloc(10 * 1024);
            rt_free(10 * 1024);
        });
        assert_eq!(report.stats.mem.dummy_threads, 10);
    }

    #[test]
    fn memory_accounting_tracks_footprint() {
        let (_, report) = run(Config::new(1, SchedKind::Df), || {
            let buf = TrackedBuf::<f64>::zeroed(1000);
            assert_eq!(buf.bytes(), 8000);
            drop(buf);
            let _buf2 = TrackedBuf::<f64>::zeroed(500); // reuses pool
        });
        assert!(report.stats.mem.footprint_hwm >= 8000);
        assert!(report.stats.mem.allocs >= 2);
    }

    #[test]
    fn serial_run_charges_but_spawn_is_inline() {
        let (v, report) = run_serial(CostModel::ultrasparc_167(), || {
            let h = spawn(|| {
                ptdf::work(1_000_000);
                7
            });
            h.join()
        });
        assert_eq!(v, 7);
        assert_eq!(report.time, VirtTime::from_ms(6)); // 1M cycles * 6ns, no thread cost
        assert_eq!(report.stats.mem.threads_created, 0);
    }

    #[test]
    fn detached_thread_still_runs_to_completion() {
        let (_, report) = run(Config::new(2, SchedKind::Fifo), || {
            let done = Mutex::new(false);
            let d2 = done.clone();
            spawn(move || {
                ptdf::work(10_000);
                *d2.lock() = true;
            })
            .detach();
            // Root returns immediately; the runtime drains the detached thread.
        });
        assert_eq!(report.total_threads, 2);
        assert_eq!(report.stats.mem.live_threads_hwm, 2);
    }

    #[test]
    fn priorities_order_execution() {
        let (order, _) = run(Config::new(1, SchedKind::Fifo), || {
            let order = Mutex::new(Vec::new());
            let mut handles = Vec::new();
            for (prio, tag) in [(0, "low"), (5, "high"), (2, "mid")] {
                let order = order.clone();
                handles.push(spawn_attr(Attr::default().priority(prio), move || {
                    order.lock().push(tag);
                }));
            }
            for h in handles {
                h.join();
            }
            let v = order.lock().clone();
            v
        });
        assert_eq!(order, vec!["high", "mid", "low"]);
    }

    #[test]
    fn determinism_identical_reports() {
        let go = || {
            run(Config::new(4, SchedKind::Ws), || {
                ptdf::scope(|s| {
                    for i in 0..32 {
                        s.spawn(move || ptdf::work(1000 * (i % 7 + 1)));
                    }
                })
            })
        };
        let (_, a) = go();
        let (_, b) = go();
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.stats.mem.live_threads_hwm, b.stats.mem.live_threads_hwm);
    }

    #[test]
    fn stack_size_attr_affects_footprint() {
        let spawn_churn = |stack: u64| {
            let cfg = Config::new(1, SchedKind::Fifo).with_stack(stack);
            let (_, r) = run(cfg, || {
                // Forked breadth-first: all live at once.
                let hs: Vec<_> = (0..100).map(|_| spawn(|| ())).collect();
                for h in hs {
                    h.join();
                }
            });
            r.footprint()
        };
        let small = spawn_churn(STACK_8KB);
        let big = spawn_churn(STACK_1MB);
        assert!(
            big > small,
            "1MB default stacks must commit more: {big} vs {small}"
        );
    }

    #[test]
    fn root_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            run(Config::new(1, SchedKind::Df), || {
                panic!("root exploded");
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn yield_now_round_robins() {
        let (v, _) = run(Config::new(1, SchedKind::Fifo), || {
            let log = Mutex::new(Vec::new());
            let (l1, l2) = (log.clone(), log.clone());
            let a = spawn(move || {
                for i in 0..3 {
                    l1.lock().push(format!("a{i}"));
                    yield_now();
                }
            });
            let b = spawn(move || {
                for i in 0..3 {
                    l2.lock().push(format!("b{i}"));
                    yield_now();
                }
            });
            a.join();
            b.join();
            let v = log.lock().clone();
            v
        });
        assert_eq!(v, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }
}
