//! Serial baseline runner.
//!
//! The paper reports speedups "with respect to the serial C version written
//! with function calls instead of forks". [`run_serial`] provides that
//! baseline: the closure runs inline on one virtual processor, with the
//! same `work`/`touch`/allocation accounting but **zero** thread-operation
//! costs (inside it, `spawn` executes its closure as a plain call).

use std::cell::RefCell;
use std::rc::Rc;

use ptdf_smp::{CostModel, Machine, RunStats, VirtTime};

use crate::config::STACK_8KB;
use crate::runtime::install_serial;

/// Context for a serial run (one processor, no threads).
pub(crate) struct SerialCtx {
    pub machine: Machine,
}

/// Result of a serial baseline run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SerialReport {
    /// Virtual execution time of the serial run.
    pub time: VirtTime,
    /// Full machine statistics (memory figures give the serial space `S1`).
    pub stats: RunStats,
}

impl SerialReport {
    /// Serial space requirement `S1`: the high-water committed footprint.
    pub fn s1_bytes(&self) -> u64 {
        self.stats.mem.footprint_hwm
    }
}

/// Runs `f` serially under the cost model, returning its value and the
/// serial report (time `T1`, space `S1`).
pub fn run_serial<T>(cost: CostModel, f: impl FnOnce() -> T) -> (T, SerialReport) {
    let ctx = Rc::new(RefCell::new(SerialCtx {
        machine: Machine::new(1, cost.clone(), STACK_8KB),
    }));
    let guard = install_serial(ctx.clone());
    let value = f();
    drop(guard);
    let ctx = Rc::try_unwrap(ctx)
        .ok()
        .expect("serial context leaked")
        .into_inner();
    let stats = ctx.machine.finish();
    (
        value,
        SerialReport {
            time: stats.makespan,
            stats,
        },
    )
}
