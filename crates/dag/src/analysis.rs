//! Static analyses of a [`Program`]: validation, serial space `S1`,
//! critical path `D`, total work `W`, and the thread-depth `d` of the
//! paper's Figure 1 footnote.

use crate::program::{Action, Program};

/// Validation error for a malformed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A thread other than the root is never forked, or forked twice.
    BadForkCount(usize, usize),
    /// The root (thread 0) is forked by someone.
    RootForked,
    /// `Join(i)` without a preceding `Fork(i)` in the same thread.
    JoinBeforeFork(usize),
    /// `Join(i)` in a thread that did not fork `i`.
    ForeignJoin(usize),
    /// Fork edges contain a cycle (a thread is its own ancestor).
    Cycle(usize),
    /// A `Free` without matching outstanding allocation in that thread.
    UnmatchedFree(usize),
    /// Fork target out of range.
    ForkOutOfRange(usize),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ProgramError {}

/// Checks the structural invariants described on [`Program`].
pub fn validate(p: &Program) -> Result<(), ProgramError> {
    let n = p.threads.len();
    let mut fork_count = vec![0usize; n];
    for (i, t) in p.threads.iter().enumerate() {
        let mut forked_here: Vec<usize> = Vec::new();
        let mut alloc_balance: i64 = 0;
        for a in &t.actions {
            match *a {
                Action::Fork(c) => {
                    if c >= n {
                        return Err(ProgramError::ForkOutOfRange(c));
                    }
                    if c == 0 {
                        return Err(ProgramError::RootForked);
                    }
                    fork_count[c] += 1;
                    forked_here.push(c);
                }
                Action::Join(c) => {
                    if !forked_here.contains(&c) {
                        return Err(if fork_count.get(c).copied().unwrap_or(0) > 0 {
                            ProgramError::ForeignJoin(i)
                        } else {
                            ProgramError::JoinBeforeFork(i)
                        });
                    }
                }
                Action::Alloc(b) => alloc_balance += b as i64,
                Action::Free(b) => {
                    alloc_balance -= b as i64;
                    if alloc_balance < 0 {
                        return Err(ProgramError::UnmatchedFree(i));
                    }
                }
                Action::Work(_) => {}
            }
        }
    }
    for (c, &k) in fork_count.iter().enumerate().skip(1) {
        if k != 1 {
            return Err(ProgramError::BadForkCount(c, k));
        }
    }
    // Tree-ness: walk up parents; depth bounded by n.
    let parents = p.parents();
    #[allow(clippy::needless_range_loop)]
    for mut cur in 0..n {
        let mut steps = 0;
        while let Some(par) = parents[cur] {
            cur = par;
            steps += 1;
            if steps > n {
                return Err(ProgramError::Cycle(cur));
            }
        }
    }
    Ok(())
}

/// Total work `W`: the sum of all `Work` units.
pub fn total_work(p: &Program) -> u64 {
    p.threads
        .iter()
        .flat_map(|t| &t.actions)
        .map(|a| match a {
            Action::Work(u) => *u,
            _ => 0,
        })
        .sum()
}

/// Serial space `S1`: the high-water mark of live allocation under the
/// depth-first serial execution (fork = call: the child runs to completion
/// at the fork point).
pub fn serial_space(p: &Program) -> u64 {
    fn run(p: &Program, t: usize, live: &mut u64, hwm: &mut u64) {
        for a in &p.threads[t].actions {
            match *a {
                Action::Alloc(b) => {
                    *live += b;
                    *hwm = (*hwm).max(*live);
                }
                Action::Free(b) => *live -= b,
                Action::Fork(c) => run(p, c, live, hwm),
                Action::Join(_) | Action::Work(_) => {}
            }
        }
    }
    let mut live = 0;
    let mut hwm = 0;
    run(p, 0, &mut live, &mut hwm);
    hwm
}

/// Critical path `D` in work units: the longest chain through the graph
/// respecting fork and join dependencies.
pub fn critical_path(p: &Program) -> u64 {
    // finish(t, start) computes the completion time of thread t launched at
    // `start`, recursing into forks; joins synchronize with child finish.
    fn finish(p: &Program, t: usize, start: u64) -> u64 {
        // Thread time advances with Work; forks launch children at current
        // time; join waits for the child's finish.
        let mut now = start;
        let mut child_start = std::collections::HashMap::new();
        let mut max_unjoined: u64 = 0;
        for a in &p.threads[t].actions {
            match *a {
                Action::Work(u) => now += u,
                Action::Fork(c) => {
                    child_start.insert(c, now);
                }
                Action::Join(c) => {
                    let cs = child_start[&c];
                    let cf = finish(p, c, cs);
                    now = now.max(cf);
                }
                Action::Alloc(_) | Action::Free(_) => {}
            }
        }
        // Unjoined (detached) children still extend the graph's makespan.
        for (&c, &cs) in &child_start {
            if !p.threads[t]
                .actions
                .iter()
                .any(|a| matches!(a, Action::Join(j) if *j == c))
            {
                max_unjoined = max_unjoined.max(finish(p, c, cs));
            }
        }
        now.max(max_unjoined)
    }
    finish(p, 0, 0)
}

/// The paper's `d`: the maximum number of threads along any fork path
/// (Figure 1 footnote) — i.e. the depth of the fork tree in threads.
pub fn max_path_threads(p: &Program) -> usize {
    let parents = p.parents();
    let mut best = 0;
    #[allow(clippy::needless_range_loop)]
    for mut cur in 0..p.threads.len() {
        let mut depth = 1;
        while let Some(par) = parents[cur] {
            cur = par;
            depth += 1;
        }
        best = best.max(depth);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ThreadSpec;

    fn prog(threads: Vec<Vec<Action>>) -> Program {
        Program {
            threads: threads
                .into_iter()
                .map(|actions| ThreadSpec { actions })
                .collect(),
        }
    }

    #[test]
    fn validate_rejects_double_fork() {
        let p = prog(vec![vec![Action::Fork(1), Action::Fork(1)], vec![]]);
        assert_eq!(validate(&p), Err(ProgramError::BadForkCount(1, 2)));
    }

    #[test]
    fn validate_rejects_orphan() {
        let p = prog(vec![vec![], vec![]]);
        assert_eq!(validate(&p), Err(ProgramError::BadForkCount(1, 0)));
    }

    #[test]
    fn validate_rejects_join_before_fork() {
        let p = prog(vec![vec![Action::Join(1), Action::Fork(1)], vec![]]);
        assert_eq!(validate(&p), Err(ProgramError::JoinBeforeFork(0)));
    }

    #[test]
    fn validate_rejects_unmatched_free() {
        let p = prog(vec![vec![Action::Free(8)]]);
        assert_eq!(validate(&p), Err(ProgramError::UnmatchedFree(0)));
    }

    #[test]
    fn serial_space_of_nested_allocs() {
        // Root allocates 100, forks a child that allocates 50, frees, then
        // root frees. Serial DF: peak = 150.
        let p = prog(vec![
            vec![
                Action::Alloc(100),
                Action::Fork(1),
                Action::Join(1),
                Action::Free(100),
            ],
            vec![Action::Alloc(50), Action::Free(50)],
        ]);
        validate(&p).unwrap();
        assert_eq!(serial_space(&p), 150);
    }

    #[test]
    fn critical_path_parallel_children() {
        // Root: fork two children of work 10 and 3, then joins both.
        // D = max(10, 3) = 10 (+ no root work).
        let p = prog(vec![
            vec![
                Action::Fork(1),
                Action::Fork(2),
                Action::Join(1),
                Action::Join(2),
            ],
            vec![Action::Work(10)],
            vec![Action::Work(3)],
        ]);
        assert_eq!(critical_path(&p), 10);
        assert_eq!(total_work(&p), 13);
    }

    #[test]
    fn critical_path_sequential_dependency() {
        let p = prog(vec![
            vec![
                Action::Work(5),
                Action::Fork(1),
                Action::Join(1),
                Action::Work(5),
            ],
            vec![Action::Work(7)],
        ]);
        assert_eq!(critical_path(&p), 17);
    }
}
