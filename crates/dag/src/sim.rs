//! Abstract policy simulator: executes a [`Program`] on `p` unit-cost
//! processors under each scheduling policy, tracking live threads and space.
//!
//! This is the lightweight analytical twin of the real `ptdf` engine: no
//! fibers, no cost model — just the scheduling discipline. It exists to
//! reproduce the paper's Figure 1 argument exactly and to property-test the
//! space behaviour of the disciplines at scale.

use std::collections::VecDeque;

use crate::program::{Action, Program};

/// Scheduling discipline for the abstract simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Global FIFO queue; forked children enqueued, parent continues
    /// (stock Solaris; breadth-first).
    FifoQueue,
    /// Global LIFO stack; forked children pushed, parent continues
    /// (the paper's §4 item 1).
    LifoQueue,
    /// Child-first depth-first: fork preempts the parent (re-queued at its
    /// serial position) and runs the child — the discipline of the paper's
    /// space-efficient scheduler, without the memory quota.
    ChildFirst,
    /// Per-processor work stealing, child-first, steal oldest.
    WorkStealing,
}

/// Result of an abstract simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Completion time in work units (idle processors wait for free work).
    pub makespan: u64,
    /// Peak number of simultaneously live (created, not exited) threads.
    pub max_live_threads: usize,
    /// Peak live allocated bytes.
    pub space_hwm: u64,
    /// Total threads that ever existed.
    pub total_threads: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Unborn,
    Ready,
    Running,
    Blocked,
    Exited,
}

struct Sim<'a> {
    p: &'a Program,
    policy: PolicyKind,
    procs: usize,
    // per-thread
    state: Vec<TState>,
    pc: Vec<usize>,
    joiner: Vec<Option<usize>>,
    finish: Vec<u64>,
    blocked_at: Vec<u64>,
    // global ready structures
    queue: VecDeque<(usize, u64)>, // (thread, publish time) FIFO/LIFO
    df_order: Vec<usize>,          // ChildFirst: serial-ordered live list
    df_ready: Vec<bool>,
    df_pub: Vec<u64>,
    deques: Vec<VecDeque<(usize, u64)>>, // WorkStealing
    handoff: Vec<Option<usize>>,
    // metrics
    live: usize,
    live_hwm: usize,
    total: usize,
    space: u64,
    space_hwm: u64,
    rng: u64,
}

impl<'a> Sim<'a> {
    fn new(p: &'a Program, policy: PolicyKind, procs: usize) -> Self {
        let n = p.threads.len();
        Sim {
            p,
            policy,
            procs,
            state: vec![TState::Unborn; n],
            pc: vec![0; n],
            joiner: vec![None; n],
            finish: vec![0; n],
            blocked_at: vec![0; n],
            queue: VecDeque::new(),
            df_order: Vec::new(),
            df_ready: vec![false; n],
            df_pub: vec![0; n],
            deques: vec![VecDeque::new(); procs],
            handoff: vec![None; procs],
            live: 0,
            live_hwm: 0,
            total: 0,
            space: 0,
            space_hwm: 0,
            rng: 0x243F6A8885A308D3,
        }
    }

    fn birth(&mut self, t: usize) {
        debug_assert_eq!(self.state[t], TState::Unborn);
        self.live += 1;
        self.total += 1;
        self.live_hwm = self.live_hwm.max(self.live);
    }

    fn publish(&mut self, t: usize, at: u64, home: usize, parent: Option<usize>) {
        self.state[t] = TState::Ready;
        match self.policy {
            PolicyKind::FifoQueue | PolicyKind::LifoQueue => self.queue.push_back((t, at)),
            PolicyKind::ChildFirst => {
                if !self.df_order.contains(&t) {
                    // Insert at the parent's position (immediately left) or
                    // at the end for the root.
                    let idx = parent
                        .and_then(|par| self.df_order.iter().position(|&x| x == par))
                        .unwrap_or(self.df_order.len());
                    self.df_order.insert(idx, t);
                }
                self.df_ready[t] = true;
                self.df_pub[t] = at;
            }
            PolicyKind::WorkStealing => self.deques[home].push_back((t, at)),
        }
    }

    /// Places a placeholder for a thread that will run via handoff.
    fn place_df_placeholder(&mut self, t: usize, parent: usize) {
        if self.policy == PolicyKind::ChildFirst {
            let idx = self
                .df_order
                .iter()
                .position(|&x| x == parent)
                .unwrap_or(self.df_order.len());
            self.df_order.insert(idx, t);
            self.df_ready[t] = false;
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Pop an eligible thread for processor `q` at time `now`; returns
    /// Err(Some(t)) if the earliest entry is in the future at time t,
    /// Err(None) if no entries exist.
    fn pop(&mut self, q: usize, now: u64) -> Result<usize, Option<u64>> {
        match self.policy {
            PolicyKind::FifoQueue => {
                if let Some(i) = self.queue.iter().position(|&(_, at)| at <= now) {
                    let (t, _) = self.queue.remove(i).unwrap();
                    return Ok(t);
                }
                Err(self.queue.iter().map(|&(_, at)| at).min())
            }
            PolicyKind::LifoQueue => {
                if let Some(i) = self.queue.iter().rposition(|&(_, at)| at <= now) {
                    let (t, _) = self.queue.remove(i).unwrap();
                    return Ok(t);
                }
                Err(self.queue.iter().map(|&(_, at)| at).min())
            }
            PolicyKind::ChildFirst => {
                let mut earliest = None;
                for i in 0..self.df_order.len() {
                    let t = self.df_order[i];
                    if self.df_ready[t] {
                        if self.df_pub[t] <= now {
                            self.df_ready[t] = false;
                            return Ok(t);
                        }
                        earliest = Some(
                            earliest.map_or(self.df_pub[t], |e: u64| e.min(self.df_pub[t])),
                        );
                    }
                }
                Err(earliest)
            }
            PolicyKind::WorkStealing => {
                if let Some(i) = self.deques[q].iter().rposition(|&(_, at)| at <= now) {
                    let (t, _) = self.deques[q].remove(i).unwrap();
                    return Ok(t);
                }
                let mut earliest: Option<u64> =
                    self.deques[q].iter().map(|&(_, at)| at).min();
                let start = (self.next_rand() % self.procs as u64) as usize;
                for k in 0..self.procs {
                    let v = (start + k) % self.procs;
                    if v == q {
                        continue;
                    }
                    if let Some(i) = self.deques[v].iter().position(|&(_, at)| at <= now) {
                        let (t, _) = self.deques[v].remove(i).unwrap();
                        return Ok(t);
                    }
                    if let Some(m) = self.deques[v].iter().map(|&(_, at)| at).min() {
                        earliest = Some(earliest.map_or(m, |e| e.min(m)));
                    }
                }
                Err(earliest)
            }
        }
    }

    fn child_first(&self) -> bool {
        matches!(
            self.policy,
            PolicyKind::ChildFirst | PolicyKind::WorkStealing
        )
    }

    /// Runs thread `t` on processor `q` from its pc until it blocks, forks
    /// (child-first), or exits. Returns the new clock.
    fn run_segment(&mut self, t: usize, q: usize, mut now: u64) -> u64 {
        self.state[t] = TState::Running;
        loop {
            let action = self.p.threads[t].actions.get(self.pc[t]).copied();
            match action {
                None => {
                    // Exit.
                    self.state[t] = TState::Exited;
                    self.finish[t] = now;
                    self.live -= 1;
                    if self.policy == PolicyKind::ChildFirst {
                        self.df_order.retain(|&x| x != t);
                    }
                    if let Some(j) = self.joiner[t].take() {
                        let at = now.max(self.blocked_at[j]);
                        self.publish(j, at, q, None);
                    }
                    return now;
                }
                Some(Action::Work(u)) => {
                    now += u;
                    self.pc[t] += 1;
                }
                Some(Action::Alloc(b)) => {
                    self.space += b;
                    self.space_hwm = self.space_hwm.max(self.space);
                    self.pc[t] += 1;
                }
                Some(Action::Free(b)) => {
                    self.space -= b;
                    self.pc[t] += 1;
                }
                Some(Action::Fork(c)) => {
                    self.pc[t] += 1;
                    self.birth(c);
                    if self.child_first() {
                        // Parent re-queued at its position; child handed off.
                        self.place_df_placeholder(c, t);
                        self.publish(t, now, q, None);
                        // Re-mark placeholder consistency: publish() left the
                        // parent where it already was in df_order.
                        self.handoff[q] = Some(c);
                        return now;
                    } else {
                        self.publish(c, now, q, Some(t));
                        // Parent continues (Solaris semantics).
                    }
                }
                Some(Action::Join(c)) => {
                    if self.state[c] == TState::Exited {
                        // Happens-before: join completes no earlier than the
                        // child's (virtual) finish, even if the engine ran
                        // the child's segments first in real order.
                        now = now.max(self.finish[c]);
                        self.pc[t] += 1;
                        continue;
                    }
                    debug_assert!(self.joiner[c].is_none(), "double join");
                    self.joiner[c] = Some(t);
                    self.state[t] = TState::Blocked;
                    self.blocked_at[t] = now;
                    self.pc[t] += 1; // resume past the join when woken
                    return now;
                }
            }
        }
    }
}

/// Simulates `program` on `procs` processors under `policy`.
///
/// # Panics
/// Panics if the program deadlocks (cannot happen for validated programs).
pub fn simulate(program: &Program, policy: PolicyKind, procs: usize) -> SimResult {
    assert!(procs >= 1);
    assert!(!program.is_empty());
    let mut sim = Sim::new(program, policy, procs);
    let mut clocks = vec![0u64; procs];
    let mut parked = vec![false; procs];

    sim.birth(0);
    sim.publish(0, 0, 0, None);

    loop {
        if sim.live == 0 {
            break;
        }
        // Min-clock unparked processor.
        let q = match (0..procs)
            .filter(|&q| !parked[q])
            .min_by_key(|&q| clocks[q])
        {
            Some(q) => q,
            None => panic!("abstract sim deadlock"),
        };
        let t = if let Some(c) = sim.handoff[q].take() {
            c
        } else {
            match sim.pop(q, clocks[q]) {
                Ok(t) => t,
                Err(Some(at)) => {
                    clocks[q] = clocks[q].max(at);
                    continue;
                }
                Err(None) => {
                    parked[q] = true;
                    continue;
                }
            }
        };
        let end = sim.run_segment(t, q, clocks[q]);
        clocks[q] = end;
        // Unpark everyone on any publish (cheap at these scales).
        for b in parked.iter_mut() {
            *b = false;
        }
    }

    SimResult {
        makespan: clocks.into_iter().max().unwrap_or(0),
        max_live_threads: sim.live_hwm,
        space_hwm: sim.space_hwm,
        total_threads: sim.total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{critical_path, serial_space, total_work, validate};
    use crate::program::{Action, Program, ThreadSpec};

    fn binary_tree(depth: u32, leaf_work: u64) -> Program {
        // Builds a program where each interior thread forks two children and
        // joins them.
        fn build(threads: &mut Vec<ThreadSpec>, depth: u32, leaf_work: u64) -> usize {
            let idx = threads.len();
            threads.push(ThreadSpec::default());
            if depth == 0 {
                threads[idx].actions = vec![Action::Work(leaf_work)];
            } else {
                let l = build(threads, depth - 1, leaf_work);
                let r = build(threads, depth - 1, leaf_work);
                threads[idx].actions = vec![
                    Action::Fork(l),
                    Action::Fork(r),
                    Action::Join(l),
                    Action::Join(r),
                ];
            }
            idx
        }
        let mut threads = Vec::new();
        build(&mut threads, depth, leaf_work);
        Program { threads }
    }

    #[test]
    fn tree_work_conservation() {
        let p = binary_tree(5, 3);
        validate(&p).unwrap();
        let w = total_work(&p);
        assert_eq!(w, 32 * 3);
        for policy in [
            PolicyKind::FifoQueue,
            PolicyKind::LifoQueue,
            PolicyKind::ChildFirst,
            PolicyKind::WorkStealing,
        ] {
            let r1 = simulate(&p, policy, 1);
            assert_eq!(r1.makespan, w, "{policy:?} serial makespan == work");
            assert_eq!(r1.total_threads, 63);
        }
    }

    #[test]
    fn parallel_speedup_bounded_by_brent() {
        let p = binary_tree(6, 10);
        let w = total_work(&p);
        let d = critical_path(&p);
        for policy in [
            PolicyKind::FifoQueue,
            PolicyKind::ChildFirst,
            PolicyKind::WorkStealing,
        ] {
            for procs in [2, 4, 8] {
                let r = simulate(&p, policy, procs);
                assert!(r.makespan >= w / procs as u64, "{policy:?} too fast");
                assert!(r.makespan >= d, "{policy:?} beats the critical path");
                assert!(
                    r.makespan <= w + d,
                    "{policy:?} worse than W+D (non-greedy?)"
                );
            }
        }
    }

    #[test]
    fn child_first_live_threads_equal_depth_serially() {
        for depth in 1..8 {
            let p = binary_tree(depth, 1);
            let r = simulate(&p, PolicyKind::ChildFirst, 1);
            assert_eq!(r.max_live_threads as u32, depth + 1);
        }
    }

    #[test]
    fn fifo_live_threads_explode() {
        let p = binary_tree(8, 1); // 511 threads
        let r = simulate(&p, PolicyKind::FifoQueue, 1);
        assert!(r.max_live_threads > 400, "got {}", r.max_live_threads);
    }

    #[test]
    fn space_under_child_first_is_serial_space_on_one_proc() {
        // Each interior node allocates before forking and frees after joins.
        fn build(threads: &mut Vec<ThreadSpec>, depth: u32) -> usize {
            let idx = threads.len();
            threads.push(ThreadSpec::default());
            if depth == 0 {
                threads[idx].actions = vec![Action::Work(1)];
            } else {
                let l = build(threads, depth - 1);
                let r = build(threads, depth - 1);
                threads[idx].actions = vec![
                    Action::Alloc(100),
                    Action::Fork(l),
                    Action::Fork(r),
                    Action::Join(l),
                    Action::Join(r),
                    Action::Free(100),
                ];
            }
            idx
        }
        let mut threads = Vec::new();
        build(&mut threads, 6);
        let p = Program { threads };
        validate(&p).unwrap();
        let s1 = serial_space(&p);
        assert_eq!(s1, 600);
        let r = simulate(&p, PolicyKind::ChildFirst, 1);
        assert_eq!(r.space_hwm, s1, "serial child-first execution == S1");
        // FIFO allocates everything at once.
        let rf = simulate(&p, PolicyKind::FifoQueue, 1);
        assert_eq!(rf.space_hwm, 6300, "all 63 interior allocs live");
    }
}
