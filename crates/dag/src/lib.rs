//! Fork-join computation-graph model and scheduler space analysis.
//!
//! The paper's Figure 1 explains scheduler space behaviour on an abstract
//! computation graph: nodes are actions within threads, solid edges are
//! forks, dashed edges are joins. This crate models such graphs as
//! [`Program`]s, computes their serial space `S1`, critical path `D`, and
//! total work `W`, and simulates the execution policies (FIFO queue, LIFO
//! queue, child-first depth-first, work stealing) on `p` abstract
//! processors, reporting the maximum number of simultaneously live threads
//! and the space high-water mark.
//!
//! The same [`Program`] can be lowered onto the real `ptdf` runtime (see the
//! workspace integration tests), so the abstract analysis and the concrete
//! scheduler can be property-tested against each other.

#![warn(missing_docs)]

mod analysis;
mod generate;
mod program;
mod sim;

pub use analysis::{critical_path, max_path_threads, serial_space, total_work, validate};
pub use generate::{gen_program, GenParams};
pub use program::{Action, Program, ThreadSpec};
pub use sim::{simulate, PolicyKind, SimResult};

/// The example graph of the paper's Figure 1: a three-level binary tree of
/// seven threads, where each interior thread forks both children before
/// joining them. A serial FIFO execution makes all 7 threads simultaneously
/// active; a child-first (depth-first) execution needs at most `d = 3`.
pub fn fig1_example() -> Program {
    // Thread indices: 0 = root; 1,2 = children; 3,4 = children of 1;
    // 5,6 = children of 2. Each thread does a unit of work around its forks.
    let interior = |a: usize, b: usize| ThreadSpec {
        actions: vec![
            Action::Work(1),
            Action::Fork(a),
            Action::Fork(b),
            Action::Work(1),
            Action::Join(a),
            Action::Join(b),
            Action::Work(1),
        ],
    };
    let leaf = || ThreadSpec {
        actions: vec![Action::Work(2)],
    };
    Program {
        threads: vec![
            interior(1, 2),
            interior(3, 4),
            interior(5, 6),
            leaf(),
            leaf(),
            leaf(),
            leaf(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_validates() {
        validate(&fig1_example()).unwrap();
    }

    #[test]
    fn fig1_fifo_activates_all_seven() {
        let r = simulate(&fig1_example(), PolicyKind::FifoQueue, 1);
        assert_eq!(r.max_live_threads, 7);
    }

    #[test]
    fn fig1_child_first_needs_three() {
        let r = simulate(&fig1_example(), PolicyKind::ChildFirst, 1);
        assert_eq!(r.max_live_threads, 3);
    }

    #[test]
    fn fig1_queue_lifo_between() {
        let r = simulate(&fig1_example(), PolicyKind::LifoQueue, 1);
        assert!(r.max_live_threads > 3 && r.max_live_threads < 7);
    }

    #[test]
    fn fig1_depth_is_three() {
        assert_eq!(max_path_threads(&fig1_example()), 3);
    }
}
