//! Seeded random fork-join program generation (for property tests and the
//! scheduler-bound experiments).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::program::{Action, Program, ThreadSpec};

/// Shape parameters for [`gen_program`].
#[derive(Debug, Clone, Copy)]
pub struct GenParams {
    /// Upper bound on total thread count.
    pub max_threads: usize,
    /// Maximum fork-tree depth.
    pub max_depth: u32,
    /// Maximum units for a single `Work` action.
    pub max_work: u64,
    /// Maximum bytes for a single `Alloc` (0 disables allocations).
    pub max_alloc: u64,
    /// Probability (0..=100) that an interior position forks a child.
    pub fork_percent: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            max_threads: 200,
            max_depth: 8,
            max_work: 20,
            max_alloc: 1000,
            fork_percent: 60,
            seed: 42,
        }
    }
}

/// Generates a valid random fork-join program: a tree of threads, each a
/// random interleaving of work, balanced alloc/free pairs, and fork/join
/// pairs (every fork is joined before the thread exits, in fork order or
/// reverse order at random).
pub fn gen_program(params: GenParams) -> Program {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let mut threads = vec![ThreadSpec::default()];
    gen_thread(&mut threads, 0, 0, &params, &mut rng);
    Program { threads }
}

fn gen_thread(
    threads: &mut Vec<ThreadSpec>,
    me: usize,
    depth: u32,
    params: &GenParams,
    rng: &mut SmallRng,
) {
    let mut actions = Vec::new();
    let mut children = Vec::new();
    let mut open_allocs: Vec<u64> = Vec::new();
    let segments = rng.gen_range(1..=5);
    for _ in 0..segments {
        match rng.gen_range(0..100u32) {
            x if x < params.fork_percent
                && depth < params.max_depth
                && threads.len() < params.max_threads =>
            {
                let c = threads.len();
                threads.push(ThreadSpec::default());
                gen_thread(threads, c, depth + 1, params, rng);
                actions.push(Action::Fork(c));
                children.push(c);
            }
            x if x < 80 || params.max_alloc == 0 => {
                actions.push(Action::Work(rng.gen_range(1..=params.max_work)));
            }
            _ => {
                let b = rng.gen_range(1..=params.max_alloc);
                actions.push(Action::Alloc(b));
                open_allocs.push(b);
            }
        }
        // Sometimes join an outstanding child early.
        if !children.is_empty() && rng.gen_bool(0.3) {
            let c = children.remove(rng.gen_range(0..children.len()));
            actions.push(Action::Join(c));
        }
        // Sometimes free an outstanding allocation.
        if !open_allocs.is_empty() && rng.gen_bool(0.4) {
            let b = open_allocs.pop().unwrap();
            actions.push(Action::Free(b));
        }
    }
    // Join everything still outstanding (reverse order), free the rest.
    if rng.gen_bool(0.5) {
        children.reverse();
    }
    for c in children {
        actions.push(Action::Join(c));
    }
    for b in open_allocs.into_iter().rev() {
        actions.push(Action::Free(b));
    }
    if actions.is_empty() {
        actions.push(Action::Work(1));
    }
    threads[me].actions = actions;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::validate;

    #[test]
    fn generated_programs_are_valid() {
        for seed in 0..50 {
            let p = gen_program(GenParams {
                seed,
                ..GenParams::default()
            });
            validate(&p).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(p.len() <= 200);
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = gen_program(GenParams::default());
        let b = gen_program(GenParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn fork_percent_zero_gives_single_thread() {
        let p = gen_program(GenParams {
            fork_percent: 0,
            ..GenParams::default()
        });
        assert_eq!(p.len(), 1);
    }
}
