//! The program (computation graph) representation.

/// One step of a thread's sequential action list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// `u` units of computation.
    Work(u64),
    /// Allocate `bytes` of heap.
    Alloc(u64),
    /// Free `bytes` of heap previously allocated *by this thread*.
    Free(u64),
    /// Fork child thread `i` (an index into [`Program::threads`]).
    Fork(usize),
    /// Join child thread `i` (must have been forked by this thread).
    Join(usize),
}

/// A thread: a straight-line sequence of actions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ThreadSpec {
    /// The actions, executed in order.
    pub actions: Vec<Action>,
}

/// A fork-join program. Thread 0 is the root; every other thread must be
/// forked exactly once, forming a tree. Joins are optional but must follow
/// the corresponding fork in the forking thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// All threads; index = thread id.
    pub threads: Vec<ThreadSpec>,
}

impl Program {
    /// Number of threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// True when the program has no threads.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Parent of each thread (root has none).
    pub fn parents(&self) -> Vec<Option<usize>> {
        let mut parent = vec![None; self.threads.len()];
        for (i, t) in self.threads.iter().enumerate() {
            for a in &t.actions {
                if let Action::Fork(c) = a {
                    parent[*c] = Some(i);
                }
            }
        }
        parent
    }
}
