//! Backend-independent coroutine API types.

/// Result of a `Coroutine::resume` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step<Y, R> {
    /// The coroutine suspended via `Yielder::suspend`, producing `Y`.
    Yield(Y),
    /// The coroutine's body returned with `R`; it may not be resumed again.
    Complete(R),
}

impl<Y, R> Step<Y, R> {
    /// Unwraps the `Yield` variant, panicking on `Complete`.
    pub fn unwrap_yield(self) -> Y {
        match self {
            Step::Yield(y) => y,
            Step::Complete(_) => panic!("coroutine completed where a yield was expected"),
        }
    }

    /// Unwraps the `Complete` variant, panicking on `Yield`.
    pub fn unwrap_complete(self) -> R {
        match self {
            Step::Complete(r) => r,
            Step::Yield(_) => panic!("coroutine yielded where completion was expected"),
        }
    }
}

/// Panic payload used to force-unwind a suspended coroutine's stack when the
/// `Coroutine` is dropped. User code must let this propagate (do not
/// swallow it inside a blanket `catch_unwind`).
#[derive(Debug)]
pub struct ForcedUnwind;
