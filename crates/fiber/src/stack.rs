//! Fiber stack allocation.
//!
//! Stacks are plain heap allocations (16-byte aligned as required by the
//! System V AMD64 ABI) with a canary region written at the low end. We do not
//! use `mmap` guard pages to keep the crate dependency-free and portable; the
//! canary gives best-effort overflow detection instead, mirroring what the
//! Solaris library offered for its cached thread stacks (a red zone page).

use std::alloc::{alloc, dealloc, Layout};
use std::fmt;
use std::ptr::NonNull;

/// Default stack size for a fiber when the caller does not specify one.
///
/// Note: in the SC'98 reproduction the *accounted* stack size of a simulated
/// Pthread (1 MB vs 8 KB, the paper's §4 item 3) is tracked separately by the
/// runtime's memory model; this constant only sizes the real host stack that
/// the fiber executes on.
pub const DEFAULT_STACK_SIZE: usize = 64 * 1024;

/// Smallest stack we will allocate. Below this the trampoline frame plus any
/// realistic leaf call would overflow immediately.
pub const MIN_STACK_SIZE: usize = 4 * 1024;

const ALIGN: usize = 16;
const CANARY_LEN: usize = 64;
const CANARY_BYTE: u8 = 0xC5;

/// Error reported when a stack's canary region has been overwritten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackOverflow {
    /// Number of canary bytes that were clobbered.
    pub clobbered: usize,
    /// Total stack size in bytes.
    pub size: usize,
}

impl fmt::Display for StackOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fiber stack overflow detected: {} canary bytes clobbered on a {}-byte stack",
            self.clobbered, self.size
        )
    }
}

impl std::error::Error for StackOverflow {}

/// A heap-allocated, 16-byte-aligned fiber stack.
pub struct Stack {
    base: NonNull<u8>,
    layout: Layout,
}

impl Stack {
    /// The actual allocation size for a requested stack size: rounded up to
    /// [`MIN_STACK_SIZE`] and to the ABI alignment. Exposed so size-classed
    /// caches can bucket requests the same way [`Stack::new`] rounds them.
    pub fn rounded_size(size: usize) -> usize {
        size.max(MIN_STACK_SIZE).next_multiple_of(ALIGN)
    }

    /// Allocates a stack of (at least) `size` bytes and arms the canary.
    ///
    /// `size` is rounded up to [`MIN_STACK_SIZE`] and to the ABI alignment.
    pub fn new(size: usize) -> Self {
        let size = Self::rounded_size(size);
        let layout = Layout::from_size_align(size, ALIGN).expect("valid stack layout");
        // SAFETY: layout has non-zero size.
        let base = unsafe { alloc(layout) };
        let base = NonNull::new(base).unwrap_or_else(|| std::alloc::handle_alloc_error(layout));
        let stack = Stack { base, layout };
        // SAFETY: the canary region is inside the fresh allocation.
        unsafe {
            std::ptr::write_bytes(stack.base.as_ptr(), CANARY_BYTE, CANARY_LEN);
        }
        stack
    }

    /// Size of the stack in bytes.
    pub fn size(&self) -> usize {
        self.layout.size()
    }

    /// Highest address of the stack (exclusive); the initial stack pointer.
    /// Guaranteed 16-byte aligned.
    pub fn top(&self) -> *mut u8 {
        // SAFETY: base + size is one-past-the-end of the allocation.
        unsafe { self.base.as_ptr().add(self.layout.size()) }
    }

    /// Lowest address of the stack.
    pub fn bottom(&self) -> *mut u8 {
        self.base.as_ptr()
    }

    /// Checks the canary at the low end of the stack.
    pub fn check_canary(&self) -> Result<(), StackOverflow> {
        // SAFETY: the canary region is inside the allocation.
        let canary = unsafe { std::slice::from_raw_parts(self.base.as_ptr(), CANARY_LEN) };
        let clobbered = canary.iter().filter(|&&b| b != CANARY_BYTE).count();
        if clobbered == 0 {
            Ok(())
        } else {
            Err(StackOverflow { clobbered, size: self.size() })
        }
    }

    /// Rewrites the canary pattern, re-arming overflow detection.
    ///
    /// Called when a stack is recycled through a [`StackPool`]: the previous
    /// fiber's frames are garbage now, but the canary must read as intact
    /// before the next fiber runs on it.
    ///
    /// [`StackPool`]: crate::StackPool
    pub fn rearm_canary(&mut self) {
        // SAFETY: the canary region is inside the allocation.
        unsafe {
            std::ptr::write_bytes(self.base.as_ptr(), CANARY_BYTE, CANARY_LEN);
        }
    }
}

impl Drop for Stack {
    fn drop(&mut self) {
        debug_assert!(
            self.check_canary().is_ok(),
            "{}",
            self.check_canary().unwrap_err()
        );
        // SAFETY: base/layout came from `alloc` in `new`.
        unsafe { dealloc(self.base.as_ptr(), self.layout) }
    }
}

impl fmt::Debug for Stack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("size", &self.size())
            .field("top", &self.top())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_is_aligned_and_sized() {
        let s = Stack::new(10_000);
        assert_eq!(s.top() as usize % 16, 0);
        assert!(s.size() >= 10_000);
        assert_eq!(s.size() % ALIGN, 0);
    }

    #[test]
    fn tiny_request_is_rounded_up() {
        let s = Stack::new(1);
        assert!(s.size() >= MIN_STACK_SIZE);
    }

    #[test]
    fn canary_detects_clobber() {
        let s = Stack::new(8192);
        assert!(s.check_canary().is_ok());
        // SAFETY: writing within the allocation.
        unsafe { *s.bottom().add(3) = 0 };
        let err = s.check_canary().unwrap_err();
        assert_eq!(err.clobbered, 1);
        // Restore so drop's debug assertion passes.
        unsafe { *s.bottom().add(3) = 0xC5 };
    }

    #[test]
    fn rearm_restores_a_clobbered_canary() {
        let mut s = Stack::new(8192);
        // SAFETY: writing within the allocation.
        unsafe { *s.bottom().add(7) = 0xFF };
        assert!(s.check_canary().is_err());
        s.rearm_canary();
        assert!(s.check_canary().is_ok());
    }
}
