//! Portable coroutine backend: one parked OS thread per coroutine.
//!
//! Selected on non-x86_64 targets (or with `--features thread-backend`),
//! this backend provides the exact [`Coroutine`] API of the assembly
//! backend, at the cost of one OS thread (and kernel-assisted handoffs)
//! per coroutine — the trade-off the paper's Figure 3 quantifies between
//! bound and unbound threads.
//!
//! # Why the `Send` erasure is sound
//!
//! Coroutine bodies are not required to be `Send` (the virtual-SMP engine
//! shares `Rc`-based state between fibers), yet this backend runs each body
//! on its own OS thread. That is sound under this crate's execution
//! discipline:
//!
//! * exactly **one** side (resumer or coroutine) runs at any instant — the
//!   other is blocked on a rendezvous channel;
//! * every control transfer goes through that channel, whose send/recv pair
//!   establishes a happens-before edge, so all writes made by one side are
//!   visible to the other before it runs;
//! * therefore the non-`Send` data is never accessed concurrently and every
//!   access is ordered — the same reasoning that makes a mutex-protected
//!   `!Sync` value safe to move between threads.
//!
//! The `SendCell` wrapper encapsulates this argument.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

pub use crate::coro_api::{ForcedUnwind, Step};
use crate::stack::Stack;

/// Moves a non-`Send` value across the rendezvous boundary. See the module
/// docs for the soundness argument.
struct SendCell<T>(T);
// SAFETY: values are only ever accessed by the thread that currently holds
// the rendezvous baton; transfers are synchronized by the channel.
unsafe impl<T> Send for SendCell<T> {}

enum ToFiber<In> {
    Resume(In),
    Cancel,
}

enum FromFiber<Y, R> {
    Yield(Y),
    Complete(R),
    Panicked(Box<dyn Any + Send>),
    Cancelled,
}

/// A coroutine backed by a parked OS thread (portable backend).
pub struct Coroutine<In, Y, R> {
    to_fiber: SyncSender<SendCell<ToFiber<In>>>,
    from_fiber: Receiver<SendCell<FromFiber<Y, R>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    started: bool,
    done: bool,
    stack: Stack,
    _not_send: PhantomData<*mut ()>,
}

/// Suspension handle passed to the coroutine body (portable backend).
pub struct Yielder<In, Y, R> {
    to_caller: SyncSender<SendCell<FromFiber<Y, R>>>,
    from_caller: *const Receiver<SendCell<ToFiber<In>>>,
}

impl<In, Y, R> Yielder<In, Y, R> {
    /// Suspends the coroutine, delivering `value`; returns the next resume
    /// input. Panics with [`ForcedUnwind`] if the coroutine is being
    /// dropped.
    pub fn suspend(&self, value: Y) -> In {
        self.to_caller
            .send(SendCell(FromFiber::Yield(value)))
            .expect("resumer alive");
        // SAFETY: the receiver outlives the body (owned by the fiber main).
        let rx = unsafe { &*self.from_caller };
        match rx.recv().expect("resumer alive").0 {
            ToFiber::Resume(input) => input,
            ToFiber::Cancel => std::panic::panic_any(ForcedUnwind),
        }
    }
}

impl<In, Y, R> Coroutine<In, Y, R> {
    /// Creates a coroutine running `body` (see the assembly backend for the
    /// API contract). `stack_size` sizes the OS thread's stack.
    pub fn new<F>(stack_size: usize, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R + 'static,
        In: 'static,
        Y: 'static,
        R: 'static,
    {
        // SAFETY: 'static bounds satisfy the contract trivially.
        unsafe { Self::new_unchecked(stack_size, body) }
    }

    /// API-parity shim for the assembly backend's `with_stack`: this backend
    /// runs bodies on OS threads, so the supplied stack only sizes the
    /// thread's stack and is then freed.
    pub fn with_stack<F>(stack: Stack, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R + 'static,
        In: 'static,
        Y: 'static,
        R: 'static,
    {
        Self::new(stack.size(), body)
    }

    /// API-parity shim; see [`Coroutine::with_stack`].
    ///
    /// # Safety
    /// Same contract as [`Coroutine::new_unchecked`].
    pub unsafe fn with_stack_unchecked<F>(stack: Stack, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R,
    {
        Self::new_unchecked(stack.size(), body)
    }

    /// Creates a coroutine whose body is not `'static`.
    ///
    /// # Safety
    /// As for the assembly backend: the caller must drive the coroutine to
    /// completion (or drop it) before any borrow captured by `body` dies.
    pub unsafe fn new_unchecked<F>(stack_size: usize, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R,
    {
        let (to_fiber, from_caller) = sync_channel::<SendCell<ToFiber<In>>>(1);
        let (to_caller, from_fiber) = sync_channel::<SendCell<FromFiber<Y, R>>>(1);
        // The whole fiber main is erased to `Box<dyn FnOnce() + 'static>`:
        // the lifetime erasure is covered by this function's safety contract
        // (the Coroutine is driven to completion or dropped — and drop joins
        // the thread — before any borrow dies), and the Send erasure by the
        // rendezvous discipline (module docs).
        let fiber_main = move || {
            let first = match from_caller.recv() {
                Ok(SendCell(ToFiber::Resume(input))) => input,
                _ => return, // cancelled before first resume or dropped
            };
            let yielder = Yielder {
                to_caller: to_caller.clone(),
                from_caller: &from_caller,
            };
            let out = match catch_unwind(AssertUnwindSafe(move || body(&yielder, first))) {
                Ok(r) => FromFiber::Complete(r),
                Err(p) if p.is::<ForcedUnwind>() => FromFiber::Cancelled,
                Err(p) => FromFiber::Panicked(p),
            };
            let _ = to_caller.send(SendCell(out));
        };
        let fiber_main: Box<dyn FnOnce() + 'static> = std::mem::transmute(
            Box::new(fiber_main) as Box<dyn FnOnce() + '_>
        );
        let cell = SendCell(fiber_main);
        let handle = std::thread::Builder::new()
            .stack_size(stack_size.max(512 * 1024)) // OS stacks are lazily committed; floor generously
            .name("ptdf-fiber".into())
            .spawn(move || {
                // Capture the whole SendCell (edition-2021 disjoint capture
                // would otherwise capture the non-Send boxed closure).
                let cell = cell;
                (cell.0)()
            })
            .expect("spawn fiber thread");
        Coroutine {
            to_fiber,
            from_fiber,
            handle: Some(handle),
            started: false,
            done: false,
            stack: Stack::new(64), // placeholder for API parity (canary etc.)
            _not_send: PhantomData,
        }
    }

    /// Resumes the coroutine with `input` (see the assembly backend).
    pub fn resume(&mut self, input: In) -> Step<Y, R> {
        assert!(!self.done, "resume called on a completed coroutine");
        self.started = true;
        self.to_fiber
            .send(SendCell(ToFiber::Resume(input)))
            .expect("fiber thread alive");
        match self.from_fiber.recv().expect("fiber thread alive").0 {
            FromFiber::Yield(y) => Step::Yield(y),
            FromFiber::Complete(r) => {
                self.done = true;
                self.join_thread();
                Step::Complete(r)
            }
            FromFiber::Panicked(p) => {
                self.done = true;
                self.join_thread();
                resume_unwind(p)
            }
            FromFiber::Cancelled => unreachable!("cancel without drop"),
        }
    }

    fn join_thread(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// True once the body has returned or unwound.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// True if never resumed.
    pub fn is_fresh(&self) -> bool {
        !self.started
    }

    /// Placeholder stack (real stacks belong to the OS threads here).
    pub fn stack(&self) -> &Stack {
        &self.stack
    }

    /// API-parity shim for the assembly backend's `into_stack`: there is no
    /// reusable host stack on this backend, so this always returns `None`
    /// (see [`crate::HAS_REAL_STACKS`]).
    pub fn into_stack(self) -> Option<Stack> {
        None
    }
}

impl<In, Y, R> Drop for Coroutine<In, Y, R> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // Cancel: the body (if started) unwinds via ForcedUnwind; if never
        // started, the fiber thread exits at its first recv.
        let _ = self.to_fiber.send(SendCell(ToFiber::Cancel));
        if self.started {
            // Wait for the unwind acknowledgement.
            let _ = self.from_fiber.recv();
        }
        self.join_thread();
    }
}

impl<In, Y, R> fmt::Debug for Coroutine<In, Y, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Coroutine(thread-backend)")
            .field("started", &self.started)
            .field("done", &self.done)
            .finish()
    }
}
