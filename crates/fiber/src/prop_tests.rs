//! Property tests: arbitrary resume/yield value sequences round-trip
//! through a coroutine unchanged, for both backends.

use crate::{Coroutine, Step};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coroutine echoes every input with a marker; sequencing and
    /// values survive arbitrarily many switches.
    #[test]
    fn echo_roundtrip(values in proptest::collection::vec(any::<u64>(), 1..50)) {
        let n = values.len();
        let mut co = Coroutine::<u64, u64, usize>::new(32 * 1024, move |y, first| {
            let mut cur = first;
            let mut count = 0usize;
            loop {
                count += 1;
                if count == n {
                    return count;
                }
                cur = y.suspend(cur.wrapping_mul(3).wrapping_add(1));
                let _ = cur;
            }
        });
        for (i, &v) in values.iter().enumerate() {
            match co.resume(v) {
                Step::Yield(echo) => {
                    prop_assert_eq!(echo, v.wrapping_mul(3).wrapping_add(1));
                    prop_assert!(i + 1 < n);
                }
                Step::Complete(count) => {
                    prop_assert_eq!(count, n);
                    prop_assert_eq!(i + 1, n);
                }
            }
        }
        prop_assert!(co.is_done());
    }

    /// Dropping after a random number of resumes always reclaims cleanly
    /// (forced unwind runs the live destructors).
    #[test]
    fn drop_at_any_point_is_clean(stop_after in 0usize..20) {
        use std::cell::Cell;
        use std::rc::Rc;
        let drops = Rc::new(Cell::new(0u32));
        let d2 = drops.clone();
        struct Bomb(Rc<Cell<u32>>);
        impl Drop for Bomb {
            fn drop(&mut self) {
                self.0.set(self.0.get() + 1);
            }
        }
        let mut co = Coroutine::<(), u32, ()>::new(32 * 1024, move |y, ()| {
            let _bomb = Bomb(d2);
            let mut i = 0;
            loop {
                y.suspend(i);
                i += 1;
            }
        });
        for _ in 0..stop_after {
            co.resume(()).unwrap_yield();
        }
        drop(co);
        let expected = u32::from(stop_after > 0); // bomb armed on first resume
        prop_assert_eq!(drops.get(), expected);
    }
}
