//! Safe(ish) coroutine object on top of the raw context switch.

use std::any::Any;
use std::cell::Cell;
use std::ffi::c_void;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::arch::{init_stack, ptdf_raw_switch, EntryThunk};
use crate::coro_api::{ForcedUnwind, Step};
use crate::stack::Stack;

/// Shared mailbox between the resumer side and the fiber side. Lives in a
/// `Box` so its address is stable across switches.
struct Shared<In, Y, R> {
    /// Suspended stack pointer of the fiber (valid when state != Running).
    fiber_sp: Cell<*mut c_void>,
    /// Suspended stack pointer of the resumer (valid while fiber runs).
    caller_sp: Cell<*mut c_void>,
    input: Cell<Option<In>>,
    output: Cell<Option<Step<Y, R>>>,
    panic: Cell<Option<Box<dyn Any + Send>>>,
    cancel: Cell<bool>,
    state: Cell<u8>, // State discriminant; u8 to keep Cell simple
}

const ST_CREATED: u8 = 0;
const ST_SUSPENDED: u8 = 1;
const ST_RUNNING: u8 = 2;
const ST_DONE: u8 = 3;

/// A stackful coroutine: resumed with values of type `In`, yields values of
/// type `Y`, and completes with a value of type `R`.
///
/// See the crate-level docs for an example. `Coroutine` is intentionally
/// **not** `Send`: the SC'98 reproduction drives all fibers from a single
/// OS thread (the virtual-SMP engine), which keeps the unsafe surface small.
pub struct Coroutine<In, Y, R> {
    shared: Box<Shared<In, Y, R>>,
    /// `Some` until [`Coroutine::into_stack`] moves the stack out for reuse.
    stack: Option<Stack>,
    /// Set for `Created` coroutines so an unused entry thunk can be reclaimed.
    pending_thunk: *mut EntryThunk,
    _not_send: PhantomData<*mut ()>,
}

/// Handle passed to the coroutine body for suspending back to the resumer.
pub struct Yielder<In, Y, R> {
    shared: *const Shared<In, Y, R>,
}

impl<In, Y, R> Yielder<In, Y, R> {
    /// Suspends the coroutine, delivering `value` to the pending
    /// [`Coroutine::resume`] call, and blocks until resumed again; returns
    /// the next resume input.
    ///
    /// # Panics
    /// Panics with [`ForcedUnwind`] if the owning `Coroutine` is being
    /// dropped; the unwind runs destructors of live frames on this stack.
    pub fn suspend(&self, value: Y) -> In {
        // SAFETY: `shared` outlives the coroutine body (owned by Coroutine,
        // which cannot be dropped while its fiber is running).
        let shared = unsafe { &*self.shared };
        shared.output.set(Some(Step::Yield(value)));
        shared.state.set(ST_SUSPENDED);
        // SAFETY: caller_sp holds the resumer's suspended context.
        unsafe {
            ptdf_raw_switch(shared.fiber_sp.as_ptr(), shared.caller_sp.get());
        }
        shared.state.set(ST_RUNNING);
        if shared.cancel.get() {
            std::panic::panic_any(ForcedUnwind);
        }
        shared
            .input
            .take()
            .expect("resume must provide an input value")
    }
}

impl<In, Y, R> Coroutine<In, Y, R> {
    /// Creates a coroutine with a fresh stack of `stack_size` bytes running
    /// `body`. The body receives a [`Yielder`] and the input of the first
    /// `resume` call.
    pub fn new<F>(stack_size: usize, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R + 'static,
        In: 'static,
        Y: 'static,
        R: 'static,
    {
        // SAFETY: 'static bounds satisfy new_unchecked's contract trivially.
        unsafe { Self::new_unchecked(stack_size, body) }
    }

    /// Like [`Coroutine::new`] but runs `body` on a caller-supplied stack —
    /// typically one recycled through a [`StackPool`](crate::StackPool).
    pub fn with_stack<F>(stack: Stack, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R + 'static,
        In: 'static,
        Y: 'static,
        R: 'static,
    {
        // SAFETY: 'static bounds satisfy the unchecked contract trivially.
        unsafe { Self::with_stack_unchecked(stack, body) }
    }

    /// Creates a coroutine whose body is not `'static`.
    ///
    /// # Safety
    /// The caller must guarantee that every borrow captured by `body` (and
    /// carried by `In`, `Y`, `R`) outlives the coroutine's execution — i.e.
    /// the coroutine is driven to completion (or dropped, which force-unwinds
    /// it) before any borrowed data dies. The SC'98 runtime upholds this via
    /// its structured `scope` API.
    pub unsafe fn new_unchecked<F>(stack_size: usize, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R,
    {
        Self::with_stack_unchecked(Stack::new(stack_size), body)
    }

    /// [`Coroutine::with_stack`] for a non-`'static` body.
    ///
    /// # Safety
    /// Same contract as [`Coroutine::new_unchecked`].
    pub unsafe fn with_stack_unchecked<F>(stack: Stack, body: F) -> Self
    where
        F: FnOnce(&Yielder<In, Y, R>, In) -> R,
    {
        let shared = Box::new(Shared::<In, Y, R> {
            fiber_sp: Cell::new(std::ptr::null_mut()),
            caller_sp: Cell::new(std::ptr::null_mut()),
            input: Cell::new(None),
            output: Cell::new(None),
            panic: Cell::new(None),
            cancel: Cell::new(false),
            state: Cell::new(ST_CREATED),
        });
        let shared_ptr: *const Shared<In, Y, R> = &*shared;

        // The closure that runs on the fiber stack. It is boxed (type-erased
        // through EntryThunk) and executed exactly once by ptdf_fiber_entry.
        let fiber_main = move || {
            let shared = &*shared_ptr;
            shared.state.set(ST_RUNNING);
            if shared.cancel.get() {
                // Cancelled before the body observed its first input.
                shared.output.set(None);
            } else {
                let input = shared.input.take().expect("first resume provides input");
                let yielder = Yielder { shared: shared_ptr };
                match catch_unwind(AssertUnwindSafe(move || body(&yielder, input))) {
                    Ok(ret) => shared.output.set(Some(Step::Complete(ret))),
                    Err(payload) => {
                        if payload.is::<ForcedUnwind>() {
                            shared.output.set(None);
                        } else {
                            shared.panic.set(Some(payload));
                        }
                    }
                }
            }
            shared.state.set(ST_DONE);
            // Final switch back to the resumer. fiber_sp doubles as the
            // (dead) save slot; control never returns here.
            ptdf_raw_switch(shared.fiber_sp.as_ptr(), shared.caller_sp.get());
            unreachable!("completed fiber resumed");
        };

        // Double-box: EntryThunk::payload is a thin pointer to Box<dyn FnMut-ish>.
        type ErasedMain = Box<dyn FnOnce()>;
        // Lifetime erasure — justified by this function's safety contract.
        let erased: ErasedMain = std::mem::transmute::<
            Box<dyn FnOnce() + '_>,
            Box<dyn FnOnce() + 'static>,
        >(Box::new(fiber_main));
        let payload = Box::into_raw(Box::new(erased)) as *mut c_void;

        fn run_erased(payload: *mut c_void) {
            // SAFETY: payload was produced by Box::into_raw above.
            let f: Box<Box<dyn FnOnce()>> = unsafe { Box::from_raw(payload.cast()) };
            f();
        }

        let thunk = Box::into_raw(Box::new(EntryThunk { run: run_erased, payload }));
        let initial_sp = init_stack(stack.top(), thunk);
        shared.fiber_sp.set(initial_sp);

        Coroutine {
            shared,
            stack: Some(stack),
            pending_thunk: thunk,
            _not_send: PhantomData,
        }
    }

    /// Resumes the coroutine with `input`, blocking the caller until the
    /// coroutine yields or completes.
    ///
    /// # Panics
    /// Panics if the coroutine already completed, and re-raises any panic
    /// that escaped the coroutine body.
    pub fn resume(&mut self, input: In) -> Step<Y, R> {
        match self.shared.state.get() {
            ST_DONE => panic!("resume called on a completed coroutine"),
            ST_RUNNING => panic!("re-entrant resume on a running coroutine"),
            _ => {}
        }
        self.pending_thunk = std::ptr::null_mut(); // consumed on first switch
        self.shared.input.set(Some(input));
        // SAFETY: fiber_sp holds a valid suspended context (bootstrap frame
        // for Created, a suspend() frame for Suspended).
        unsafe {
            ptdf_raw_switch(self.shared.caller_sp.as_ptr(), self.shared.fiber_sp.get());
        }
        if let Some(payload) = self.shared.panic.take() {
            resume_unwind(payload);
        }
        self.shared
            .output
            .take()
            .expect("coroutine must yield or complete before switching back")
    }

    /// True once the coroutine body has returned (or unwound).
    pub fn is_done(&self) -> bool {
        self.shared.state.get() == ST_DONE
    }

    /// True if the coroutine was created but never resumed.
    pub fn is_fresh(&self) -> bool {
        self.shared.state.get() == ST_CREATED
    }

    /// The coroutine's stack, for canary checks / usage statistics.
    pub fn stack(&self) -> &Stack {
        self.stack.as_ref().expect("stack still owned")
    }

    /// Consumes the coroutine and returns its stack for recycling.
    ///
    /// If the body has not finished, the same cleanup [`Drop`] would perform
    /// runs first (thunk reclaim for a never-resumed coroutine, forced unwind
    /// for a suspended one), so the returned stack carries no live frames.
    /// Always returns `Some` on this backend; the portable thread backend's
    /// placeholder stacks return `None` (see [`crate::HAS_REAL_STACKS`]).
    pub fn into_stack(mut self) -> Option<Stack> {
        self.cleanup();
        self.stack.take()
    }

    /// Releases everything except the stack: reclaims a never-run entry
    /// thunk, force-unwinds a suspended fiber. Idempotent; `Drop` calls it.
    fn cleanup(&mut self) {
        match self.shared.state.get() {
            ST_DONE => {}
            ST_CREATED => {
                if self.pending_thunk.is_null() {
                    return;
                }
                // Entry never ran: reclaim the thunk and its payload.
                // SAFETY: pointers were produced by Box::into_raw in new_unchecked.
                unsafe {
                    let thunk = Box::from_raw(self.pending_thunk);
                    drop(Box::from_raw(thunk.payload as *mut Box<dyn FnOnce()>));
                }
                self.pending_thunk = std::ptr::null_mut();
                self.shared.state.set(ST_DONE);
            }
            ST_SUSPENDED => {
                // Force-unwind the fiber so destructors on its stack run.
                // The unwind is delivered as a panic with a ForcedUnwind
                // payload; install (once, process-wide) a hook filter that
                // silences it — it is control flow, not an error. A
                // swap-per-drop scheme would race between threads.
                install_forced_unwind_filter();
                self.shared.cancel.set(true);
                self.shared.input.set(None);
                // SAFETY: same contract as resume().
                unsafe {
                    ptdf_raw_switch(
                        self.shared.caller_sp.as_ptr(),
                        self.shared.fiber_sp.get(),
                    );
                }
                debug_assert_eq!(self.shared.state.get(), ST_DONE);
                if let Some(payload) = self.shared.panic.take() {
                    // A destructor panicked during forced unwind; propagate.
                    if !std::thread::panicking() {
                        resume_unwind(payload);
                    }
                }
            }
            _ => unreachable!("dropping a running coroutine"),
        }
    }
}

impl<In, Y, R> Drop for Coroutine<In, Y, R> {
    fn drop(&mut self) {
        self.cleanup();
    }
}

/// Installs (once) a panic hook that suppresses [`ForcedUnwind`] payloads
/// and forwards everything else to the previously installed hook.
fn install_forced_unwind_filter() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ForcedUnwind>().is_none() {
                previous(info);
            }
        }));
    });
}

impl<In, Y, R> fmt::Debug for Coroutine<In, Y, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.shared.state.get() {
            ST_CREATED => "created",
            ST_SUSPENDED => "suspended",
            ST_RUNNING => "running",
            _ => "done",
        };
        f.debug_struct("Coroutine")
            .field("state", &state)
            .field("stack_size", &self.stack.as_ref().map_or(0, Stack::size))
            .finish()
    }
}

