//! Recycling pool for real fiber stacks.
//!
//! Allocating and freeing a fresh host stack on every spawn is exactly the
//! per-thread cost the SC'98 paper's overhead figure attributes to thread
//! packages, and the cure is the same one Solaris used for its cached thread
//! stacks: keep exited stacks in a size-classed free list and hand them back
//! out on the next spawn. [`StackPool`] is that free list for the fiber
//! layer's *host* stacks (the memory the fiber actually executes on, as
//! opposed to the runtime's virtual stack accounting).
//!
//! Stacks are bucketed by their exact rounded size — the runtime allocates
//! nearly all fiber stacks at one configured size, so exact-size buckets hit
//! almost always and never hand out an over- or under-sized stack. The pool
//! is byte-capped: cached stacks are touched memory (canaries and old frames
//! force residency), so an uncapped pool would turn virtual address reuse
//! into real RSS. Releases past the cap free the stack instead.
//!
//! Every release re-checks the canary. A clobbered canary means the fiber
//! overflowed without tripping the runtime's check; the pool counts it,
//! re-arms the canary (so [`Stack`]'s drop assertion stays quiet), and frees
//! the stack rather than recycling a potentially corrupted allocation.

use crate::stack::Stack;

/// Counters describing a [`StackPool`]'s behaviour over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackPoolStats {
    /// Acquisitions satisfied from the pool (no host allocation).
    pub hits: u64,
    /// Acquisitions that fell through to a fresh host allocation.
    pub misses: u64,
    /// Stacks returned to the pool for reuse.
    pub recycled: u64,
    /// Stacks released while the pool was at capacity (freed instead).
    pub evicted: u64,
    /// Stacks released with a clobbered canary (freed, never recycled).
    pub canary_faults: u64,
    /// Bytes currently cached in the pool.
    pub cached_bytes: u64,
    /// High-water mark of bytes cached in the pool.
    pub cached_bytes_hwm: u64,
}

impl StackPoolStats {
    /// Hit rate in `[0, 1]`; `1.0` when no acquisitions happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default cache capacity: enough for a few hundred default-sized stacks,
/// small enough that touched pages stay a rounding error next to the
/// workloads' own footprints.
pub const DEFAULT_POOL_CAP: usize = 16 * 1024 * 1024;

/// A size-classed free list of host fiber stacks. See the module docs.
#[derive(Debug, Default)]
pub struct StackPool {
    /// `(rounded size, free stacks of that size)`, a handful of entries.
    buckets: Vec<(usize, Vec<Stack>)>,
    cap_bytes: usize,
    stats: StackPoolStats,
}

impl StackPool {
    /// Creates an empty pool that will cache at most `cap_bytes` of stacks.
    ///
    /// A cap of zero disables recycling entirely: every release frees.
    pub fn new(cap_bytes: usize) -> Self {
        StackPool {
            buckets: Vec::new(),
            cap_bytes,
            stats: StackPoolStats::default(),
        }
    }

    /// Hands out a stack of (at least) `size` bytes, recycling a cached one
    /// when the exact size class has a free stack.
    pub fn acquire(&mut self, size: usize) -> Stack {
        let rounded = Stack::rounded_size(size);
        if let Some((_, free)) = self.buckets.iter_mut().find(|(s, _)| *s == rounded) {
            if let Some(mut stack) = free.pop() {
                self.stats.hits += 1;
                self.stats.cached_bytes -= stack.size() as u64;
                stack.rearm_canary();
                return stack;
            }
        }
        self.stats.misses += 1;
        Stack::new(size)
    }

    /// Returns a stack to the pool, freeing it instead when its canary is
    /// clobbered or the byte cap is reached.
    pub fn release(&mut self, mut stack: Stack) {
        if stack.check_canary().is_err() {
            self.stats.canary_faults += 1;
            // Quiet the drop assertion; the allocation is freed regardless.
            stack.rearm_canary();
            return;
        }
        let size = stack.size();
        if self.stats.cached_bytes as usize + size > self.cap_bytes {
            self.stats.evicted += 1;
            return;
        }
        self.stats.recycled += 1;
        self.stats.cached_bytes += size as u64;
        self.stats.cached_bytes_hwm = self.stats.cached_bytes_hwm.max(self.stats.cached_bytes);
        match self.buckets.iter_mut().find(|(s, _)| *s == size) {
            Some((_, free)) => free.push(stack),
            None => self.buckets.push((size, vec![stack])),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> StackPoolStats {
        self.stats
    }

    /// Number of stacks currently cached across all size classes.
    pub fn cached_count(&self) -> usize {
        self.buckets.iter().map(|(_, free)| free.len()).sum()
    }

    /// Frees every cached stack, keeping the lifetime counters.
    pub fn drain(&mut self) {
        self.buckets.clear();
        self.stats.cached_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_exact_size_classes() {
        let mut pool = StackPool::new(1 << 20);
        let a = pool.acquire(16 * 1024);
        let b = pool.acquire(32 * 1024);
        assert_eq!(pool.stats().misses, 2);
        let a_top = a.top();
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.cached_count(), 2);
        // Same size class comes back from the pool — the very allocation we
        // released, canary re-armed.
        let a2 = pool.acquire(16 * 1024);
        assert_eq!(a2.top(), a_top);
        assert!(a2.check_canary().is_ok());
        assert_eq!(pool.stats().hits, 1);
        // A different size class misses.
        let _c = pool.acquire(8 * 1024);
        assert_eq!(pool.stats().misses, 3);
    }

    #[test]
    fn byte_cap_bounds_cached_memory() {
        let mut pool = StackPool::new(40 * 1024);
        let stacks: Vec<_> = (0..4).map(|_| pool.acquire(16 * 1024)).collect();
        for s in stacks {
            pool.release(s);
        }
        // Only two 16 KiB stacks fit under the 40 KiB cap.
        assert_eq!(pool.cached_count(), 2);
        assert_eq!(pool.stats().recycled, 2);
        assert_eq!(pool.stats().evicted, 2);
        assert!(pool.stats().cached_bytes as usize <= 40 * 1024);
        assert_eq!(pool.stats().cached_bytes_hwm, 32 * 1024);
    }

    #[test]
    fn zero_cap_disables_recycling() {
        let mut pool = StackPool::new(0);
        let s = pool.acquire(8 * 1024);
        pool.release(s);
        assert_eq!(pool.cached_count(), 0);
        assert_eq!(pool.stats().evicted, 1);
        let _again = pool.acquire(8 * 1024);
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn clobbered_canary_is_never_recycled() {
        let mut pool = StackPool::new(1 << 20);
        let s = pool.acquire(8 * 1024);
        // SAFETY: writing within the allocation.
        unsafe { *s.bottom().add(1) = 0 };
        pool.release(s);
        assert_eq!(pool.stats().canary_faults, 1);
        assert_eq!(pool.cached_count(), 0);
    }

    #[test]
    fn hit_rate_tracks_acquisitions() {
        let mut pool = StackPool::new(1 << 20);
        assert_eq!(pool.stats().hit_rate(), 1.0);
        let s = pool.acquire(8 * 1024);
        pool.release(s);
        let _s = pool.acquire(8 * 1024);
        assert!((pool.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn drain_frees_but_keeps_counters() {
        let mut pool = StackPool::new(1 << 20);
        let s = pool.acquire(8 * 1024);
        pool.release(s);
        pool.drain();
        assert_eq!(pool.cached_count(), 0);
        assert_eq!(pool.stats().cached_bytes, 0);
        assert_eq!(pool.stats().recycled, 1);
    }
}
