//! Stackful user-level coroutines ("fibers") with hand-written context switching.
//!
//! This crate is the lowest-level substrate of the SC'98 Pthreads reproduction:
//! it plays the role that `setjmp`/`longjmp`-style user-level context switching
//! played inside the Solaris threads library. A [`Coroutine`] owns a private
//! call stack; [`Coroutine::resume`] transfers control onto that stack, and the
//! coroutine transfers control back by calling [`Yielder::suspend`]. Control
//! transfer is a ~20-instruction assembly routine that saves and restores the
//! callee-saved register set and swaps stack pointers — no syscalls, no heap
//! traffic, no OS scheduler involvement.
//!
//! # Example
//!
//! ```
//! use ptdf_fiber::{Coroutine, Step};
//!
//! // A coroutine that receives `u32`s, yields `&'static str`s, and returns a `String`.
//! let mut co = Coroutine::<u32, &'static str, String>::new(16 * 1024, |yielder, first| {
//!     let second = yielder.suspend("got first");
//!     let third = yielder.suspend("got second");
//!     format!("{first}+{second}+{third}")
//! });
//! assert_eq!(co.resume(1), Step::Yield("got first"));
//! assert_eq!(co.resume(2), Step::Yield("got second"));
//! assert_eq!(co.resume(3), Step::Complete("1+2+3".to_string()));
//! ```
//!
//! # Safety model
//!
//! The assembly backend (`arch`) is only built on `x86_64`; the [`Stack`] type
//! allocates 16-byte-aligned stacks with a canary region that is checked on
//! drop so that silent stack overflows are loudly reported. Dropping a
//! suspended coroutine force-unwinds its stack so that destructors of live
//! frames run (see [`ForcedUnwind`]).
//!
//! **Stack sizing:** a panic raised inside a coroutine runs the panic hook
//! (message formatting, and backtrace capture in debug builds) on the
//! coroutine's own stack, which can take tens of kilobytes. Code that may
//! panic on a fiber should use generous stacks (the 64 KiB
//! [`DEFAULT_STACK_SIZE`] is a reasonable floor; debug builds may want
//! more).

#![warn(missing_docs)]

mod coro_api;
mod pool;
mod stack;

#[cfg(all(target_arch = "x86_64", not(feature = "thread-backend")))]
mod arch;
#[cfg(all(target_arch = "x86_64", not(feature = "thread-backend")))]
mod coro;
#[cfg(all(target_arch = "x86_64", not(feature = "thread-backend")))]
pub use coro::{Coroutine, Yielder};

#[cfg(not(all(target_arch = "x86_64", not(feature = "thread-backend"))))]
mod thread_coro;
#[cfg(not(all(target_arch = "x86_64", not(feature = "thread-backend"))))]
pub use thread_coro::{Coroutine, Yielder};

pub use coro_api::{ForcedUnwind, Step};
pub use pool::{StackPool, StackPoolStats, DEFAULT_POOL_CAP};
pub use stack::{Stack, StackOverflow, DEFAULT_STACK_SIZE, MIN_STACK_SIZE};

/// True when this build's [`Coroutine`] runs on real, recyclable host stacks
/// (the assembly backend). The portable thread backend parks one OS thread
/// per coroutine instead; its `into_stack` always returns `None`, so a
/// [`StackPool`] never gets a stack back and every acquire is a miss.
pub const HAS_REAL_STACKS: bool =
    cfg!(all(target_arch = "x86_64", not(feature = "thread-backend")));

#[cfg(test)]
mod coro_tests;
#[cfg(test)]
mod prop_tests;
