//! Architecture-specific context switching.
//!
//! Only `x86_64` (System V AMD64 ABI) is supported. The switch routine saves
//! the callee-saved general-purpose registers plus the SSE/x87 control words
//! on the *current* stack, stores the resulting stack pointer through `save`,
//! loads `restore` as the new stack pointer, and unwinds the mirror-image
//! frame. All other registers are caller-saved under the ABI, so a plain
//! `extern "C"` call boundary is sufficient to make this correct.

use std::ffi::c_void;

extern "C" {
    /// Saves the current execution context (pushing callee-saved state on the
    /// current stack), writes the suspended stack pointer to `*save`, and
    /// resumes the context whose suspended stack pointer is `restore`.
    ///
    /// # Safety
    /// `restore` must be a stack pointer previously produced by this function
    /// or by [`init_stack`], and the stack it points into must be live.
    pub fn ptdf_raw_switch(save: *mut *mut c_void, restore: *mut c_void);
}

extern "C" {
    fn ptdf_trampoline();
}

/// The Rust-side entry invoked (exactly once per fiber) by the assembly
/// trampoline. `data` is the raw pointer that [`init_stack`] stashed in the
/// initial frame's `r12` slot.
///
/// The function pointer indirection keeps this module monomorphic; generic
/// dispatch happens in `coro.rs`.
#[no_mangle]
extern "C" fn ptdf_fiber_entry(data: *mut c_void) -> ! {
    // SAFETY: `data` is the `EntryThunk` pointer installed by `init_stack`.
    let thunk = unsafe { Box::from_raw(data as *mut EntryThunk) };
    (thunk.run)(thunk.payload);
    // `run` transfers control away and is never resumed; reaching here means
    // a completed fiber was switched into again, which is a runtime bug.
    std::process::abort();
}

/// Type-erased fiber entry: `run(payload)` executes the fiber body and, as its
/// final action, switches back to the resumer without returning.
pub struct EntryThunk {
    /// Monomorphic dispatcher provided by `coro.rs`.
    pub run: fn(*mut c_void),
    /// Pointer to the coroutine's shared state.
    pub payload: *mut c_void,
}

// Initial mxcsr (all exceptions masked, round-to-nearest) and x87 control
// word (64-bit precision, all exceptions masked) — the Rust/C defaults.
const INIT_MXCSR: u32 = 0x1F80;
const INIT_FCW: u16 = 0x037F;

/// Writes the bootstrap frame for a new fiber onto `stack_top` (the 16-byte
/// aligned one-past-the-end address of the stack) and returns the suspended
/// stack pointer to pass to [`ptdf_raw_switch`] for the first resume.
///
/// Frame layout (descending addresses from `stack_top`):
/// ```text
/// top-8   : 0                   — fake return address (stops unwinders)
/// top-16  : ptdf_trampoline     — `ret` target of the restore path
/// top-24  : rbp = 0
/// top-32  : rbx = 0
/// top-40  : r12 = thunk pointer — trampoline moves this into rdi
/// top-48  : r13 = 0
/// top-56  : r14 = 0
/// top-64  : r15 = 0
/// top-72  : [mxcsr:u32][fcw:u16][pad:u16]
/// ```
/// The restore path of `ptdf_raw_switch` loads the FP control words, pops the
/// six GPRs and `ret`s into the trampoline with `rsp % 16 == 8`, exactly as
/// if the trampoline had been `call`ed.
///
/// # Safety
/// `stack_top` must point one past the end of a live, 16-byte-aligned stack
/// of at least [`crate::MIN_STACK_SIZE`] bytes; `thunk` must be a valid
/// `Box::into_raw` pointer that `ptdf_fiber_entry` may consume.
pub unsafe fn init_stack(stack_top: *mut u8, thunk: *mut EntryThunk) -> *mut c_void {
    debug_assert_eq!(stack_top as usize % 16, 0);
    let top = stack_top as *mut u64;
    let word = |i: usize| top.sub(i); // top-8*i
    word(1).write(0); // fake return address
    word(2).write(ptdf_trampoline as *const () as usize as u64);
    word(3).write(0); // rbp
    word(4).write(0); // rbx
    word(5).write(thunk as u64); // r12
    word(6).write(0); // r13
    word(7).write(0); // r14
    word(8).write(0); // r15
    let fpw: u64 = (INIT_MXCSR as u64) | ((INIT_FCW as u64) << 32);
    word(9).write(fpw);
    word(9) as *mut c_void
}

std::arch::global_asm!(
    // ptdf_raw_switch(save: *mut *mut c_void /* rdi */, restore: *mut c_void /* rsi */)
    ".text",
    ".balign 16",
    ".globl ptdf_raw_switch",
    ".type ptdf_raw_switch,@function",
    "ptdf_raw_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "sub rsp, 8",
    "stmxcsr [rsp]",
    "fnstcw [rsp + 4]",
    "mov [rdi], rsp", // publish suspended SP
    "mov rsp, rsi",   // adopt peer's suspended SP
    "ldmxcsr [rsp]",
    "fldcw [rsp + 4]",
    "add rsp, 8",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    ".size ptdf_raw_switch, . - ptdf_raw_switch",
    // First-resume target: forward the thunk pointer (parked in r12 by
    // init_stack) to ptdf_fiber_entry on a 16-byte aligned stack.
    ".balign 16",
    ".globl ptdf_trampoline",
    ".type ptdf_trampoline,@function",
    "ptdf_trampoline:",
    "mov rdi, r12",
    "xor ebp, ebp", // terminate the frame-pointer chain for unwinders
    "and rsp, -16",
    "call ptdf_fiber_entry",
    "ud2",
    ".size ptdf_trampoline, . - ptdf_trampoline",
);
