//! Backend-agnostic coroutine tests: run against whichever backend is
//! selected (assembly on x86_64, OS threads elsewhere or with
//! `--features thread-backend`).

use crate::{Coroutine, Step};
use std::panic::{catch_unwind, AssertUnwindSafe};

mod inner {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn basic_yield_and_complete() {
        let mut co = Coroutine::<i32, i32, i32>::new(16 * 1024, |y, mut v| {
            for _ in 0..3 {
                v = y.suspend(v * 2);
            }
            v + 100
        });
        assert_eq!(co.resume(1), Step::Yield(2));
        assert_eq!(co.resume(2), Step::Yield(4));
        assert_eq!(co.resume(3), Step::Yield(6));
        assert_eq!(co.resume(4), Step::Complete(104));
        assert!(co.is_done());
    }

    #[test]
    fn immediate_complete() {
        let mut co = Coroutine::<(), (), u64>::new(16 * 1024, |_, ()| 42);
        assert_eq!(co.resume(()), Step::Complete(42));
    }

    #[test]
    fn deep_recursion_on_fiber_stack() {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                n
            } else {
                fib(n - 1) + fib(n - 2)
            }
        }
        let mut co = Coroutine::<(), (), u64>::new(64 * 1024, |y, ()| {
            let a = fib(20);
            y.suspend(());
            a + fib(10)
        });
        assert_eq!(co.resume(()), Step::Yield(()));
        assert_eq!(co.resume(()), Step::Complete(6765 + 55));
        co.stack().check_canary().unwrap();
    }

    #[test]
    fn panic_propagates_to_resumer() {
        // Note the generous stack: the panic hook (message formatting,
        // backtrace capture in debug builds) runs on the fiber's own stack.
        let mut co = Coroutine::<(), (), ()>::new(256 * 1024, |_, ()| {
            panic!("boom from fiber");
        });
        let err = catch_unwind(AssertUnwindSafe(|| co.resume(()))).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom from fiber");
        assert!(co.is_done());
    }

    #[test]
    fn drop_of_fresh_coroutine_releases_closure() {
        let flag = Rc::new(RefCell::new(false));
        let f2 = flag.clone();
        let co = Coroutine::<(), (), ()>::new(16 * 1024, move |_, ()| {
            *f2.borrow_mut() = true;
        });
        drop(co);
        assert!(!*flag.borrow(), "body must not run");
        assert_eq!(Rc::strong_count(&flag), 1, "captured state must be freed");
    }

    #[test]
    fn drop_of_suspended_coroutine_runs_destructors() {
        struct Tracker(Rc<RefCell<u32>>);
        impl Drop for Tracker {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let count = Rc::new(RefCell::new(0));
        let c2 = count.clone();
        let mut co = Coroutine::<(), (), ()>::new(16 * 1024, move |y, ()| {
            let _t = Tracker(c2);
            y.suspend(());
            y.suspend(()); // never reached
        });
        assert_eq!(co.resume(()), Step::Yield(()));
        drop(co);
        assert_eq!(*count.borrow(), 1, "live frame destructor must run");
    }

    #[test]
    fn many_coroutines_interleaved() {
        let n = 100;
        let mut cos: Vec<_> = (0..n)
            .map(|i| {
                Coroutine::<u64, u64, u64>::new(8 * 1024, move |y, mut acc| {
                    for round in 0..5u64 {
                        acc = y.suspend(acc + i + round);
                    }
                    acc
                })
            })
            .collect();
        let mut vals = vec![0u64; n as usize];
        for round in 0..5 {
            for (i, co) in cos.iter_mut().enumerate() {
                vals[i] = co.resume(vals[i]).unwrap_yield();
                assert_eq!(vals[i], i as u64 + round);
                vals[i] = 0;
            }
        }
        for co in cos.iter_mut() {
            assert_eq!(co.resume(7), Step::Complete(7));
        }
    }

    #[test]
    fn float_state_preserved_across_switch() {
        let mut co = Coroutine::<f64, f64, f64>::new(16 * 1024, |y, x| {
            let a = x * 1.5 + 0.25;
            let b = y.suspend(a);
            (a + b).sqrt()
        });
        let a = co.resume(2.0).unwrap_yield();
        assert_eq!(a, 3.25);
        let r = co.resume(1.0 / 3.0).unwrap_complete();
        assert!((r - (3.25 + 1.0 / 3.0f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "completed coroutine")]
    fn resume_after_complete_panics() {
        let mut co = Coroutine::<(), (), ()>::new(16 * 1024, |_, ()| ());
        co.resume(()).unwrap_complete();
        co.resume(());
    }

    #[test]
    fn nested_coroutines() {
        let mut outer = Coroutine::<(), u32, u32>::new(32 * 1024, |y, ()| {
            let mut inner = Coroutine::<(), u32, u32>::new(16 * 1024, |yi, ()| {
                yi.suspend(10);
                20
            });
            let ten = inner.resume(()).unwrap_yield();
            y.suspend(ten);
            inner.resume(()).unwrap_complete()
        });
        assert_eq!(outer.resume(()), Step::Yield(10));
        assert_eq!(outer.resume(()), Step::Complete(20));
    }
}
