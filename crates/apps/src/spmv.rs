//! Sparse matrix–vector product (paper §5.1.5, after the Spark98 kernels).
//!
//! Times `iters` iterations of `w = M·v` for a sparse unsymmetric matrix
//! generated from a synthetic 2-D triangulated finite-element-style mesh
//! with the same dimensions as the paper's San Fernando earthquake mesh
//! (30,169 rows, ~151k nonzeros).
//!
//! * **Coarse-grained** (the original Spark98 style): one thread per
//!   processor for the whole run, rows partitioned so each thread gets
//!   roughly equal *nonzeros*, a barrier between iterations.
//! * **Fine-grained** (the paper's rewrite): 128 threads created and
//!   destroyed *every iteration*, rows split equally by count — the
//!   scheduler balances the irregular row weights.

use crate::util::{charge_flops_irregular, region, salt, uniform01, SharedSlice};
use ptdf::Barrier;

/// Compressed sparse row matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of rows/columns.
    pub n: usize,
    /// Row start offsets (len n+1).
    pub row_ptr: Vec<u32>,
    /// Column indices.
    pub col: Vec<u32>,
    /// Values.
    pub val: Vec<f64>,
}

impl Csr {
    /// Number of nonzeros.
    pub fn nnz(&self) -> usize {
        self.col.len()
    }

    /// Nonzeros in row `i`.
    pub fn row_nnz(&self, i: usize) -> usize {
        (self.row_ptr[i + 1] - self.row_ptr[i]) as usize
    }
}

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of mesh nodes (matrix dimension).
    pub nodes: usize,
    /// Mesh strip width (grid columns).
    pub width: usize,
    /// Iterations of `w = M·v`.
    pub iters: usize,
    /// Fine-grained thread count per iteration.
    pub fine_threads: usize,
    /// Seed.
    pub seed: u64,
}

impl Params {
    /// The paper's scale: 30,169 nodes (~151k nonzeros), 20 iterations,
    /// 128 threads per iteration.
    pub fn paper() -> Self {
        Params {
            nodes: 30_169,
            width: 173,
            iters: 20,
            fine_threads: 128,
            seed: 0x5A,
        }
    }

    /// Scaled-down configuration (per-thread nnz kept near the paper's
    /// 151k/128 ratio so the overhead-to-work balance is comparable).
    pub fn small() -> Self {
        Params {
            nodes: 10_000,
            width: 100,
            iters: 10,
            fine_threads: 64,
            seed: 0x5A,
        }
    }
}

/// Generates the synthetic FE-style mesh matrix: nodes on a `width`-wide
/// triangulated strip, each connected to its grid neighbours
/// (left/right/up/down and one diagonal), plus the diagonal entry. A band
/// of "graded refinement" rows gets extra couplings so row weights are
/// irregular, as in a real mesh around the fault.
pub fn gen_matrix(p: &Params) -> Csr {
    let n = p.nodes;
    let w = p.width;
    let mut s = p.seed;
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col: Vec<u32> = Vec::new();
    let mut val: Vec<f64> = Vec::new();
    row_ptr.push(0u32);
    for i in 0..n {
        let mut cols: Vec<usize> = vec![i];
        let neigh = [
            i.wrapping_sub(1),
            i + 1,
            i.wrapping_sub(w),
            i + w,
            i + w + 1,
            i.wrapping_sub(w + 1),
        ];
        for &j in &neigh {
            if j < n && j != i {
                // Keep the strip structure: ±1 must stay on the same row of
                // the grid.
                let same_strip_ok = (j != i + 1 || (i % w) != w - 1)
                    && (j != i.wrapping_sub(1) || (i % w) != 0);
                if same_strip_ok {
                    cols.push(j);
                }
            }
        }
        // Graded region: ~10% of nodes get 2-6 extra long-range couplings.
        if uniform01(&mut s) < 0.10 {
            let extra = 2 + (crate::util::splitmix64(&mut s) % 5) as usize;
            for _ in 0..extra {
                let j = (crate::util::splitmix64(&mut s) % n as u64) as usize;
                if j != i {
                    cols.push(j);
                }
            }
        }
        cols.sort_unstable();
        cols.dedup();
        for j in cols {
            col.push(j as u32);
            val.push(uniform01(&mut s) * 2.0 - 1.0);
        }
        row_ptr.push(col.len() as u32);
    }
    Csr {
        n,
        row_ptr,
        col,
        val,
    }
}

/// Random dense vector.
pub fn gen_vector(p: &Params) -> Vec<f64> {
    let mut s = p.seed ^ 0xDEAD;
    (0..p.nodes).map(|_| uniform01(&mut s) * 2.0 - 1.0).collect()
}

/// Multiplies rows `[lo, hi)` of `m` by `v` into `w`, charging modelled
/// costs and declaring locality.
fn rows_kernel(m: &Csr, v: &[f64], w: SharedSlice, lo: usize, hi: usize) {
    let mut nnz = 0u64;
    ptdf::touch(region(salt::SPMV, (lo / 256) as u64), ((hi - lo) * 64) as u64);
    for i in lo..hi {
        let (a, b) = (m.row_ptr[i] as usize, m.row_ptr[i + 1] as usize);
        let mut acc = 0.0;
        for k in a..b {
            acc += m.val[k] * v[m.col[k] as usize];
        }
        // SAFETY: row ranges of concurrently-live threads are disjoint.
        unsafe { w.set(i, acc) };
        nnz += (b - a) as u64;
    }
    charge_flops_irregular(2 * nnz + (hi - lo) as u64);
}

/// Fine-grained product: `iters` iterations, each forking
/// `p.fine_threads` threads (as a binary tree) over equal row ranges.
pub fn run_fine(m: &Csr, v: &[f64], p: &Params) -> Vec<f64> {
    let mut w = vec![0.0; m.n];
    let t = p.fine_threads.max(1);
    for _ in 0..p.iters {
        let wv = SharedSlice::new(&mut w);
        crate::util::fork_each(0, t, |j| {
            let lo = j * m.n / t;
            let hi = (j + 1) * m.n / t;
            rows_kernel(m, v, wv, lo, hi);
        });
    }
    w
}

/// Partitions rows into `parts` contiguous ranges of roughly equal nonzeros
/// (the Spark98 coarse-grained strategy).
pub fn nnz_partition(m: &Csr, parts: usize) -> Vec<(usize, usize)> {
    let total = m.nnz();
    let per = total.div_ceil(parts.max(1));
    let mut ranges = Vec::with_capacity(parts);
    let mut lo = 0;
    let mut acc = 0usize;
    for i in 0..m.n {
        acc += m.row_nnz(i);
        if acc >= per && ranges.len() + 1 < parts {
            ranges.push((lo, i + 1));
            lo = i + 1;
            acc = 0;
        }
    }
    ranges.push((lo, m.n));
    while ranges.len() < parts {
        ranges.push((m.n, m.n));
    }
    ranges
}

/// Coarse-grained product: one long-lived thread per processor, nnz-balanced
/// static partition, barrier per iteration.
pub fn run_coarse(m: &Csr, v: &[f64], p: &Params, procs: usize) -> Vec<f64> {
    let mut w = vec![0.0; m.n];
    let ranges = nnz_partition(m, procs);
    let barrier = Barrier::new(procs);
    let iters = p.iters;
    {
        let wv = SharedSlice::new(&mut w);
        ptdf::scope(|s| {
            for &(lo, hi) in &ranges {
                let barrier = barrier.clone();
                s.spawn(move || {
                    for _ in 0..iters {
                        rows_kernel(m, v, wv, lo, hi);
                        barrier.wait();
                    }
                });
            }
        });
    }
    w
}

/// Reference dense product for verification.
pub fn reference(m: &Csr, v: &[f64]) -> Vec<f64> {
    let mut w = vec![0.0; m.n];
    for (i, wi) in w.iter_mut().enumerate() {
        for k in m.row_ptr[i] as usize..m.row_ptr[i + 1] as usize {
            *wi += m.val[k] * v[m.col[k] as usize];
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    fn small() -> (Csr, Vec<f64>, Params) {
        let p = Params {
            nodes: 500,
            width: 23,
            iters: 3,
            fine_threads: 16,
            seed: 9,
        };
        let m = gen_matrix(&p);
        let v = gen_vector(&p);
        (m, v, p)
    }

    #[test]
    fn matrix_shape_is_sane() {
        let p = Params::paper();
        let m = gen_matrix(&p);
        assert_eq!(m.n, 30_169);
        let avg = m.nnz() as f64 / m.n as f64;
        assert!(
            (4.0..9.0).contains(&avg),
            "average row degree {avg} out of range (nnz = {})",
            m.nnz()
        );
        // Irregular: some rows much heavier than the average.
        let max_row = (0..m.n).map(|i| m.row_nnz(i)).max().unwrap();
        assert!(max_row >= 10);
        // Column indices valid.
        assert!(m.col.iter().all(|&c| (c as usize) < m.n));
    }

    #[test]
    fn fine_matches_reference() {
        let (m, v, p) = small();
        let want = reference(&m, &v);
        for kind in [SchedKind::Fifo, SchedKind::Df] {
            let (got, _) = ptdf::run(Config::new(4, kind), {
                let (m, v) = (m.clone(), v.clone());
                move || run_fine(&m, &v, &p)
            });
            assert_eq!(got, want, "{kind:?}");
        }
    }

    #[test]
    fn coarse_matches_reference() {
        let (m, v, p) = small();
        let want = reference(&m, &v);
        let (got, _) = ptdf::run(Config::new(4, SchedKind::Fifo), {
            let (m, v) = (m.clone(), v.clone());
            move || run_coarse(&m, &v, &p, 4)
        });
        assert_eq!(got, want);
    }

    #[test]
    fn nnz_partition_balances() {
        let p = Params::paper();
        let m = gen_matrix(&p);
        let parts = nnz_partition(&m, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[7].1, m.n);
        let weights: Vec<usize> = parts
            .iter()
            .map(|&(lo, hi)| (lo..hi).map(|i| m.row_nnz(i)).sum())
            .collect();
        let max = *weights.iter().max().unwrap() as f64;
        let min = *weights.iter().min().unwrap() as f64;
        assert!(max / min.max(1.0) < 1.3, "imbalance {weights:?}");
        // Contiguity.
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn fine_creates_threads_every_iteration() {
        let (m, v, p) = small();
        let (_, report) = ptdf::run(Config::new(2, SchedKind::Df), {
            let (m, v) = (m.clone(), v.clone());
            move || run_fine(&m, &v, &p)
        });
        // Binary-tree fork: 15 threads per iteration (the forker runs one
        // task itself) × 3 iterations + root.
        assert_eq!(report.total_threads, 15 * 3 + 1);
        // But never more than one iteration's worth live at once.
        assert!(report.max_live_threads() <= 17 + 1);
    }

    #[test]
    fn serial_mode_matches() {
        let (m, v, p) = small();
        let want = reference(&m, &v);
        let (got, _) =
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || run_fine(&m, &v, &p));
        assert_eq!(got, want);
    }
}
