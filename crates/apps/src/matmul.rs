//! Dense matrix multiply: the paper's running example (§3, Figure 4).
//!
//! A block-based divide-and-conquer algorithm with dynamic parallelism:
//! each recursive call forks eight child threads for the quadrant products
//! (four into `C`, four into a freshly allocated temporary `T`), joins them,
//! and adds `T` into `C` with a parallel divide-and-conquer add. The
//! recursion switches to an efficient serial kernel at `base × base` blocks
//! (64 on the reference machine), which amortizes thread overheads.
//!
//! The temporaries are what make this benchmark space-interesting: a
//! breadth-first (FIFO) schedule allocates *every* level's temporaries at
//! once (~120 MB at n = 1024), while a depth-first schedule holds one path's
//! worth (~11 MB) — the contrast of the paper's Figures 5b and 7b.

use ptdf::TrackedBuf;

use crate::util::{charge_flops_dense, region, salt, uniform01, SharedSlice};

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Matrix dimension (power of two).
    pub n: usize,
    /// Serial base-case block size (power of two, ≤ n).
    pub base: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration: 1024×1024, base 64.
    pub fn paper() -> Self {
        Params {
            n: 1024,
            base: 64,
            seed: 0xA1,
        }
    }

    /// A scaled-down configuration for quick runs. The base block stays at
    /// the paper's 64 so the per-thread work (and hence the thread-overhead
    /// ratio that drives the scheduling effects) matches the paper; only
    /// the recursion depth shrinks.
    pub fn small() -> Self {
        Params {
            n: 512,
            base: 64,
            seed: 0xA1,
        }
    }

    /// Total multiply flops (2n³), ignoring the add temporaries.
    pub fn flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }
}

/// Generates two random `n×n` matrices (row-major).
pub fn gen_input(p: &Params) -> (Vec<f64>, Vec<f64>) {
    assert!(p.n.is_power_of_two() && p.base.is_power_of_two() && p.base <= p.n);
    let mut state = p.seed;
    let gen = |state: &mut u64| {
        (0..p.n * p.n)
            .map(|_| uniform01(state) * 2.0 - 1.0)
            .collect::<Vec<f64>>()
    };
    let a = gen(&mut state);
    let b = gen(&mut state);
    (a, b)
}

/// A square sub-block of a row-major `n×n` matrix.
#[derive(Clone, Copy, Debug)]
struct Sub {
    buf: SharedSlice,
    /// Row stride of the underlying buffer.
    stride: usize,
    row: usize,
    col: usize,
}

impl Sub {
    fn quad(self, half: usize, qi: usize, qj: usize) -> Sub {
        Sub {
            row: self.row + qi * half,
            col: self.col + qj * half,
            ..self
        }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        (self.row + i) * self.stride + (self.col + j)
    }
}

/// `C = A × B` with the paper's divide-and-conquer algorithm. Runs in any
/// execution mode (parallel runtime, serial baseline, or standalone).
pub fn multiply(a: &[f64], b: &[f64], p: &Params) -> Vec<f64> {
    let n = p.n;
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let mut c = TrackedBuf::<f64>::zeroed(n * n);
    // Inputs are logically read-only during the multiply; the shared-view
    // idiom wants owned, mutable buffers to point into. They are tracked so
    // the space figures include the input matrices, as the paper's do.
    let mut a_copy = TrackedBuf::from_vec(a.to_vec());
    let mut b_copy = TrackedBuf::from_vec(b.to_vec());
    {
        let av = Sub {
            buf: SharedSlice::new(&mut a_copy),
            stride: n,
            row: 0,
            col: 0,
        };
        let bv = Sub {
            buf: SharedSlice::new(&mut b_copy),
            stride: n,
            row: 0,
            col: 0,
        };
        let cv = Sub {
            buf: SharedSlice::new(&mut c),
            stride: n,
            row: 0,
            col: 0,
        };
        mm(av, bv, cv, n, p.base, 1);
    }
    c.into_vec()
}

/// Recursive multiply: `C += A × B` over `size × size` blocks.
fn mm(a: Sub, b: Sub, c: Sub, size: usize, base: usize, path: u64) {
    if size <= base {
        serial_mult(a, b, c, size, base);
        return;
    }
    let h = size / 2;
    // Temporary T for the second half of the quadrant products.
    let mut t_buf = TrackedBuf::<f64>::zeroed(size * size);
    let tv = Sub {
        buf: SharedSlice::new(&mut t_buf),
        stride: size,
        row: 0,
        col: 0,
    };
    let tasks: [(Sub, Sub, Sub); 8] = [
        (a.quad(h, 0, 0), b.quad(h, 0, 0), c.quad(h, 0, 0)), // A11*B11 -> C11
        (a.quad(h, 0, 0), b.quad(h, 0, 1), c.quad(h, 0, 1)), // A11*B12 -> C12
        (a.quad(h, 1, 0), b.quad(h, 0, 0), c.quad(h, 1, 0)), // A21*B11 -> C21
        (a.quad(h, 1, 0), b.quad(h, 0, 1), c.quad(h, 1, 1)), // A21*B12 -> C22
        (a.quad(h, 0, 1), b.quad(h, 1, 0), tv.quad(h, 0, 0)), // A12*B21 -> T11
        (a.quad(h, 0, 1), b.quad(h, 1, 1), tv.quad(h, 0, 1)), // A12*B22 -> T12
        (a.quad(h, 1, 1), b.quad(h, 1, 0), tv.quad(h, 1, 0)), // A22*B21 -> T21
        (a.quad(h, 1, 1), b.quad(h, 1, 1), tv.quad(h, 1, 1)), // A22*B22 -> T22
    ];
    let handles: Vec<_> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, (ta, tb, tc))| {
            let child_path = path * 8 + i as u64;
            ptdf::spawn(move || mm(ta, tb, tc, h, base, child_path))
        })
        .collect();
    for hdl in handles {
        hdl.join();
    }
    matrix_add(tv, c, size, base, path);
    drop(t_buf);
}

/// Serial base-case kernel: `C += A × B` on a `size × size` block (ikj
/// order). Charges the modelled flops and declares block locality.
fn serial_mult(a: Sub, b: Sub, c: Sub, size: usize, base: usize) {
    touch_block(salt::MATMUL_A, &a, size, base);
    touch_block(salt::MATMUL_B, &b, size, base);
    touch_block(salt::MATMUL_C, &c, size, base);
    for i in 0..size {
        for k in 0..size {
            // SAFETY: a is only read; indices in-block (see SharedSlice).
            let aik = unsafe { a.buf.get(a.idx(i, k)) };
            for j in 0..size {
                // SAFETY: C blocks of concurrently-live threads are disjoint
                // quadrants; A/B are read-only during the multiply.
                unsafe {
                    let v = b.buf.get(b.idx(k, j));
                    c.buf.add_assign(c.idx(i, j), aik * v);
                }
            }
        }
    }
    charge_flops_dense(2 * (size as u64).pow(3));
}

/// Parallel divide-and-conquer `C += T` (the paper's `Matrix_Add`).
fn matrix_add(t: Sub, c: Sub, size: usize, base: usize, path: u64) {
    if size <= base {
        touch_block(salt::MATMUL_C, &c, size, base);
        for i in 0..size {
            for j in 0..size {
                // SAFETY: disjoint quadrants per live thread.
                unsafe {
                    let v = t.buf.get(t.idx(i, j));
                    c.buf.add_assign(c.idx(i, j), v);
                }
            }
        }
        charge_flops_dense((size * size) as u64);
        return;
    }
    let h = size / 2;
    let handles: Vec<_> = (0..4)
        .map(|q| {
            let (qi, qj) = (q / 2, q % 2);
            let tq = t.quad(h, qi, qj);
            let cq = c.quad(h, qi, qj);
            let child_path = path * 8 + 4 + q as u64;
            ptdf::spawn(move || matrix_add(tq, cq, h, base, child_path))
        })
        .collect();
    for hdl in handles {
        hdl.join();
    }
}

fn touch_block(s: u64, m: &Sub, size: usize, base: usize) {
    // One region per base-block, addressed by absolute block coordinates.
    let id = ((m.row / base.max(1)) as u64) << 20 | (m.col / base.max(1)) as u64;
    ptdf::touch(region(s, id), (size * size * 8) as u64);
}

// ---------------------------------------------------------------------------
// Strassen's algorithm (the paper's §3 aside: "the more complex but
// asymptotically faster Strassen's matrix multiply can also be implemented
// in a similar divide-and-conquer fashion with a few extra lines of code").
// Seven recursive products over explicitly allocated temporaries — even more
// allocation-intensive than the standard algorithm, which makes it a
// stress case for the space-efficient scheduler.
// ---------------------------------------------------------------------------

/// `C = A × B` by Strassen's algorithm with a thread per recursive product.
/// Falls back to the serial kernel at `p.base`.
pub fn strassen(a: &[f64], b: &[f64], p: &Params) -> Vec<f64> {
    let n = p.n;
    assert_eq!(a.len(), n * n);
    assert_eq!(b.len(), n * n);
    let out = strassen_rec(a, b, n, p.base, 1);
    out.into_vec()
}

/// Contiguous `size×size` helpers for the Strassen recursion.
fn quad_copy(src: &[f64], size: usize, qi: usize, qj: usize) -> TrackedBuf<f64> {
    let h = size / 2;
    let mut out = TrackedBuf::<f64>::zeroed(h * h);
    for i in 0..h {
        let s = (qi * h + i) * size + qj * h;
        out[i * h..(i + 1) * h].copy_from_slice(&src[s..s + h]);
    }
    charge_flops_dense((h * h) as u64 / 4);
    out
}

fn mat_add(x: &[f64], y: &[f64]) -> TrackedBuf<f64> {
    charge_flops_dense(x.len() as u64);
    TrackedBuf::from_vec(x.iter().zip(y).map(|(a, b)| a + b).collect())
}

fn mat_sub(x: &[f64], y: &[f64]) -> TrackedBuf<f64> {
    charge_flops_dense(x.len() as u64);
    TrackedBuf::from_vec(x.iter().zip(y).map(|(a, b)| a - b).collect())
}

fn strassen_rec(a: &[f64], b: &[f64], size: usize, base: usize, path: u64) -> TrackedBuf<f64> {
    if size <= base {
        // Serial kernel on contiguous blocks.
        let mut c = TrackedBuf::<f64>::zeroed(size * size);
        for i in 0..size {
            for k in 0..size {
                let aik = a[i * size + k];
                for j in 0..size {
                    c[i * size + j] += aik * b[k * size + j];
                }
            }
        }
        charge_flops_dense(2 * (size as u64).pow(3));
        ptdf::touch(
            region(salt::MATMUL_C, 0x5752A55E ^ path),
            (size * size * 24) as u64,
        );
        return c;
    }
    let h = size / 2;
    let a11 = quad_copy(a, size, 0, 0);
    let a12 = quad_copy(a, size, 0, 1);
    let a21 = quad_copy(a, size, 1, 0);
    let a22 = quad_copy(a, size, 1, 1);
    let b11 = quad_copy(b, size, 0, 0);
    let b12 = quad_copy(b, size, 0, 1);
    let b21 = quad_copy(b, size, 1, 0);
    let b22 = quad_copy(b, size, 1, 1);

    // The seven Strassen operand pairs.
    let s1a = mat_add(&a11, &a22);
    let s1b = mat_add(&b11, &b22);
    let s2a = mat_add(&a21, &a22);
    let s3b = mat_sub(&b12, &b22);
    let s4b = mat_sub(&b21, &b11);
    let s5a = mat_add(&a11, &a12);
    let s6a = mat_sub(&a21, &a11);
    let s6b = mat_add(&b11, &b12);
    let s7a = mat_sub(&a12, &a22);
    let s7b = mat_add(&b21, &b22);

    let mut ms: [Option<TrackedBuf<f64>>; 7] = Default::default();
    {
        let (m1s, rest) = ms.split_at_mut(1);
        let (m2s, rest) = rest.split_at_mut(1);
        let (m3s, rest) = rest.split_at_mut(1);
        let (m4s, rest) = rest.split_at_mut(1);
        let (m5s, rest) = rest.split_at_mut(1);
        let (m6s, m7s) = rest.split_at_mut(1);
        ptdf::scope(|s| {
            s.spawn(|| m1s[0] = Some(strassen_rec(&s1a, &s1b, h, base, path * 8 + 1)));
            s.spawn(|| m2s[0] = Some(strassen_rec(&s2a, &b11, h, base, path * 8 + 2)));
            s.spawn(|| m3s[0] = Some(strassen_rec(&a11, &s3b, h, base, path * 8 + 3)));
            s.spawn(|| m4s[0] = Some(strassen_rec(&a22, &s4b, h, base, path * 8 + 4)));
            s.spawn(|| m5s[0] = Some(strassen_rec(&s5a, &b22, h, base, path * 8 + 5)));
            s.spawn(|| m6s[0] = Some(strassen_rec(&s6a, &s6b, h, base, path * 8 + 6)));
            m7s[0] = Some(strassen_rec(&s7a, &s7b, h, base, path * 8 + 7));
        });
    }
    let [m1, m2, m3, m4, m5, m6, m7] = ms.map(|m| m.expect("product computed"));

    // Assemble C from the products.
    let mut c = TrackedBuf::<f64>::zeroed(size * size);
    for i in 0..h {
        for j in 0..h {
            let k = i * h + j;
            c[i * size + j] = m1[k] + m4[k] - m5[k] + m7[k]; // C11
            c[i * size + j + h] = m3[k] + m5[k]; // C12
            c[(i + h) * size + j] = m2[k] + m4[k]; // C21
            c[(i + h) * size + j + h] = m1[k] - m2[k] + m3[k] + m6[k]; // C22
        }
    }
    charge_flops_dense(8 * (h * h) as u64);
    c
}

/// Naive reference multiply (no charging) for verification.
pub fn reference(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for i in 0..n {
        for k in 0..n {
            let aik = a[i * n + k];
            for j in 0..n {
                c[i * n + j] += aik * b[k * n + j];
            }
        }
    }
    c
}

/// Maximum absolute elementwise difference.
pub fn max_abs_diff(x: &[f64], y: &[f64]) -> f64 {
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn standalone_matches_reference() {
        let p = Params {
            n: 64,
            base: 16,
            seed: 3,
        };
        let (a, b) = gen_input(&p);
        let c = multiply(&a, &b, &p);
        let r = reference(&a, &b, p.n);
        assert!(max_abs_diff(&c, &r) < 1e-9);
    }

    #[test]
    fn parallel_matches_reference_under_all_schedulers() {
        let p = Params {
            n: 64,
            base: 16,
            seed: 4,
        };
        let (a, b) = gen_input(&p);
        let r = reference(&a, &b, p.n);
        for kind in [SchedKind::Fifo, SchedKind::Lifo, SchedKind::Df, SchedKind::Ws] {
            let (c, _) = ptdf::run(Config::new(4, kind), {
                let (a, b) = (a.clone(), b.clone());
                move || multiply(&a, &b, &p)
            });
            assert!(max_abs_diff(&c, &r) < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn base_equal_n_is_pure_serial_kernel() {
        let p = Params {
            n: 32,
            base: 32,
            seed: 5,
        };
        let (a, b) = gen_input(&p);
        let c = multiply(&a, &b, &p);
        let r = reference(&a, &b, p.n);
        assert!(max_abs_diff(&c, &r) < 1e-9);
    }

    #[test]
    fn df_footprint_far_below_fifo() {
        let p = Params {
            n: 128,
            base: 16,
            seed: 6,
        };
        let (a, b) = gen_input(&p);
        let run_with = |kind| {
            let (a, b) = (a.clone(), b.clone());
            let (_, report) = ptdf::run(Config::new(4, kind), move || multiply(&a, &b, &p));
            report
        };
        let fifo = run_with(SchedKind::Fifo);
        let df = run_with(SchedKind::Df);
        assert!(
            df.footprint() < fifo.footprint() / 2,
            "df {} vs fifo {}",
            df.footprint(),
            fifo.footprint()
        );
        assert!(df.max_live_threads() < fifo.max_live_threads() / 4);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_inputs_rejected() {
        let p = Params {
            n: 100,
            base: 10,
            seed: 0,
        };
        let _ = gen_input(&p);
    }

    #[test]
    fn strassen_matches_reference() {
        let p = Params {
            n: 128,
            base: 16,
            seed: 21,
        };
        let (a, b) = gen_input(&p);
        let r = reference(&a, &b, p.n);
        let c = strassen(&a, &b, &p);
        assert!(max_abs_diff(&c, &r) < 1e-8, "standalone strassen");
        for kind in [SchedKind::Fifo, SchedKind::Df, SchedKind::Ws] {
            let (c, report) = ptdf::run(Config::new(4, kind), {
                let (a, b) = (a.clone(), b.clone());
                move || strassen(&a, &b, &p)
            });
            assert!(max_abs_diff(&c, &r) < 1e-8, "{kind:?}");
            assert!(report.total_threads > 40, "{kind:?} forks 7-way tree");
        }
    }

    #[test]
    fn strassen_space_discipline() {
        let p = Params {
            n: 128,
            base: 16,
            seed: 22,
        };
        let (a, b) = gen_input(&p);
        let run_with = |kind| {
            let (a, b) = (a.clone(), b.clone());
            ptdf::run(Config::new(4, kind), move || strassen(&a, &b, &p)).1
        };
        let fifo = run_with(SchedKind::Fifo);
        let df = run_with(SchedKind::Df);
        assert!(
            df.footprint() < fifo.footprint(),
            "df {} vs fifo {}",
            df.footprint(),
            fifo.footprint()
        );
    }

    #[test]
    fn serial_mode_runs_the_same_code() {
        let p = Params {
            n: 64,
            base: 16,
            seed: 7,
        };
        let (a, b) = gen_input(&p);
        let r = reference(&a, &b, p.n);
        let (c, report) = ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
            multiply(&a, &b, &p)
        });
        assert!(max_abs_diff(&c, &r) < 1e-9);
        assert_eq!(report.stats.mem.threads_created, 0);
        assert!(report.time.as_ns() > 0);
    }
}
