//! Volume rendering by ray casting (paper §5.1.6, after the SPLASH-2
//! `volrend` application).
//!
//! A `256³` voxel volume is rendered into a `375²` image by casting one ray
//! per pixel, sampling the volume front-to-back with trilinear
//! interpolation, compositing opacity, and terminating rays early once
//! nearly opaque. A min-max octree over the volume skips empty space. The
//! image plane is divided into 4×4-pixel tiles (8,836 tiles at full size):
//!
//! * **Fine-grained** (the paper's rewrite): one thread per group of
//!   `tiles_per_thread` tiles (64 in Figure 8; swept 10–260 in Figure 11).
//! * **Coarse-grained** (SPLASH-2): one thread per processor owning a
//!   contiguous block of tiles, with explicit task queues and stealing via
//!   mutexes.
//!
//! The paper's CT-head dataset is proprietary; [`gen_volume`] builds a
//! synthetic head phantom (nested ellipsoid shells: skin, skull, brain,
//! ventricles) with the same dimensions and non-uniformity (see DESIGN.md).

use ptdf::Mutex;

use crate::util::{charge_flops_irregular, region, salt, SharedBuf};

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Volume edge length (voxels).
    pub size: usize,
    /// Image edge length (pixels).
    pub image: usize,
    /// Tile edge (pixels); the paper uses 4.
    pub tile: usize,
    /// Tiles per fine-grained thread (Figure 11's granularity knob).
    pub tiles_per_thread: usize,
    /// Early-termination opacity threshold.
    pub opacity_cutoff: f32,
    /// View angle (radians) around the vertical axis.
    pub view_angle: f32,
}

impl Params {
    /// The paper's scale: 256³ volume, 375² image, 4×4 tiles, 64
    /// tiles/thread.
    pub fn paper() -> Self {
        Params {
            size: 256,
            image: 375,
            tile: 4,
            tiles_per_thread: 64,
            opacity_cutoff: 0.98,
            view_angle: 0.5,
        }
    }

    /// Scaled-down configuration.
    pub fn small() -> Self {
        Params {
            size: 64,
            image: 96,
            tile: 4,
            tiles_per_thread: 16,
            opacity_cutoff: 0.98,
            view_angle: 0.5,
        }
    }

    /// Number of tiles along one image edge.
    pub fn tiles_per_side(&self) -> usize {
        self.image.div_ceil(self.tile)
    }

    /// Total tile count.
    pub fn total_tiles(&self) -> usize {
        self.tiles_per_side() * self.tiles_per_side()
    }
}

/// A density volume (u8 voxels) with a min-max octree.
#[derive(Debug, Clone)]
pub struct Volume {
    /// Edge length.
    pub size: usize,
    /// Voxel densities, x-major: `data[(z*size + y)*size + x]`.
    pub data: Vec<u8>,
    /// Min-max octree levels, finest first: each entry is `(min, max)` per
    /// block; level k has blocks of edge `block << k`.
    octree: Vec<Vec<(u8, u8)>>,
    /// Finest octree block edge (voxels).
    block: usize,
}

impl Volume {
    #[inline]
    fn at(&self, x: usize, y: usize, z: usize) -> u8 {
        self.data[(z * self.size + y) * self.size + x]
    }

    /// Trilinear sample at a point (0 outside).
    pub fn sample(&self, p: [f32; 3]) -> f32 {
        let n = self.size as f32;
        if p[0] < 0.0 || p[1] < 0.0 || p[2] < 0.0 {
            return 0.0;
        }
        if p[0] >= n - 1.0 || p[1] >= n - 1.0 || p[2] >= n - 1.0 {
            return 0.0;
        }
        let (x0, y0, z0) = (p[0] as usize, p[1] as usize, p[2] as usize);
        let (fx, fy, fz) = (
            p[0] - x0 as f32,
            p[1] - y0 as f32,
            p[2] - z0 as f32,
        );
        let mut acc = 0.0f32;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    let w = (if dx == 1 { fx } else { 1.0 - fx })
                        * (if dy == 1 { fy } else { 1.0 - fy })
                        * (if dz == 1 { fz } else { 1.0 - fz });
                    acc += w * self.at(x0 + dx, y0 + dy, z0 + dz) as f32;
                }
            }
        }
        acc
    }

    /// Max density over the finest octree block containing the point.
    #[inline]
    fn block_max(&self, p: [f32; 3]) -> u8 {
        let bs = self.block;
        let per = self.size / bs;
        let bx = (p[0].max(0.0) as usize / bs).min(per - 1);
        let by = (p[1].max(0.0) as usize / bs).min(per - 1);
        let bz = (p[2].max(0.0) as usize / bs).min(per - 1);
        self.octree[0][(bz * per + by) * per + bx].1
    }

}

/// Builds the synthetic CT-head phantom: nested ellipsoid shells.
pub fn gen_volume(size: usize) -> Volume {
    let mut data = vec![0u8; size * size * size];
    let c = size as f32 / 2.0;
    // Ellipsoid radii (relative to half-size): skin, skull, brain,
    // ventricles.
    let shells: [([f32; 3], u8); 4] = [
        ([0.90, 0.80, 0.95], 40),  // skin / soft tissue
        ([0.80, 0.70, 0.85], 230), // skull (dense bone shell)
        ([0.74, 0.64, 0.79], 90),  // brain
        ([0.25, 0.18, 0.30], 15),  // ventricles (low density)
    ];
    for z in 0..size {
        for y in 0..size {
            for x in 0..size {
                let p = [
                    (x as f32 - c) / c,
                    (y as f32 - c) / c,
                    (z as f32 - c * 0.9) / c,
                ];
                let mut v = 0u8;
                for (r, dens) in shells {
                    let d = (p[0] / r[0]).powi(2) + (p[1] / r[1]).powi(2) + (p[2] / r[2]).powi(2);
                    if d <= 1.0 {
                        v = dens;
                    }
                }
                data[(z * size + y) * size + x] = v;
            }
        }
    }
    build_octree(size, data)
}

fn build_octree(size: usize, data: Vec<u8>) -> Volume {
    let block = (size / 8).max(4);
    let per = size / block;
    let mut level0 = vec![(u8::MAX, u8::MIN); per * per * per];
    for z in 0..size {
        for y in 0..size {
            for x in 0..size {
                let v = data[(z * size + y) * size + x];
                let b = ((z / block) * per + (y / block)) * per + (x / block);
                let e = &mut level0[b];
                e.0 = e.0.min(v);
                e.1 = e.1.max(v);
            }
        }
    }
    // Coarser levels by 2× reduction.
    let mut octree = vec![level0];
    let mut cur_per = per;
    while cur_per > 1 {
        let next_per = cur_per / 2;
        let prev = octree.last().unwrap();
        let mut next = vec![(u8::MAX, u8::MIN); next_per * next_per * next_per];
        for z in 0..cur_per {
            for y in 0..cur_per {
                for x in 0..cur_per {
                    let v = prev[(z * cur_per + y) * cur_per + x];
                    let e = &mut next[((z / 2) * next_per + (y / 2)) * next_per + (x / 2)];
                    e.0 = e.0.min(v.0);
                    e.1 = e.1.max(v.1);
                }
            }
        }
        octree.push(next);
        cur_per = next_per;
    }
    Volume {
        size,
        data,
        octree,
        block,
    }
}

/// Transfer function: opacity and brightness per sampled density.
#[inline]
fn transfer(d: f32) -> (f32, f32) {
    // Bone bright and opaque, soft tissue translucent, air invisible.
    if d < 20.0 {
        (0.0, 0.0)
    } else if d < 60.0 {
        (0.02, 0.3)
    } else if d < 150.0 {
        (0.06, 0.5)
    } else {
        (0.35, 1.0)
    }
}

/// Casts the ray for pixel `(px, py)`; returns (intensity, samples taken).
pub fn cast_ray(vol: &Volume, p: &Params, px: usize, py: usize) -> (f32, u32) {
    let n = vol.size as f32;
    let (sin, cos) = p.view_angle.sin_cos();
    // Orthographic camera: image plane axes u (rotated x/z) and v (y).
    let scale = n / p.image as f32;
    let u = (px as f32 + 0.5) * scale - n / 2.0;
    let v = (py as f32 + 0.5) * scale - n / 2.0;
    let dir = [-sin, 0.0, -cos];
    let center = [n / 2.0, n / 2.0, n / 2.0];
    let right = [cos, 0.0, -sin];
    // Start well outside the volume, march in.
    let start = [
        center[0] + right[0] * u - dir[0] * n,
        center[1] + v,
        center[2] + right[2] * u - dir[2] * n,
    ];
    let step = 0.8f32;
    let mut t = 0.0f32;
    let mut transparency = 1.0f32;
    let mut intensity = 0.0f32;
    let mut samples = 0u32;
    let t_max = 3.0 * n;
    while t < t_max {
        let pos = [
            start[0] + dir[0] * t,
            start[1] + dir[1] * t,
            start[2] + dir[2] * t,
        ];
        let inside = pos[0] >= 1.0
            && pos[0] < n - 1.0
            && pos[1] >= 1.0
            && pos[1] < n - 1.0
            && pos[2] >= 1.0
            && pos[2] < n - 1.0;
        if inside {
            // Empty-space skipping via the min-max octree.
            if vol.block_max(pos) < 20 {
                t += vol.block as f32 * 0.5;
                samples += 1;
                continue;
            }
            let d = vol.sample(pos);
            samples += 1;
            let (alpha, bright) = transfer(d);
            if alpha > 0.0 {
                let a = alpha * step;
                intensity += transparency * a * bright * 255.0;
                transparency *= 1.0 - a;
                if 1.0 - transparency > p.opacity_cutoff {
                    break; // early ray termination
                }
            }
        } else {
            samples += 1;
        }
        t += step;
    }
    (intensity.min(255.0), samples)
}

/// Renders the tiles in `tiles` (tile indices) into the shared image.
/// Returns sample count (work proxy).
fn render_tiles(vol: &Volume, p: &Params, tiles: &[usize], img: SharedBuf<f32>) -> u64 {
    let tps = p.tiles_per_side();
    let mut total_samples = 0u64;
    for &tidx in tiles {
        let tx = (tidx % tps) * p.tile;
        let ty = (tidx / tps) * p.tile;
        // Locality: a ray traverses a column of volume blocks, and
        // neighbouring tiles traverse mostly the same column. Touch the
        // blocks along the tile's central ray so the cache model sees the
        // real working set (this is what penalizes very fine thread
        // granularity, paper Figure 11).
        {
            let n = vol.size as f32;
            let (sin, cos) = p.view_angle.sin_cos();
            let scale = n / p.image as f32;
            let u = (tx as f32 + p.tile as f32 / 2.0) * scale - n / 2.0;
            let v = (ty as f32 + p.tile as f32 / 2.0) * scale - n / 2.0;
            let dir = [-sin, 0.0, -cos];
            let center = [n / 2.0, n / 2.0, n / 2.0];
            let right = [cos, 0.0, -sin];
            let start = [
                center[0] + right[0] * u,
                center[1] + v,
                center[2] + right[2] * u,
            ];
            // Locality regions are finer than the octree skip blocks so a
            // tile group's working set fits in one processor's cache and
            // reuse across *neighbouring* groups is what placement decides.
            let lb = (vol.block / 2).max(4);
            let per = vol.size / lb;
            let bytes = (lb * lb * lb) as u64;
            let steps = per * 2;
            for step in 0..steps {
                let t = (step as f32 + 0.5 - steps as f32 / 2.0) * lb as f32;
                let pos = [
                    start[0] + dir[0] * t,
                    start[1] + dir[1] * t,
                    start[2] + dir[2] * t,
                ];
                let inside = pos.iter().all(|&c| c >= 0.0 && c < n);
                if inside {
                    let bx = (pos[0] as usize / lb).min(per - 1);
                    let by = (pos[1] as usize / lb).min(per - 1);
                    let bz = (pos[2] as usize / lb).min(per - 1);
                    let id = ((bz * per + by) * per + bx) as u64;
                    ptdf::touch(region(salt::VOLREN, id), bytes);
                }
            }
        }
        for py in ty..(ty + p.tile).min(p.image) {
            for px in tx..(tx + p.tile).min(p.image) {
                let (val, samples) = cast_ray(vol, p, px, py);
                // SAFETY: each pixel belongs to exactly one tile, and each
                // tile to exactly one thread.
                unsafe { img.set(py * p.image + px, val) };
                total_samples += samples as u64;
            }
        }
    }
    charge_flops_irregular(total_samples * 12);
    total_samples
}

/// Fine-grained render: one thread per `tiles_per_thread` consecutive
/// tiles; the scheduler balances the irregular ray costs.
pub fn render_fine(vol: &Volume, p: &Params) -> Vec<f32> {
    let mut img = vec![0.0f32; p.image * p.image];
    let total = p.total_tiles();
    let tiles: Vec<usize> = (0..total).collect();
    {
        let iv = SharedBuf::new(&mut img);
        let groups: Vec<&[usize]> = tiles.chunks(p.tiles_per_thread.max(1)).collect();
        let groups = &groups;
        crate::util::fork_each(0, groups.len(), |g| {
            render_tiles(vol, p, groups[g], iv);
        });
    }
    img
}

/// Coarse-grained render (SPLASH-2 style): one thread per processor with an
/// explicit per-processor task queue of tiles; idle threads steal from
/// other queues through mutexes.
pub fn render_coarse(vol: &Volume, p: &Params, procs: usize) -> Vec<f32> {
    let mut img = vec![0.0f32; p.image * p.image];
    let total = p.total_tiles();
    // Static blocks of tiles, one queue per processor.
    let queues: Vec<Mutex<Vec<usize>>> = (0..procs)
        .map(|t| {
            let lo = t * total / procs;
            let hi = (t + 1) * total / procs;
            Mutex::new((lo..hi).collect())
        })
        .collect();
    {
        let iv = SharedBuf::new(&mut img);
        let queues = &queues;
        ptdf::scope(|s| {
            for t in 0..procs {
                s.spawn(move || loop {
                    // Own queue first, then steal.
                    let mut tile = queues[t].lock().pop();
                    if tile.is_none() {
                        for (v, q) in queues.iter().enumerate() {
                            if v == t {
                                continue;
                            }
                            tile = q.lock().pop();
                            if tile.is_some() {
                                break;
                            }
                        }
                    }
                    match tile {
                        Some(tidx) => {
                            render_tiles(vol, p, &[tidx], iv);
                        }
                        None => break,
                    }
                });
            }
        });
    }
    img
}

/// Serial reference render (no threading structures at all).
pub fn render_reference(vol: &Volume, p: &Params) -> Vec<f32> {
    let mut img = vec![0.0f32; p.image * p.image];
    for py in 0..p.image {
        for px in 0..p.image {
            img[py * p.image + px] = cast_ray(vol, p, px, py).0;
        }
    }
    img
}

/// Writes the image as a binary PGM (for the example binary).
pub fn to_pgm(img: &[f32], edge: usize) -> Vec<u8> {
    let mut out = format!("P5\n{edge} {edge}\n255\n").into_bytes();
    out.extend(img.iter().map(|&v| v.clamp(0.0, 255.0) as u8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn phantom_has_structure() {
        let vol = gen_volume(64);
        // Dense skull shell present.
        assert!(vol.data.contains(&230));
        // Air outside.
        assert_eq!(vol.at(0, 0, 0), 0);
        // Center should be brain or ventricle (not air, not bone).
        let c = 32;
        let center = vol.at(c, c, c);
        assert!(center > 0 && center < 230, "center density {center}");
    }

    #[test]
    fn octree_min_max_sound() {
        let vol = gen_volume(64);
        let per = vol.size / vol.block;
        for bz in 0..per {
            for by in 0..per {
                for bx in 0..per {
                    let (mn, mx) = vol.octree[0][(bz * per + by) * per + bx];
                    for z in bz * vol.block..(bz + 1) * vol.block {
                        for y in by * vol.block..(by + 1) * vol.block {
                            for x in bx * vol.block..(bx + 1) * vol.block {
                                let v = vol.at(x, y, z);
                                assert!(v >= mn && v <= mx);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn image_is_nontrivial() {
        let p = Params::small();
        let vol = gen_volume(p.size);
        let img = render_reference(&vol, &p);
        let lit = img.iter().filter(|&&v| v > 10.0).count();
        assert!(
            lit > img.len() / 20,
            "head should occupy a chunk of the frame: {lit}/{}",
            img.len()
        );
        let dark = img.iter().filter(|&&v| v < 1.0).count();
        assert!(dark > img.len() / 10, "background should be dark: {dark}");
    }

    #[test]
    fn fine_coarse_and_reference_agree() {
        let p = Params::small();
        let vol = gen_volume(p.size);
        let want = render_reference(&vol, &p);
        let (fine, _) = ptdf::run(Config::new(4, SchedKind::Df), {
            let vol = vol.clone();
            move || render_fine(&vol, &p)
        });
        assert_eq!(fine, want);
        let (coarse, _) = ptdf::run(Config::new(4, SchedKind::Fifo), {
            let vol = vol.clone();
            move || render_coarse(&vol, &p, 4)
        });
        assert_eq!(coarse, want);
    }

    #[test]
    fn early_termination_saves_samples() {
        let p = Params::small();
        let vol = gen_volume(p.size);
        let mut with = 0u64;
        let mut without = 0u64;
        let p_no = Params {
            opacity_cutoff: 2.0, // never triggers
            ..p
        };
        for py in (0..p.image).step_by(7) {
            for px in (0..p.image).step_by(7) {
                with += cast_ray(&vol, &p, px, py).1 as u64;
                without += cast_ray(&vol, &p_no, px, py).1 as u64;
            }
        }
        assert!(with < without, "early termination must cut samples");
    }

    #[test]
    fn pgm_output_is_well_formed() {
        let img = vec![0.0f32, 127.5, 255.0, 300.0];
        let pgm = to_pgm(&img, 2);
        let header_end = pgm.iter().filter(|&&b| b == b'\n').count();
        assert!(header_end >= 3);
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        let pixels = &pgm[pgm.len() - 4..];
        assert_eq!(pixels, &[0u8, 127, 255, 255], "values clamped to u8");
    }

    #[test]
    fn tile_math() {
        let p = Params::paper();
        assert_eq!(p.tiles_per_side(), 94);
        assert_eq!(p.total_tiles(), 8836); // the paper's 8836 tiles
    }

    #[test]
    fn granularity_affects_thread_count_not_image() {
        let base = Params::small();
        let vol = gen_volume(base.size);
        let want = render_reference(&vol, &base);
        let mut counts = Vec::new();
        for tpt in [4, 32] {
            let p = Params {
                tiles_per_thread: tpt,
                ..base
            };
            let (img, report) = ptdf::run(Config::new(4, SchedKind::Df), {
                let vol = vol.clone();
                move || render_fine(&vol, &p)
            });
            assert_eq!(img, want, "tiles_per_thread={tpt}");
            counts.push(report.total_threads);
        }
        assert!(counts[0] > counts[1] * 4);
    }
}
