//! Shared helpers for the benchmarks.

/// Modelled cycles per floating-point operation for tuned dense kernels on
/// the 167 MHz UltraSPARC (calibrated so the serial 1024³ matrix multiply
/// lands near the paper's 17.6 s).
pub const CYCLES_PER_FLOP_DENSE: f64 = 1.3;

/// Modelled cycles per flop for irregular, pointer-chasing code (tree
/// walks, sparse ops): poorer pipeline utilization.
pub const CYCLES_PER_FLOP_IRREGULAR: f64 = 3.0;

/// Charges `flops` floating-point operations of dense-kernel work.
#[inline]
pub fn charge_flops_dense(flops: u64) {
    ptdf::work((flops as f64 * CYCLES_PER_FLOP_DENSE) as u64);
}

/// Charges `flops` of irregular work.
#[inline]
pub fn charge_flops_irregular(flops: u64) {
    ptdf::work((flops as f64 * CYCLES_PER_FLOP_IRREGULAR) as u64);
}

/// Builds a locality-region id in an application namespace: `salt`
/// distinguishes applications / data structures, `id` the block within it.
#[inline]
pub fn region(salt: u64, id: u64) -> u64 {
    (salt << 40) | (id & ((1 << 40) - 1))
}

/// Region namespaces (one per benchmark data structure).
pub mod salt {
    /// Matmul A matrix blocks.
    pub const MATMUL_A: u64 = 1;
    /// Matmul B matrix blocks.
    pub const MATMUL_B: u64 = 2;
    /// Matmul C/T output blocks.
    pub const MATMUL_C: u64 = 3;
    /// Barnes-Hut octree subtrees.
    pub const BH_TREE: u64 = 4;
    /// Barnes-Hut body chunks.
    pub const BH_BODIES: u64 = 5;
    /// FMM cell expansions.
    pub const FMM_CELLS: u64 = 6;
    /// FFT signal chunks.
    pub const FFT: u64 = 7;
    /// Sparse matrix row blocks.
    pub const SPMV: u64 = 8;
    /// Volume data macro-blocks.
    pub const VOLREN: u64 = 9;
    /// Decision-tree instance blocks.
    pub const DTREE: u64 = 10;
}

/// A `Copy`able raw view of a mutable `f64` buffer shared between forked
/// threads that write **disjoint** regions (the standard idiom of the
/// paper's C benchmarks, where child threads receive pointers into shared
/// arrays).
///
/// # Safety contract
/// Constructors are safe; the unsafe surface is [`SharedSlice::get`] /
/// [`SharedSlice::set`] / [`SharedSlice::add_assign`], whose callers must
/// guarantee that concurrently-live threads never write overlapping indices
/// and never read an index another live thread writes. The benchmarks
/// uphold this structurally (quadrant/half decompositions), and their
/// results are verified against serial references in tests.
#[derive(Clone, Copy, Debug)]
pub struct SharedSlice {
    ptr: *mut f64,
    len: usize,
}

impl SharedSlice {
    /// Creates a view over `data`. The caller keeps ownership; the view must
    /// not outlive the buffer (guaranteed by join-before-drop discipline).
    pub fn new(data: &mut [f64]) -> Self {
        SharedSlice {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// `i < len`, and no concurrently-live thread writes index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// `i < len`, and this thread has exclusive access to index `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }

    /// `buf[i] += v`.
    ///
    /// # Safety
    /// As for [`SharedSlice::set`].
    #[inline]
    pub unsafe fn add_assign(&self, i: usize, v: f64) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) += v;
    }
}

/// Generic version of [`SharedSlice`] for arbitrary `Copy` element types
/// (same safety contract).
#[derive(Debug)]
pub struct SharedBuf<T> {
    ptr: *mut T,
    len: usize,
}

impl<T> Clone for SharedBuf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SharedBuf<T> {}

impl<T: Copy> SharedBuf<T> {
    /// Creates a view over `data` (caller keeps ownership; join-before-drop).
    pub fn new(data: &mut [T]) -> Self {
        SharedBuf {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// Length of the underlying buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// `i < len`, and no concurrently-live thread writes index `i`.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        *self.ptr.add(i)
    }

    /// Writes element `i`.
    ///
    /// # Safety
    /// `i < len`, and this thread has exclusive access to index `i`.
    #[inline]
    pub unsafe fn set(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = v;
    }
}

/// Forks one thread per task index in `[lo, hi)` as a **binary tree** (the
/// paper's pattern: "the Pthreads interface allows only a binary fork, so
/// these threads are forked as a binary tree"), so thread-creation cost is
/// spread across processors instead of serializing on the forking thread.
/// Each created thread ends up running exactly one `f(i)`. All threads are
/// joined before the call returns.
pub fn fork_each<F: Fn(usize) + Copy>(lo: usize, hi: usize, f: F) {
    if hi <= lo {
        return;
    }
    if hi - lo == 1 {
        f(lo);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    ptdf::scope(|s| {
        s.spawn(move || fork_each(lo, mid, f));
        fork_each(mid, hi, f);
    });
}

/// Deterministic splitmix64 (for cheap in-module seeding).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform f64 in [0,1) from splitmix64.
#[inline]
pub fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_namespaces_do_not_collide() {
        assert_ne!(region(salt::MATMUL_A, 5), region(salt::MATMUL_B, 5));
        assert_ne!(region(salt::MATMUL_A, 5), region(salt::MATMUL_A, 6));
    }

    #[test]
    fn shared_slice_roundtrip() {
        let mut data = vec![0.0; 8];
        let s = SharedSlice::new(&mut data);
        unsafe {
            s.set(3, 1.5);
            s.add_assign(3, 0.25);
            assert_eq!(s.get(3), 1.75);
        }
        assert_eq!(data[3], 1.75);
    }

    #[test]
    fn fork_each_visits_every_index_exactly_once() {
        use std::cell::RefCell;
        let visited = RefCell::new(vec![0u32; 37]);
        fork_each(0, 37, |i| {
            visited.borrow_mut()[i] += 1;
        });
        assert!(visited.borrow().iter().all(|&c| c == 1));
        // Empty and single ranges.
        fork_each(5, 5, |_| panic!("empty range must not call"));
        let one = RefCell::new(0);
        fork_each(9, 10, |i| {
            assert_eq!(i, 9);
            *one.borrow_mut() += 1;
        });
        assert_eq!(*one.borrow(), 1);
    }

    #[test]
    fn fork_each_under_runtime_creates_count_minus_one_threads() {
        let (_, report) = ptdf::run(
            ptdf::Config::new(4, ptdf::SchedKind::Df),
            || {
                fork_each(0, 16, |_| ptdf::work(1000));
            },
        );
        // 15 forked threads + the root.
        assert_eq!(report.total_threads, 16);
    }

    #[test]
    fn splitmix_deterministic_and_uniformish() {
        let mut s1 = 7u64;
        let mut s2 = 7u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
        let mut s = 42u64;
        let mean: f64 = (0..10_000).map(|_| uniform01(&mut s)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
