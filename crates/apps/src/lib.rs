//! The seven parallel benchmarks of the SC'98 paper, implemented for the
//! `ptdf` runtime.
//!
//! | Module | Paper benchmark | Input |
//! |---|---|---|
//! | [`matmul`] | Dense matrix multiply (divide & conquer, Fig. 4) | random `n×n`, `n` a power of two |
//! | [`barnes_hut`] | Barnes-Hut N-body (SPLASH-2 "Barnes") | Plummer model |
//! | [`fmm`] | Fast Multipole Method (uniform, 3-D) | uniform random particles |
//! | [`dtree`] | Decision tree builder (ID3/C4.5, continuous attrs) | synthetic classification set |
//! | [`fft`] | FFTW-style 1-D complex DFT | random complex signal |
//! | [`spmv`] | Spark98-style sparse matrix-vector product | synthetic FE-style mesh |
//! | [`volren`] | SPLASH-2 volume renderer (ray casting) | synthetic CT-head phantom |
//!
//! Every benchmark follows the same conventions:
//!
//! * **One implementation, three execution modes.** The fine-grained code
//!   forks a `ptdf` thread per parallel task; run it under [`ptdf::run`] for
//!   the parallel measurement and under [`ptdf::run_serial`] for the paper's
//!   "serial C version" baseline (forks become function calls). Benchmarks
//!   the paper also measured coarse-grained (`barnes_hut`, `fft`, `spmv`,
//!   `volren`) additionally provide an SPMD-style `coarse` entry point.
//! * **Real numerics.** The code computes real results, verified against
//!   independent references in each module's tests.
//! * **Modelled costs.** Kernels report their arithmetic to the virtual
//!   machine via [`ptdf::work`], data locality via [`ptdf::touch`], and
//!   significant allocations via [`ptdf::TrackedBuf`] — see DESIGN.md.

#![warn(missing_docs)]

pub mod barnes_hut;
pub mod dtree;
pub mod fft;
pub mod fmm;
pub mod matmul;
pub mod spmv;
pub mod util;
pub mod volren;
