//! Decision tree builder (paper §5.1.3): ID3 with C4.5-style handling of
//! continuous attributes via gain-ratio splits.
//!
//! The tree is built top-down; at each node the instances are *sorted by
//! each attribute* (a parallel divide-and-conquer quicksort, forking a
//! thread per recursive call) to find the best binary split. A thread is
//! forked for each recursive tree-builder call as well; both recursions
//! switch to serial execution below 2,000 instances, per the paper. The
//! resulting computation graph is highly irregular and data dependent,
//! which is why the paper chose it — and the per-node index buffers are the
//! dynamically allocated memory that Figure 9(b) measures.
//!
//! The paper's input was a proprietary speech-recognition dataset (133,999
//! instances, 4 continuous attributes, boolean class); [`gen_dataset`]
//! substitutes a seeded Gaussian-mixture set of the same shape (see
//! DESIGN.md).

use ptdf::TrackedBuf;

use crate::util::{charge_flops_irregular, region, salt, splitmix64, uniform01};

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of instances.
    pub instances: usize,
    /// Number of continuous attributes.
    pub attrs: usize,
    /// Below this many instances, recursion (tree and quicksort) is serial.
    pub min_split: usize,
    /// Maximum tree depth.
    pub max_depth: u32,
    /// Seed.
    pub seed: u64,
}

impl Params {
    /// The paper's scale: 133,999 × 4, serial below 2,000 instances.
    pub fn paper() -> Self {
        Params {
            instances: 133_999,
            attrs: 4,
            min_split: 2_000,
            max_depth: 16,
            seed: 0xD7,
        }
    }

    /// Scaled-down configuration (keeps the instances/min_split ratio near
    /// the paper's 134k/2000 so the recursion shape is comparable).
    pub fn small() -> Self {
        Params {
            instances: 40_000,
            attrs: 4,
            min_split: 1_500,
            max_depth: 14,
            seed: 0xD7,
        }
    }
}

/// A labelled dataset with continuous attributes (row-major).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Attribute matrix, `n × attrs`.
    pub x: Vec<f32>,
    /// Boolean class labels.
    pub y: Vec<bool>,
    /// Instance count.
    pub n: usize,
    /// Attribute count.
    pub attrs: usize,
}

impl Dataset {
    #[inline]
    fn attr(&self, i: usize, a: usize) -> f32 {
        self.x[i * self.attrs + a]
    }
}

/// Generates a Gaussian-mixture classification set: each class is a mixture
/// of three axis-aligned Gaussians with random centers, plus 5% label
/// noise — separable enough to grow a deep, irregular tree.
pub fn gen_dataset(p: &Params) -> Dataset {
    let mut s = p.seed;
    let gauss = |s: &mut u64| {
        // Box-Muller.
        let u1 = uniform01(s).max(1e-12);
        let u2 = uniform01(s);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    // Three mixture centers per class.
    let centers: Vec<Vec<f64>> = (0..2 * 3)
        .map(|_| (0..p.attrs).map(|_| uniform01(&mut s) * 10.0).collect())
        .collect();
    let mut x = Vec::with_capacity(p.instances * p.attrs);
    let mut y = Vec::with_capacity(p.instances);
    for _ in 0..p.instances {
        let class = uniform01(&mut s) < 0.5;
        let comp = (splitmix64(&mut s) % 3) as usize + if class { 3 } else { 0 };
        for center in centers[comp].iter().take(p.attrs) {
            let v = center + gauss(&mut s) * 1.2;
            x.push(v as f32);
        }
        let noisy = uniform01(&mut s) < 0.05;
        y.push(class != noisy);
    }
    Dataset {
        x,
        y,
        n: p.instances,
        attrs: p.attrs,
    }
}

/// A decision tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Leaf predicting `label`; `count` training instances reached it.
    Leaf {
        /// Majority label.
        label: bool,
        /// Training instances at this leaf.
        count: usize,
    },
    /// Binary split: `attr < threshold` goes left.
    Split {
        /// Attribute index.
        attr: usize,
        /// Split threshold.
        threshold: f32,
        /// Left subtree (attr < threshold).
        left: Box<Node>,
        /// Right subtree.
        right: Box<Node>,
    },
}

impl Node {
    /// Classifies one instance (a slice of `attrs` values).
    pub fn classify(&self, row: &[f32]) -> bool {
        match self {
            Node::Leaf { label, .. } => *label,
            Node::Split {
                attr,
                threshold,
                left,
                right,
            } => {
                if row[*attr] < *threshold {
                    left.classify(row)
                } else {
                    right.classify(row)
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Depth of the tree.
    pub fn depth(&self) -> u32 {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

fn entropy(pos: usize, total: usize) -> f64 {
    if total == 0 || pos == 0 || pos == total {
        return 0.0;
    }
    let p = pos as f64 / total as f64;
    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
}

/// Parallel quicksort of `idx` by attribute `attr` (forks a thread per
/// recursive call above `min_split` elements; three-way partition for
/// duplicate keys).
fn par_sort(ds: &Dataset, idx: &mut [u32], attr: usize, min_split: usize) {
    charge_flops_irregular(idx.len() as u64 * 6);
    if idx.len() <= min_split.max(8) {
        idx.sort_unstable_by(|&a, &b| {
            ds.attr(a as usize, attr)
                .partial_cmp(&ds.attr(b as usize, attr))
                .unwrap()
        });
        let n = idx.len().max(2) as u64;
        charge_flops_irregular(n * (n as f64).log2() as u64 * 4);
        return;
    }
    let n = idx.len();
    let key = |i: u32| ds.attr(i as usize, attr);
    let pivot = {
        let mut v = [key(idx[0]), key(idx[n / 2]), key(idx[n - 1])];
        v.sort_unstable_by(|x, y| x.partial_cmp(y).unwrap());
        v[1]
    };
    // Three-way partition.
    let (mut lt, mut gt, mut i) = (0usize, n, 0usize);
    while i < gt {
        let k = key(idx[i]);
        if k < pivot {
            idx.swap(lt, i);
            lt += 1;
            i += 1;
        } else if k > pivot {
            gt -= 1;
            idx.swap(i, gt);
        } else {
            i += 1;
        }
    }
    let (lo, rest) = idx.split_at_mut(lt);
    let (_, hi) = rest.split_at_mut(gt - lt);
    ptdf::scope(|s| {
        s.spawn(|| par_sort(ds, lo, attr, min_split));
        s.spawn(|| par_sort(ds, hi, attr, min_split));
    });
}

/// Finds the best gain-ratio split of `sorted` (pre-sorted by `attr`);
/// returns `(gain_ratio, threshold, left_count)`.
fn best_split_on_attr(ds: &Dataset, sorted: &[u32], attr: usize) -> Option<(f64, f32, usize)> {
    let n = sorted.len();
    let total_pos = sorted.iter().filter(|&&i| ds.y[i as usize]).count();
    let h_root = entropy(total_pos, n);
    let mut best: Option<(f64, f32, usize)> = None;
    let mut pos_left = 0usize;
    charge_flops_irregular(n as u64 * 12);
    for i in 1..n {
        if ds.y[sorted[i - 1] as usize] {
            pos_left += 1;
        }
        let prev = ds.attr(sorted[i - 1] as usize, attr);
        let cur = ds.attr(sorted[i] as usize, attr);
        if prev == cur {
            continue; // not a class boundary candidate
        }
        let (nl, nr) = (i, n - i);
        let ig = h_root
            - (nl as f64 / n as f64) * entropy(pos_left, nl)
            - (nr as f64 / n as f64) * entropy(total_pos - pos_left, nr);
        let fl = nl as f64 / n as f64;
        let split_info = -(fl * fl.log2() + (1.0 - fl) * (1.0 - fl).log2());
        if split_info <= 0.0 {
            continue;
        }
        let gr = ig / split_info;
        let threshold = (prev + cur) / 2.0;
        if best.is_none_or(|(bg, _, _)| gr > bg) {
            best = Some((gr, threshold, nl));
        }
    }
    best.filter(|&(gr, _, _)| gr > 1e-6)
}

/// Builds the tree over the instances in `idx`.
fn build_node(ds: &Dataset, idx: &[u32], p: &Params, depth: u32) -> Node {
    let n = idx.len();
    let pos = idx.iter().filter(|&&i| ds.y[i as usize]).count();
    charge_flops_irregular(n as u64 * 2);
    // Deterministic region id from the node's shape (depth, size, first id).
    let first = idx.first().copied().unwrap_or(0) as u64;
    ptdf::touch(
        region(salt::DTREE, ((depth as u64) << 34) ^ ((n as u64) << 20) ^ first),
        (n * 4) as u64,
    );
    let leaf = Node::Leaf {
        label: pos * 2 >= n,
        count: n,
    };
    if n < p.min_split.max(2) || pos == 0 || pos == n || depth >= p.max_depth {
        return leaf;
    }
    // Sort by each attribute (one forked sort per attribute) and evaluate
    // the candidate splits.
    let parallel = n >= p.min_split;
    let mut per_attr: Vec<Option<(f64, f32, usize)>> = vec![None; ds.attrs];
    let mut sorted_per_attr: Vec<TrackedBuf<u32>> = (0..ds.attrs)
        .map(|_| TrackedBuf::from_vec(idx.to_vec()))
        .collect();
    ptdf::scope(|s| {
        for (a, (out, buf)) in per_attr
            .iter_mut()
            .zip(sorted_per_attr.iter_mut())
            .enumerate()
        {
            let mut body = move || {
                par_sort(ds, buf, a, p.min_split);
                *out = best_split_on_attr(ds, buf, a);
            };
            if parallel {
                s.spawn(body);
            } else {
                body();
            }
        }
    });
    let best = per_attr
        .iter()
        .enumerate()
        .filter_map(|(a, o)| o.map(|(gr, th, nl)| (gr, a, th, nl)))
        .max_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
    let Some((_, attr, threshold, nl)) = best else {
        return leaf;
    };
    let (left_idx, right_idx) = {
        let sorted = &sorted_per_attr[attr];
        (
            TrackedBuf::from_vec(sorted[..nl].to_vec()),
            TrackedBuf::from_vec(sorted[nl..].to_vec()),
        )
    };
    drop(sorted_per_attr);
    let (left, right) = if parallel {
        ptdf::scope(|s| {
            let lh = s.spawn(|| build_node(ds, &left_idx, p, depth + 1));
            let r = build_node(ds, &right_idx, p, depth + 1);
            (lh.join(), r)
        })
    } else {
        (
            build_node(ds, &left_idx, p, depth + 1),
            build_node(ds, &right_idx, p, depth + 1),
        )
    };
    Node::Split {
        attr,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Builds a decision tree for the dataset (parallel in a runtime, serial
/// otherwise — same code).
pub fn build(ds: &Dataset, p: &Params) -> Node {
    let idx = TrackedBuf::from_vec((0..ds.n as u32).collect::<Vec<u32>>());
    build_node(ds, &idx, p, 0)
}

/// Fraction of the dataset the tree classifies correctly.
pub fn accuracy(tree: &Node, ds: &Dataset) -> f64 {
    let correct = (0..ds.n)
        .filter(|&i| tree.classify(&ds.x[i * ds.attrs..(i + 1) * ds.attrs]) == ds.y[i])
        .count();
    correct as f64 / ds.n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy(0, 10), 0.0);
        assert_eq!(entropy(10, 10), 0.0);
        assert!((entropy(5, 10) - 1.0).abs() < 1e-12);
        assert!(entropy(3, 10) < 1.0);
    }

    #[test]
    fn perfect_split_found_on_trivial_data() {
        // One attribute separates the classes exactly at 0.5.
        let n = 100;
        let x: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let y: Vec<bool> = (0..n).map(|i| i as f32 / n as f32 >= 0.5).collect();
        let ds = Dataset { x, y, n, attrs: 1 };
        let p = Params {
            instances: n,
            attrs: 1,
            min_split: 2,
            max_depth: 4,
            seed: 0,
        };
        let tree = build(&ds, &p);
        assert_eq!(accuracy(&tree, &ds), 1.0);
        match tree {
            Node::Split {
                attr, threshold, ..
            } => {
                assert_eq!(attr, 0);
                assert!((threshold - 0.495).abs() < 0.02, "threshold {threshold}");
            }
            _ => panic!("expected a split at the root"),
        }
    }

    #[test]
    fn par_sort_sorts_and_permutes() {
        let p = Params::small();
        let ds = gen_dataset(&p);
        let mut idx: Vec<u32> = (0..ds.n as u32).collect();
        par_sort(&ds, &mut idx, 2, 100);
        for w in idx.windows(2) {
            assert!(ds.attr(w[0] as usize, 2) <= ds.attr(w[1] as usize, 2));
        }
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert!(sorted.iter().enumerate().all(|(i, &v)| v == i as u32));
    }

    #[test]
    fn learns_mixture_better_than_majority() {
        let p = Params {
            instances: 4000,
            min_split: 200,
            ..Params::small()
        };
        let ds = gen_dataset(&p);
        let tree = build(&ds, &p);
        let acc = accuracy(&tree, &ds);
        assert!(acc > 0.80, "accuracy {acc}");
        assert!(tree.size() > 3);
        assert!(tree.depth() <= p.max_depth + 1);
    }

    #[test]
    fn parallel_and_serial_trees_identical() {
        let p = Params {
            instances: 3000,
            min_split: 300,
            ..Params::small()
        };
        let ds = gen_dataset(&p);
        let serial_tree = build(&ds, &p);
        for kind in [SchedKind::Fifo, SchedKind::Df, SchedKind::Ws] {
            let (par_tree, report) = ptdf::run(Config::new(4, kind), {
                let ds = ds.clone();
                move || build(&ds, &p)
            });
            assert_eq!(par_tree, serial_tree, "{kind:?}");
            assert!(report.total_threads > 1, "{kind:?} must actually fork");
        }
    }

    #[test]
    fn dataset_shape() {
        let p = Params::paper();
        let ds = gen_dataset(&p);
        assert_eq!(ds.n, 133_999);
        assert_eq!(ds.x.len(), 133_999 * 4);
        let pos = ds.y.iter().filter(|&&b| b).count();
        let frac = pos as f64 / ds.n as f64;
        assert!((0.45..0.55).contains(&frac), "class balance {frac}");
    }
}
