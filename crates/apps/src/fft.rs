//! FFTW-style one-dimensional complex DFT (paper §5.1.4).
//!
//! A recursive radix-2 decimation-in-time Cooley-Tukey transform. Like the
//! multithreaded FFTW code the paper used, the implementation "forks a
//! Pthread for each recursive transform, until the specified number of
//! threads are created; after that it executes the recursion serially."
//! The thread-count knob is what Figure 10 sweeps: `p` threads partition a
//! power-of-two problem perfectly when `p` is a power of two, but only a
//! larger thread pool (256) lets the scheduler balance the load for other
//! processor counts.

use crate::util::{charge_flops_dense, region, salt, uniform01, SharedBuf};

/// A complex number (two f64s).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cpx {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Cpx {
    /// Constructs from parts.
    pub fn new(re: f64, im: f64) -> Self {
        Cpx { re, im }
    }

    #[inline]
    fn mul(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    #[inline]
    fn add(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    #[inline]
    fn sub(self, o: Cpx) -> Cpx {
        Cpx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
}

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// log2 of the transform size.
    pub log2n: u32,
    /// Number of threads to create (the FFTW interface knob).
    pub threads: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration: N = 2^22.
    pub fn paper(threads: usize) -> Self {
        Params {
            log2n: 22,
            threads,
            seed: 0xF0,
        }
    }

    /// Scaled-down configuration (leaf transforms stay big enough that the
    /// thread-overhead ratio resembles the paper's 2^22 / 256 threads).
    pub fn small(threads: usize) -> Self {
        Params {
            log2n: 20,
            threads,
            seed: 0xF0,
        }
    }

    /// Transform size.
    pub fn n(&self) -> usize {
        1 << self.log2n
    }
}

/// Random complex signal.
pub fn gen_input(p: &Params) -> Vec<Cpx> {
    let mut s = p.seed;
    (0..p.n())
        .map(|_| Cpx::new(uniform01(&mut s) * 2.0 - 1.0, uniform01(&mut s) * 2.0 - 1.0))
        .collect()
}

/// Forward DFT of `input` (length must equal `p.n()`), forking up to
/// `p.threads` threads. Runs in any execution mode.
pub fn fft(input: &[Cpx], p: &Params) -> Vec<Cpx> {
    let n = p.n();
    assert_eq!(input.len(), n);
    // Twiddle table: w_n^k for k < n/2 (shared, read-only).
    let mut twiddles: Vec<Cpx> = (0..n / 2)
        .map(|k| {
            let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            Cpx::new(ang.cos(), ang.sin())
        })
        .collect();
    charge_flops_dense((n / 2) as u64 * 20); // table construction (sin/cos)
    let mut src = input.to_vec();
    let mut dst = vec![Cpx::default(); n];
    {
        let sv = SharedBuf::new(&mut src);
        let dv = SharedBuf::new(&mut dst);
        let tw = SharedBuf::new(&mut twiddles);
        rec(sv, 0, 1, dv, 0, n, n, tw, p.threads.max(1));
    }
    dst
}

/// Recursive DIT step: transform `src[src_off + i*stride]` for `i < m` into
/// `dst[dst_off .. dst_off + m]`. `n` is the full transform size (for
/// twiddle indexing).
#[allow(clippy::too_many_arguments)]
fn rec(
    src: SharedBuf<Cpx>,
    src_off: usize,
    stride: usize,
    dst: SharedBuf<Cpx>,
    dst_off: usize,
    m: usize,
    n: usize,
    tw: SharedBuf<Cpx>,
    budget: usize,
) {
    if m == 1 {
        // SAFETY: each recursion leaf owns a distinct dst index; src is
        // read-only throughout.
        unsafe { dst.set(dst_off, src.get(src_off)) };
        return;
    }
    let h = m / 2;
    if budget >= 2 {
        let b1 = budget / 2;
        let b2 = budget - b1;
        let even = ptdf::spawn(move || rec(src, src_off, stride * 2, dst, dst_off, h, n, tw, b1));
        let odd = ptdf::spawn(move || {
            rec(src, src_off + stride, stride * 2, dst, dst_off + h, h, n, tw, b2)
        });
        even.join();
        odd.join();
    } else {
        rec(src, src_off, stride * 2, dst, dst_off, h, n, tw, 1);
        rec(src, src_off + stride, stride * 2, dst, dst_off + h, h, n, tw, 1);
    }
    // Combine: butterfly with twiddles w_n^(k * n/m).
    let twiddle_stride = n / m;
    ptdf::touch(region(salt::FFT, (dst_off / 1024) as u64), (m * 16) as u64);
    for k in 0..h {
        // SAFETY: this thread exclusively owns dst[dst_off..dst_off+m] at
        // this point (children joined).
        unsafe {
            let e = dst.get(dst_off + k);
            let o = dst.get(dst_off + h + k);
            let w = tw.get(k * twiddle_stride);
            let t = w.mul(o);
            dst.set(dst_off + k, e.add(t));
            dst.set(dst_off + h + k, e.sub(t));
        }
    }
    charge_flops_dense(h as u64 * 10);
}

/// Naive O(n²) DFT for verification.
pub fn reference_dft(input: &[Cpx]) -> Vec<Cpx> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Cpx::default();
            for (j, &x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j % n) as f64 / n as f64;
                acc = acc.add(x.mul(Cpx::new(ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// RMS error between two complex vectors.
pub fn rms_error(a: &[Cpx], b: &[Cpx]) -> f64 {
    let sum: f64 = a.iter().zip(b).map(|(x, y)| x.sub(*y).abs().powi(2)).sum();
    (sum / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn matches_naive_dft() {
        let p = Params {
            log2n: 8,
            threads: 1,
            seed: 1,
        };
        let x = gen_input(&p);
        let got = fft(&x, &p);
        let want = reference_dft(&x);
        assert!(rms_error(&got, &want) < 1e-9);
    }

    #[test]
    fn thread_budget_does_not_change_result() {
        let p1 = Params {
            log2n: 10,
            threads: 1,
            seed: 2,
        };
        let x = gen_input(&p1);
        let serial = fft(&x, &p1);
        for threads in [2, 3, 7, 16, 256] {
            let p = Params { threads, ..p1 };
            let (out, _) = ptdf::run(Config::new(4, SchedKind::Df), {
                let x = x.clone();
                move || fft(&x, &p)
            });
            assert!(rms_error(&out, &serial) < 1e-12, "threads={threads}");
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let p = Params {
            log2n: 10,
            threads: 4,
            seed: 3,
        };
        let x = gen_input(&p);
        let y = fft(&x, &p);
        let ex: f64 = x.iter().map(|c| c.abs().powi(2)).sum();
        let ey: f64 = y.iter().map(|c| c.abs().powi(2)).sum::<f64>() / p.n() as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let p = Params {
            log2n: 6,
            threads: 2,
            seed: 0,
        };
        let mut x = vec![Cpx::default(); p.n()];
        x[0] = Cpx::new(1.0, 0.0);
        let y = fft(&x, &p);
        for c in y {
            assert!((c.re - 1.0).abs() < 1e-12 && c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn thread_count_matches_budget_under_runtime() {
        let p = Params {
            log2n: 12,
            threads: 8,
            seed: 4,
        };
        let x = gen_input(&p);
        let (_, report) = ptdf::run(Config::new(4, SchedKind::Df), move || fft(&x, &p));
        // Budget 8 → 8 leaves → 14 forked threads (binary tree interior
        // forks 2 each: 2+4+8 = 14) + root.
        assert_eq!(report.total_threads, 15);
    }
}
