//! Multi-index machinery for Cartesian Taylor expansions in three
//! variables: index enumeration, lookups, factorials, and the product pair
//! table used by truncated polynomial multiplication.

/// All multi-indices `α = (i,j,k)` with `|α| ≤ order`, with O(1) lookup.
#[derive(Debug, Clone)]
pub struct MultiIndexTable {
    /// Maximum total order.
    pub order: usize,
    /// The multi-indices, sorted by total order then lexicographically.
    pub idx: Vec<(u8, u8, u8)>,
    /// Dense lookup: `(i * (order+1) + j) * (order+1) + k → position`.
    lookup: Vec<u32>,
    /// `α!` per position.
    pub factorial: Vec<f64>,
}

impl MultiIndexTable {
    /// Builds the table for `order`.
    pub fn new(order: usize) -> Self {
        let mut idx = Vec::new();
        for total in 0..=order {
            for i in (0..=total).rev() {
                for j in (0..=(total - i)).rev() {
                    let k = total - i - j;
                    idx.push((i as u8, j as u8, k as u8));
                }
            }
        }
        let stride = order + 1;
        let mut lookup = vec![u32::MAX; stride * stride * stride];
        for (pos, &(i, j, k)) in idx.iter().enumerate() {
            lookup[(i as usize * stride + j as usize) * stride + k as usize] = pos as u32;
        }
        let fact = |n: u8| (1..=n as u64).product::<u64>() as f64;
        let factorial = idx
            .iter()
            .map(|&(i, j, k)| fact(i) * fact(j) * fact(k))
            .collect();
        MultiIndexTable {
            order,
            idx,
            lookup,
            factorial,
        }
    }

    /// Number of indices: `C(order+3, 3)`.
    pub fn len(&self) -> usize {
        self.idx.len()
    }

    /// True when the table is empty (never for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.idx.is_empty()
    }

    /// Position of `(i,j,k)`, if `i+j+k ≤ order`.
    #[inline]
    pub fn pos(&self, i: usize, j: usize, k: usize) -> Option<usize> {
        if i + j + k > self.order {
            return None;
        }
        let stride = self.order + 1;
        let v = self.lookup[(i * stride + j) * stride + k];
        (v != u32::MAX).then_some(v as usize)
    }

    /// Position of the sum `α + β`, if within order.
    #[inline]
    pub fn pos_sum(&self, a: (u8, u8, u8), b: (u8, u8, u8)) -> Option<usize> {
        self.pos(
            a.0 as usize + b.0 as usize,
            a.1 as usize + b.1 as usize,
            a.2 as usize + b.2 as usize,
        )
    }

    /// Evaluates the monomials `v^α` for every index, into `out`.
    pub fn monomials(&self, v: [f64; 3], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.len());
        // idx is sorted by total order, so every index with |α| > 0 has a
        // predecessor obtained by decrementing one coordinate.
        for (p, &(i, j, k)) in self.idx.iter().enumerate() {
            out[p] = if i == 0 && j == 0 && k == 0 {
                1.0
            } else if i > 0 {
                let prev = self
                    .pos(i as usize - 1, j as usize, k as usize)
                    .expect("predecessor exists");
                out[prev] * v[0]
            } else if j > 0 {
                let prev = self
                    .pos(i as usize, j as usize - 1, k as usize)
                    .expect("predecessor exists");
                out[prev] * v[1]
            } else {
                let prev = self
                    .pos(i as usize, j as usize, k as usize - 1)
                    .expect("predecessor exists");
                out[prev] * v[2]
            };
        }
    }

    /// Builds the truncated-product pair list: all `(a, b, out)` positions
    /// with `idx[a] + idx[b] = idx[out]` (within order).
    pub fn product_pairs(&self) -> Vec<(u32, u32, u32)> {
        let mut pairs = Vec::new();
        for (a, &ia) in self.idx.iter().enumerate() {
            for (b, &ib) in self.idx.iter().enumerate() {
                if let Some(out) = self.pos_sum(ia, ib) {
                    pairs.push((a as u32, b as u32, out as u32));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_binomial() {
        for order in 0..9 {
            let t = MultiIndexTable::new(order);
            let expect = (order + 1) * (order + 2) * (order + 3) / 6;
            assert_eq!(t.len(), expect, "order {order}");
        }
    }

    #[test]
    fn lookup_roundtrip() {
        let t = MultiIndexTable::new(5);
        for (p, &(i, j, k)) in t.idx.iter().enumerate() {
            assert_eq!(t.pos(i as usize, j as usize, k as usize), Some(p));
        }
        assert_eq!(t.pos(6, 0, 0), None);
        assert_eq!(t.pos(3, 2, 1), t.pos(3, 2, 1));
    }

    #[test]
    fn factorials() {
        let t = MultiIndexTable::new(4);
        let p = t.pos(2, 1, 0).unwrap();
        assert_eq!(t.factorial[p], 2.0);
        let p = t.pos(3, 0, 1).unwrap();
        assert_eq!(t.factorial[p], 6.0);
        let p = t.pos(0, 0, 0).unwrap();
        assert_eq!(t.factorial[p], 1.0);
    }

    #[test]
    fn monomials_correct() {
        let t = MultiIndexTable::new(4);
        let v = [2.0, -1.5, 0.5];
        let mut out = vec![0.0; t.len()];
        t.monomials(v, &mut out);
        for (p, &(i, j, k)) in t.idx.iter().enumerate() {
            let want = v[0].powi(i as i32) * v[1].powi(j as i32) * v[2].powi(k as i32);
            assert!((out[p] - want).abs() < 1e-12, "α=({i},{j},{k})");
        }
    }

    #[test]
    fn product_pairs_complete() {
        let t = MultiIndexTable::new(2);
        let pairs = t.product_pairs();
        // (1,0,0)*(0,1,0) must land on (1,1,0).
        let a = t.pos(1, 0, 0).unwrap() as u32;
        let b = t.pos(0, 1, 0).unwrap() as u32;
        let o = t.pos(1, 1, 0).unwrap() as u32;
        assert!(pairs.contains(&(a, b, o)));
        // No pair exceeds the order.
        for &(a, b, _) in &pairs {
            let (i1, j1, k1) = t.idx[a as usize];
            let (i2, j2, k2) = t.idx[b as usize];
            assert!((i1 + i2 + j1 + j2 + k1 + k2) as usize <= t.order);
        }
    }
}
