//! Fast Multipole Method (paper §5.1.2): the uniform 3-D FMM for the
//! Laplace kernel `1/r`.
//!
//! The paper's implementation uses spherical-harmonic expansions; this
//! reproduction uses **Cartesian Taylor expansions** of the same order
//! (`terms = 5` ⇒ multipole/local order `P = 4`), with the kernel
//! derivative tensors computed by jet arithmetic ([`jet`]). The
//! substitution preserves the algorithmic structure the paper measures —
//! the phase decomposition, the fork pattern (a thread per cell, M2L
//! interaction lists split 25-sources-per-thread forked as a binary tree),
//! and the dynamic allocation in the M2L phase — while remaining
//! numerically verifiable against direct summation (see this module's
//! tests and DESIGN.md).
//!
//! Conventions (multi-index `α`, kernel `G(r) = 1/|r|`):
//!
//! * multipole about `cM`: `M_α = Σ_i q_i (−(x_i−cM))^α / α!`
//! * potential: `φ(y) = Σ_α M_α (D^α G)(y − cM)`
//! * local about `cL`: `L_β = D^β φ(cL) = Σ_α M_α (D^{α+β} G)(cL − cM)`
//! * evaluation: `φ(y) = Σ_β L_β (y − cL)^β / β!`, field `E = −∇φ`.

pub mod jet;
pub mod tables;

use jet::KernelJet;
use ptdf::TrackedBuf;
use tables::MultiIndexTable;

use crate::util::{charge_flops_dense, charge_flops_irregular, region, salt, uniform01, SharedSlice};

/// A point charge / mass.
#[derive(Debug, Clone, Copy, Default)]
pub struct Particle {
    /// Position in the unit cube.
    pub pos: [f64; 3],
    /// Charge (mass).
    pub q: f64,
}

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of particles (uniform in the unit cube).
    pub n_particles: usize,
    /// Finest tree level `L` (leaves are the `8^L` cells at level `L`;
    /// the paper's "tree with 4 levels" is `L = 3`).
    pub levels: usize,
    /// Expansion terms (the paper's 5 ⇒ Taylor order `P = terms − 1`).
    pub terms: usize,
    /// M2L sources handled per forked thread (paper: 25).
    pub mpl_chunk: usize,
    /// Seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration: 10,000 uniform particles, 4 levels,
    /// 5 terms.
    pub fn paper() -> Self {
        Params {
            n_particles: 10_000,
            levels: 3,
            terms: 5,
            mpl_chunk: 25,
            seed: 0xF33D,
        }
    }

    /// Scaled-down configuration (keeps the paper's tree depth so the
    /// phase-level parallelism structure is comparable).
    pub fn small() -> Self {
        Params {
            n_particles: 4_000,
            levels: 3,
            terms: 5,
            mpl_chunk: 25,
            seed: 0xF33D,
        }
    }

    fn order(&self) -> usize {
        self.terms.saturating_sub(1)
    }
}

/// Uniformly distributed particles with unit total charge.
pub fn gen_particles(p: &Params) -> Vec<Particle> {
    let mut s = p.seed;
    (0..p.n_particles)
        .map(|_| Particle {
            pos: [
                uniform01(&mut s),
                uniform01(&mut s),
                uniform01(&mut s),
            ],
            q: 1.0 / p.n_particles as f64,
        })
        .collect()
}

/// Result: potential and field per particle.
#[derive(Debug, Clone)]
pub struct FieldResult {
    /// Potential `φ = Σ q/r`.
    pub potential: Vec<f64>,
    /// Field `E = −∇φ`.
    pub field: Vec<[f64; 3]>,
}

/// Precomputed translation machinery shared by all phases.
struct Ctx {
    p: usize,
    t1: MultiIndexTable,
    kj: KernelJet,
    /// Pair list of t1 (for M2M / L2L).
    pairs1: Vec<(u32, u32, u32)>,
    /// t2 position of `t1[a] + t1[b]` (dense `n1 × n1`).
    sum12: Vec<u32>,
    /// Kernel derivative tensors at each unit M2L offset, indexed by
    /// `offset_key(d)`; empty slot for non-M2L offsets. Entries are
    /// `T[γ] · γ!` at the unit offset (so M2L is a plain dot product).
    unit_tensors: Vec<Vec<f64>>,
}

fn offset_key(d: [i32; 3]) -> usize {
    (((d[0] + 3) * 7 + (d[1] + 3)) * 7 + (d[2] + 3)) as usize
}

impl Ctx {
    fn new(p: usize) -> Self {
        let t1 = MultiIndexTable::new(p);
        let kj = KernelJet::new(2 * p);
        let t2 = kj.table();
        let n1 = t1.len();
        let mut sum12 = vec![u32::MAX; n1 * n1];
        for (a, &ia) in t1.idx.iter().enumerate() {
            for (b, &ib) in t1.idx.iter().enumerate() {
                let pos = t2
                    .pos_sum(ia, ib)
                    .expect("|α+β| ≤ 2P by construction");
                sum12[a * n1 + b] = pos as u32;
            }
        }
        // Unit-offset tensors: all d with max-norm in 2..=3 (the children
        // of parent's neighbours that are not our neighbours).
        let mut unit_tensors = vec![Vec::new(); 7 * 7 * 7];
        for dx in -3i32..=3 {
            for dy in -3i32..=3 {
                for dz in -3i32..=3 {
                    let cheb = dx.abs().max(dy.abs()).max(dz.abs());
                    if cheb < 2 {
                        continue;
                    }
                    let t = kj.inv_r_coeffs([dx as f64, dy as f64, dz as f64]);
                    let scaled: Vec<f64> = t
                        .iter()
                        .zip(t2.factorial.iter())
                        .map(|(c, f)| c * f)
                        .collect();
                    unit_tensors[offset_key([dx, dy, dz])] = scaled;
                }
            }
        }
        let pairs1 = t1.product_pairs();
        Ctx {
            p,
            t1,
            kj,
            pairs1,
            sum12,
            unit_tensors,
        }
    }

    fn n1(&self) -> usize {
        self.t1.len()
    }
}

/// The uniform cell tree: per-level flattened expansion arrays.
struct Tree {
    levels: usize,
    n1: usize,
    /// Multipole coefficients per level: `m[l][cell * n1 + coef]`.
    m: Vec<Vec<f64>>,
    /// Local coefficients per level.
    l: Vec<Vec<f64>>,
    /// Leaf → particle indices (CSR).
    leaf_start: Vec<u32>,
    leaf_particles: Vec<u32>,
}

fn cells_per_side(level: usize) -> usize {
    1 << level
}

fn cell_index(level: usize, c: [usize; 3]) -> usize {
    let n = cells_per_side(level);
    (c[2] * n + c[1]) * n + c[0]
}

fn cell_center(level: usize, c: [usize; 3]) -> [f64; 3] {
    let w = 1.0 / cells_per_side(level) as f64;
    [
        (c[0] as f64 + 0.5) * w,
        (c[1] as f64 + 0.5) * w,
        (c[2] as f64 + 0.5) * w,
    ]
}

fn leaf_of(pos: [f64; 3], levels: usize) -> [usize; 3] {
    let n = cells_per_side(levels);
    let f = |x: f64| ((x * n as f64) as usize).min(n - 1);
    [f(pos[0]), f(pos[1]), f(pos[2])]
}

fn bin_particles(particles: &[Particle], levels: usize) -> (Vec<u32>, Vec<u32>) {
    let n = cells_per_side(levels);
    let ncells = n * n * n;
    let mut counts = vec![0u32; ncells + 1];
    let leaf: Vec<usize> = particles
        .iter()
        .map(|pt| cell_index(levels, leaf_of(pt.pos, levels)))
        .collect();
    for &c in &leaf {
        counts[c + 1] += 1;
    }
    for i in 0..ncells {
        counts[i + 1] += counts[i];
    }
    let mut slots = counts.clone();
    let mut order = vec![0u32; particles.len()];
    for (i, &c) in leaf.iter().enumerate() {
        order[slots[c] as usize] = i as u32;
        slots[c] += 1;
    }
    (counts, order)
}

/// Runs the FMM; parallel when inside a runtime (forks per the paper's
/// phase structure), serial otherwise — same code.
pub fn run_fmm(particles: &[Particle], prm: &Params) -> FieldResult {
    let ctx = Ctx::new(prm.order());
    let levels = prm.levels;
    let n1 = ctx.n1();
    let (leaf_start, leaf_particles) = bin_particles(particles, levels);
    let mut tree = Tree {
        levels,
        n1,
        m: (0..=levels)
            .map(|l| vec![0.0; cells_per_side(l).pow(3) * n1])
            .collect(),
        l: (0..=levels)
            .map(|l| vec![0.0; cells_per_side(l).pow(3) * n1])
            .collect(),
        leaf_start,
        leaf_particles,
    };
    // Track the tree's expansion arrays and particle bins in the memory
    // model (the FMM's structural allocations).
    let tree_bytes: u64 = tree.m.iter().chain(tree.l.iter()).map(|v| v.len() as u64 * 8).sum::<u64>()
        + (tree.leaf_start.len() + tree.leaf_particles.len()) as u64 * 4
        + particles.len() as u64 * 32;
    ptdf::rt_alloc(tree_bytes);
    charge_flops_dense((ctx.unit_tensors.len() * ctx.kj.table().len() * 30) as u64);

    phase_p2m(particles, prm, &ctx, &mut tree);
    phase_m2m(prm, &ctx, &mut tree);
    phase_m2l_l2l(prm, &ctx, &mut tree);
    let result = phase_l2p_p2p(particles, prm, &ctx, &tree);
    ptdf::rt_free(tree_bytes);
    result
}

/// Phase 1: multipole expansions of leaf cells (a thread per leaf).
fn phase_p2m(particles: &[Particle], _prm: &Params, ctx: &Ctx, tree: &mut Tree) {
    let levels = tree.levels;
    let n1 = tree.n1;
    let n = cells_per_side(levels);
    let ncells = n * n * n;
    let leaf_start = &tree.leaf_start;
    let leaf_particles = &tree.leaf_particles;
    let m = SharedSlice::new(&mut tree.m[levels]);
    // One thread per occupied leaf cell, forked as a binary tree.
    let mut occupied: Vec<(usize, [usize; 3])> = Vec::new();
    for cz in 0..n {
        for cy in 0..n {
            for cx in 0..n {
                let ci = cell_index(levels, [cx, cy, cz]);
                if leaf_start[ci] != leaf_start[ci + 1] {
                    occupied.push((ci, [cx, cy, cz]));
                }
            }
        }
    }
    let occupied = &occupied;
    crate::util::fork_each(0, occupied.len(), |k| {
        let (ci, c) = occupied[k];
        {
            {
                {
                    {
                        let center = cell_center(levels, c);
                        let mut mono = vec![0.0; n1];
                        let mut acc = vec![0.0; n1];
                        let lo = leaf_start[ci] as usize;
                        let hi = leaf_start[ci + 1] as usize;
                        for &pi in &leaf_particles[lo..hi] {
                            let pt = particles[pi as usize];
                            let v = [
                                -(pt.pos[0] - center[0]),
                                -(pt.pos[1] - center[1]),
                                -(pt.pos[2] - center[2]),
                            ];
                            ctx.t1.monomials(v, &mut mono);
                            for (a, (mo, f)) in
                                mono.iter().zip(&ctx.t1.factorial).enumerate()
                            {
                                acc[a] += pt.q * mo / f;
                            }
                        }
                        ptdf::touch(region(salt::FMM_CELLS, ci as u64), (n1 * 8) as u64);
                        charge_flops_irregular(((hi - lo) * n1 * 6) as u64);
                        for (a, v) in acc.into_iter().enumerate() {
                            // SAFETY: each leaf cell's slice is owned by
                            // exactly one thread.
                            unsafe { m.set(ci * n1 + a, v) };
                        }
                    }
                }
            }
        }
    });
    let _ = ncells;
}

/// Phase 2: upward M2M (a thread per parent cell, level by level).
fn phase_m2m(prm: &Params, ctx: &Ctx, tree: &mut Tree) {
    let _ = prm;
    let n1 = tree.n1;
    for level in (0..tree.levels).rev() {
        let (upper, lower) = tree.m.split_at_mut(level + 1);
        let parents = &mut upper[level];
        let children: &Vec<f64> = &lower[0];
        let np = cells_per_side(level);
        let pm = SharedSlice::new(parents);
        let coords: Vec<[usize; 3]> = (0..np)
            .flat_map(|pz| {
                (0..np).flat_map(move |py| (0..np).map(move |px| [px, py, pz]))
            })
            .collect();
        let coords = &coords;
        crate::util::fork_each(0, coords.len(), |k| {
            {
                {
                    {
                        {
                            let pcell = coords[k];
                            let [px, py, pz] = pcell;
                            let pi = cell_index(level, pcell);
                            let pc = cell_center(level, pcell);
                            let mut acc = vec![0.0; n1];
                            let mut mono = vec![0.0; n1];
                            let mut work = 0u64;
                            for oz in 0..2 {
                                for oy in 0..2 {
                                    for ox in 0..2 {
                                        let cc = [2 * px + ox, 2 * py + oy, 2 * pz + oz];
                                        let ci = cell_index(level + 1, cc);
                                        let cm = &children[ci * n1..(ci + 1) * n1];
                                        if cm.iter().all(|&v| v == 0.0) {
                                            continue;
                                        }
                                        let ccen = cell_center(level + 1, cc);
                                        let d = [
                                            -(ccen[0] - pc[0]),
                                            -(ccen[1] - pc[1]),
                                            -(ccen[2] - pc[2]),
                                        ];
                                        ctx.t1.monomials(d, &mut mono);
                                        for &(a, b, o) in &ctx.pairs1 {
                                            acc[o as usize] += cm[a as usize] * mono[b as usize]
                                                / ctx.t1.factorial[b as usize];
                                        }
                                        work += ctx.pairs1.len() as u64;
                                    }
                                }
                            }
                            charge_flops_irregular(work * 2);
                            for (a, v) in acc.into_iter().enumerate() {
                                // SAFETY: one thread per parent cell.
                                unsafe { pm.set(pi * n1 + a, v) };
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Computes the M2L contributions to `dst` from `sources[range]`, forking
/// as a binary tree with ≤ `chunk` sources per leaf thread, each
/// accumulating into a freshly allocated partial buffer (the paper's
/// dynamically allocated phase-3 memory). Returns the partial sum.
fn m2l_binary(
    ctx: &Ctx,
    level_w_inv: f64,
    sources: &[(usize, [i32; 3])], // (cell index, unit offset dst-src)
    ms: &[f64],
    n1: usize,
    chunk: usize,
) -> Vec<f64> {
    if sources.len() <= chunk.max(1) {
        let mut partial = TrackedBuf::<f64>::zeroed(n1);
        let mut work = 0u64;
        for &(src, d) in sources {
            let tensor = &ctx.unit_tensors[offset_key(d)];
            debug_assert!(!tensor.is_empty(), "offset {d:?} is not well separated");
            let msrc = &ms[src * n1..(src + 1) * n1];
            // Scale: D^γ G at w·v = w^{-(1+|γ|)} D^γ G(v). Precompute the
            // per-|γ| scale factors.
            m2l_apply(ctx, msrc, tensor, level_w_inv, &mut partial);
            work += (n1 * n1) as u64;
        }
        charge_flops_irregular(work * 3);
        return partial.into_vec();
    }
    let mid = sources.len() / 2;
    let (lo, hi) = sources.split_at(mid);
    let (mut a, b) = ptdf::scope(|s| {
        let hl = s.spawn(move || m2l_binary(ctx, level_w_inv, lo, ms, n1, chunk));
        let b = m2l_binary(ctx, level_w_inv, hi, ms, n1, chunk);
        (hl.join(), b)
    });
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
    a
}

fn m2l_apply(ctx: &Ctx, msrc: &[f64], tensor: &[f64], w_inv: f64, out: &mut [f64]) {
    let n1 = ctx.n1();
    // scale[|γ|] = w^{-(1+|γ|)}
    let mut scale = vec![0.0; 2 * ctx.p + 1];
    let mut acc = w_inv;
    for s in scale.iter_mut() {
        *s = acc;
        acc *= w_inv;
    }
    for (b, &(bi, bj, bk)) in ctx.t1.idx.iter().enumerate() {
        let btot = (bi + bj + bk) as usize;
        let mut sum = 0.0;
        for (a, &(ai, aj, ak)) in ctx.t1.idx.iter().enumerate() {
            let atot = (ai + aj + ak) as usize;
            let t2pos = ctx.sum12[a * n1 + b] as usize;
            sum += msrc[a] * tensor[t2pos] * scale[atot + btot];
        }
        out[b] += sum;
    }
}

/// Phases 3: top-down L2L + M2L per level (a thread per cell; each cell's
/// interaction list split into ≤25-source chunks forked as a binary tree).
fn phase_m2l_l2l(prm: &Params, ctx: &Ctx, tree: &mut Tree) {
    let n1 = tree.n1;
    for level in 2..=tree.levels {
        let nc = cells_per_side(level);
        let w = 1.0 / nc as f64;
        let w_inv = 1.0 / w;
        // Split locals: parent level read-only, this level written.
        let (head, tail) = tree.l.split_at_mut(level);
        let parent_l: &[f64] = &head[level - 1];
        let this_l: &mut Vec<f64> = &mut tail[0];
        let lv = SharedSlice::new(this_l);
        let ms: &[f64] = &tree.m[level];
        let chunk = prm.mpl_chunk;
        let coords: Vec<[usize; 3]> = (0..nc)
            .flat_map(|cz| {
                (0..nc).flat_map(move |cy| (0..nc).map(move |cx| [cx, cy, cz]))
            })
            .collect();
        let coords = &coords;
        crate::util::fork_each(0, coords.len(), |k| {
            {
                {
                    {
                        {
                            let [cx, cy, cz] = coords[k];
                            let ci = cell_index(level, [cx, cy, cz]);
                            let mut local = vec![0.0; n1];
                            // L2L from the parent.
                            let pcell = [cx / 2, cy / 2, cz / 2];
                            let pidx = cell_index(level - 1, pcell);
                            let pl = &parent_l[pidx * n1..(pidx + 1) * n1];
                            if pl.iter().any(|&v| v != 0.0) {
                                let pc = cell_center(level - 1, pcell);
                                let cc = cell_center(level, [cx, cy, cz]);
                                let e = [cc[0] - pc[0], cc[1] - pc[1], cc[2] - pc[2]];
                                let mut mono = vec![0.0; n1];
                                ctx.t1.monomials(e, &mut mono);
                                for &(a, b, o) in &ctx.pairs1 {
                                    local[a as usize] += pl[o as usize] * mono[b as usize]
                                        / ctx.t1.factorial[b as usize];
                                }
                                charge_flops_irregular(ctx.pairs1.len() as u64 * 2);
                            }
                            // Interaction list: children of parent's
                            // neighbours that are not adjacent to us.
                            let mut sources = Vec::new();
                            let c = [cx as i32, cy as i32, cz as i32];
                            for dz in -3i32..=3 {
                                for dy in -3i32..=3 {
                                    for dx in -3i32..=3 {
                                        let cheb = dx.abs().max(dy.abs()).max(dz.abs());
                                        if cheb < 2 {
                                            continue;
                                        }
                                        let sx = c[0] + dx;
                                        let sy = c[1] + dy;
                                        let sz = c[2] + dz;
                                        if sx < 0
                                            || sy < 0
                                            || sz < 0
                                            || sx >= nc as i32
                                            || sy >= nc as i32
                                            || sz >= nc as i32
                                        {
                                            continue;
                                        }
                                        // Same parent-neighbourhood test:
                                        // parents within distance 1.
                                        if (sx / 2 - c[0] / 2).abs() > 1
                                            || (sy / 2 - c[1] / 2).abs() > 1
                                            || (sz / 2 - c[2] / 2).abs() > 1
                                        {
                                            continue;
                                        }
                                        let si = cell_index(
                                            level,
                                            [sx as usize, sy as usize, sz as usize],
                                        );
                                        let msrc = &ms[si * n1..(si + 1) * n1];
                                        if msrc.iter().any(|&v| v != 0.0) {
                                            // Offset cL − cM in units of w.
                                            sources.push((si, [-dx, -dy, -dz]));
                                        }
                                    }
                                }
                            }
                            if !sources.is_empty() {
                                let partial =
                                    m2l_binary(ctx, w_inv, &sources, ms, n1, chunk);
                                for (a, v) in partial.into_iter().enumerate() {
                                    local[a] += v;
                                }
                            }
                            ptdf::touch(
                                region(salt::FMM_CELLS, (level as u64) << 32 | ci as u64),
                                (n1 * 8) as u64,
                            );
                            for (a, v) in local.into_iter().enumerate() {
                                // SAFETY: one thread per cell.
                                unsafe { lv.set(ci * n1 + a, v) };
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Phase 4: evaluate local expansions and near-field direct interactions
/// (a thread per leaf cell).
fn phase_l2p_p2p(
    particles: &[Particle],
    prm: &Params,
    ctx: &Ctx,
    tree: &Tree,
) -> FieldResult {
    let levels = tree.levels;
    let n1 = tree.n1;
    let nc = cells_per_side(levels);
    let mut potential = vec![0.0f64; particles.len()];
    let mut field = vec![[0.0f64; 3]; particles.len()];
    let locals: &[f64] = &tree.l[levels];
    let leaf_start = &tree.leaf_start;
    let leaf_particles = &tree.leaf_particles;
    {
        let pv = SharedSlice::new(&mut potential);
        let fv = crate::util::SharedBuf::new(&mut field);
        let mut occupied: Vec<(usize, [usize; 3])> = Vec::new();
        for cz in 0..nc {
            for cy in 0..nc {
                for cx in 0..nc {
                    let ci = cell_index(levels, [cx, cy, cz]);
                    if leaf_start[ci] != leaf_start[ci + 1] {
                        occupied.push((ci, [cx, cy, cz]));
                    }
                }
            }
        }
        let occupied = &occupied;
        crate::util::fork_each(0, occupied.len(), |k| {
            {
                {
                    {
                        let (ci, ccoord) = occupied[k];
                        let [cx, cy, cz] = ccoord;
                        {
                            let center = cell_center(levels, ccoord);
                            let me: Vec<u32> = leaf_particles
                                [leaf_start[ci] as usize..leaf_start[ci + 1] as usize]
                                .to_vec();
                            let lc = &locals[ci * n1..(ci + 1) * n1];
                            let mut mono = vec![0.0; n1];
                            let mut pairs = 0u64;
                            for &pi in &me {
                                let y = particles[pi as usize].pos;
                                // L2P: potential and gradient of the series.
                                let v = [y[0] - center[0], y[1] - center[1], y[2] - center[2]];
                                ctx.t1.monomials(v, &mut mono);
                                let mut phi = 0.0;
                                for (b, &m) in mono.iter().enumerate() {
                                    phi += lc[b] * m / ctx.t1.factorial[b];
                                }
                                let mut e = [0.0; 3];
                                for (bp, &(bi, bj, bk)) in ctx.t1.idx.iter().enumerate() {
                                    let fb = ctx.t1.factorial[bp];
                                    for (dim, l_shift) in [
                                        ctx.t1.pos(bi as usize + 1, bj as usize, bk as usize),
                                        ctx.t1.pos(bi as usize, bj as usize + 1, bk as usize),
                                        ctx.t1.pos(bi as usize, bj as usize, bk as usize + 1),
                                    ]
                                    .into_iter()
                                    .enumerate()
                                    {
                                        if let Some(lp) = l_shift {
                                            e[dim] -= lc[lp] * mono[bp] / fb;
                                        }
                                    }
                                }
                                // P2P over own + adjacent leaf cells.
                                for dz in -1i32..=1 {
                                    for dy in -1i32..=1 {
                                        for dx in -1i32..=1 {
                                            let nx = cx as i32 + dx;
                                            let ny = cy as i32 + dy;
                                            let nz = cz as i32 + dz;
                                            if nx < 0
                                                || ny < 0
                                                || nz < 0
                                                || nx >= nc as i32
                                                || ny >= nc as i32
                                                || nz >= nc as i32
                                            {
                                                continue;
                                            }
                                            let nb = cell_index(
                                                levels,
                                                [nx as usize, ny as usize, nz as usize],
                                            );
                                            for &pj in &leaf_particles[leaf_start[nb] as usize
                                                ..leaf_start[nb + 1] as usize]
                                            {
                                                if pj == pi {
                                                    continue;
                                                }
                                                let o = particles[pj as usize];
                                                let d = [
                                                    y[0] - o.pos[0],
                                                    y[1] - o.pos[1],
                                                    y[2] - o.pos[2],
                                                ];
                                                let r2 = d[0] * d[0]
                                                    + d[1] * d[1]
                                                    + d[2] * d[2];
                                                let r = r2.sqrt().max(1e-12);
                                                phi += o.q / r;
                                                let f = o.q / (r2 * r);
                                                e[0] += d[0] * f;
                                                e[1] += d[1] * f;
                                                e[2] += d[2] * f;
                                                pairs += 1;
                                            }
                                        }
                                    }
                                }
                                // SAFETY: each particle belongs to one leaf.
                                unsafe {
                                    pv.set(pi as usize, phi);
                                    fv.set(pi as usize, e);
                                }
                            }
                            ptdf::touch(
                                region(salt::FMM_CELLS, (9u64 << 32) | ci as u64),
                                (me.len() * 32) as u64,
                            );
                            charge_flops_irregular(
                                pairs * 12 + me.len() as u64 * (n1 as u64) * 8,
                            );
                        }
                    }
                }
            }
        });
    }
    let _ = prm;
    FieldResult { potential, field }
}

/// Direct O(n²) summation for verification.
pub fn direct(particles: &[Particle]) -> FieldResult {
    let n = particles.len();
    let mut potential = vec![0.0; n];
    let mut field = vec![[0.0; 3]; n];
    for i in 0..n {
        let y = particles[i].pos;
        for (j, o) in particles.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = [y[0] - o.pos[0], y[1] - o.pos[1], y[2] - o.pos[2]];
            let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
            let r = r2.sqrt().max(1e-12);
            potential[i] += o.q / r;
            let f = o.q / (r2 * r);
            field[i][0] += d[0] * f;
            field[i][1] += d[1] * f;
            field[i][2] += d[2] * f;
        }
    }
    FieldResult { potential, field }
}

/// Relative RMS error between two scalar vectors.
pub fn rel_rms(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|y| y * y).sum();
    (num / den.max(1e-300)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn fmm_matches_direct_summation() {
        let prm = Params {
            n_particles: 800,
            levels: 2,
            terms: 5,
            mpl_chunk: 25,
            seed: 11,
        };
        let particles = gen_particles(&prm);
        let fmm = run_fmm(&particles, &prm);
        let exact = direct(&particles);
        let pot_err = rel_rms(&fmm.potential, &exact.potential);
        assert!(pot_err < 5e-3, "potential error {pot_err}");
        let fx: Vec<f64> = fmm.field.iter().map(|f| f[0]).collect();
        let ex: Vec<f64> = exact.field.iter().map(|f| f[0]).collect();
        let f_err = rel_rms(&fx, &ex);
        assert!(f_err < 5e-2, "field error {f_err}");
    }

    #[test]
    fn accuracy_improves_with_terms() {
        let mk = |terms| Params {
            n_particles: 400,
            levels: 2,
            terms,
            mpl_chunk: 25,
            seed: 12,
        };
        let particles = gen_particles(&mk(3));
        let exact = direct(&particles);
        let mut errs = Vec::new();
        for terms in [2, 4, 6] {
            let fmm = run_fmm(&particles, &mk(terms));
            errs.push(rel_rms(&fmm.potential, &exact.potential));
        }
        assert!(
            errs[0] > errs[1] && errs[1] > errs[2],
            "errors must decrease: {errs:?}"
        );
        assert!(errs[2] < 1e-4, "6-term error {}", errs[2]);
    }

    #[test]
    fn parallel_equals_standalone() {
        let prm = Params {
            n_particles: 600,
            levels: 2,
            terms: 4,
            mpl_chunk: 10,
            seed: 13,
        };
        let particles = gen_particles(&prm);
        let standalone = run_fmm(&particles, &prm);
        for kind in [SchedKind::Fifo, SchedKind::Df] {
            let (par, report) = ptdf::run(Config::new(4, kind), {
                let particles = particles.clone();
                move || run_fmm(&particles, &prm)
            });
            assert!(
                rel_rms(&par.potential, &standalone.potential) < 1e-13,
                "{kind:?}"
            );
            assert!(report.total_threads > 64, "{kind:?} must fork per cell");
        }
    }

    #[test]
    fn m2l_phase_allocates_dynamic_memory() {
        let prm = Params {
            n_particles: 1000,
            levels: 2,
            terms: 5,
            mpl_chunk: 5, // small chunks → many partial buffers
            seed: 14,
        };
        let particles = gen_particles(&prm);
        let (_, report) = ptdf::run(Config::new(2, SchedKind::Df), {
            let particles = particles.clone();
            move || run_fmm(&particles, &prm)
        });
        assert!(report.stats.mem.allocs > 100, "partial buffers tracked");
    }

    #[test]
    fn binning_is_a_partition() {
        let prm = Params::small();
        let particles = gen_particles(&prm);
        let (start, order) = bin_particles(&particles, prm.levels);
        assert_eq!(order.len(), particles.len());
        let mut seen = order.clone();
        seen.sort_unstable();
        assert!(seen.iter().enumerate().all(|(i, &v)| v == i as u32));
        assert_eq!(*start.last().unwrap() as usize, particles.len());
        // Each particle is inside its cell.
        let nc = cells_per_side(prm.levels);
        for ci in 0..nc * nc * nc {
            for &pi in &order[start[ci] as usize..start[ci + 1] as usize] {
                let c = leaf_of(particles[pi as usize].pos, prm.levels);
                assert_eq!(cell_index(prm.levels, c), ci);
            }
        }
    }

    /// M2M identity: evaluating a shifted multipole must equal evaluating
    /// the original at a well-separated point.
    #[test]
    fn m2m_shift_preserves_far_field() {
        let ctx = Ctx::new(4);
        let n1 = ctx.n1();
        // A few charges near the child center.
        let child_c = [0.25, 0.25, 0.25];
        let parent_c = [0.5, 0.5, 0.5];
        let charges = [
            ([0.22, 0.27, 0.24], 0.7),
            ([0.28, 0.23, 0.26], -0.4),
            ([0.25, 0.25, 0.29], 1.1),
        ];
        // P2M about the child.
        let mut m_child = vec![0.0; n1];
        let mut mono = vec![0.0; n1];
        for (pos, q) in charges {
            let v = [
                -(pos[0] - child_c[0]),
                -(pos[1] - child_c[1]),
                -(pos[2] - child_c[2]),
            ];
            ctx.t1.monomials(v, &mut mono);
            for a in 0..n1 {
                m_child[a] += q * mono[a] / ctx.t1.factorial[a];
            }
        }
        // M2M to the parent.
        let d = [
            -(child_c[0] - parent_c[0]),
            -(child_c[1] - parent_c[1]),
            -(child_c[2] - parent_c[2]),
        ];
        ctx.t1.monomials(d, &mut mono);
        let mut m_parent = vec![0.0; n1];
        for &(a, b, o) in &ctx.pairs1 {
            m_parent[o as usize] +=
                m_child[a as usize] * mono[b as usize] / ctx.t1.factorial[b as usize];
        }
        // Evaluate both multipoles at a far point y via the kernel jet.
        let y = [3.0, 2.5, 4.0];
        let eval = |m: &[f64], c: [f64; 3]| -> f64 {
            let t = ctx.kj.inv_r_coeffs([y[0] - c[0], y[1] - c[1], y[2] - c[2]]);
            let t2 = ctx.kj.table();
            // φ(y) = Σ_α M_α D^α G(y−c); D^α G = coeff * α!.
            ctx.t1
                .idx
                .iter()
                .enumerate()
                .map(|(a, &(i, j, k))| {
                    let p2 = t2.pos(i as usize, j as usize, k as usize).unwrap();
                    m[a] * t[p2] * t2.factorial[p2]
                })
                .sum()
        };
        let direct: f64 = charges
            .iter()
            .map(|(pos, q)| {
                let d = [y[0] - pos[0], y[1] - pos[1], y[2] - pos[2]];
                q / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
            })
            .sum();
        let via_child = eval(&m_child, child_c);
        let via_parent = eval(&m_parent, parent_c);
        assert!(
            (via_child - direct).abs() / direct.abs() < 1e-4,
            "child multipole far-field: {via_child} vs {direct}"
        );
        assert!(
            (via_parent - via_child).abs() / via_child.abs() < 1e-3,
            "M2M must preserve the far field: {via_parent} vs {via_child}"
        );
    }

    /// L2L identity: shifting a local expansion must not change its value
    /// at a shared evaluation point.
    #[test]
    fn l2l_shift_preserves_potential() {
        let ctx = Ctx::new(5);
        let n1 = ctx.n1();
        // Build a local expansion about cL from a single far charge.
        let c_l = [0.5, 0.5, 0.5];
        let src = [4.0, 3.0, 5.0];
        let q = 2.0;
        let t2 = ctx.kj.table();
        let t = ctx.kj.inv_r_coeffs([c_l[0] - src[0], c_l[1] - src[1], c_l[2] - src[2]]);
        // L_β = D_y^β [q/|y−src|] at cL = q · coeff(β)·β!.
        let mut local = vec![0.0; n1];
        for (b, &(i, j, k)) in ctx.t1.idx.iter().enumerate() {
            let p2 = t2.pos(i as usize, j as usize, k as usize).unwrap();
            local[b] = q * t[p2] * t2.factorial[p2];
        }
        // L2L to a child center.
        let c_child = [0.55, 0.45, 0.52];
        let e = [c_child[0] - c_l[0], c_child[1] - c_l[1], c_child[2] - c_l[2]];
        let mut mono = vec![0.0; n1];
        ctx.t1.monomials(e, &mut mono);
        let mut local_child = vec![0.0; n1];
        for &(a, b, o) in &ctx.pairs1 {
            local_child[a as usize] +=
                local[o as usize] * mono[b as usize] / ctx.t1.factorial[b as usize];
        }
        // Evaluate both at the same nearby point.
        let y = [0.53, 0.49, 0.51];
        let eval = |l: &[f64], c: [f64; 3]| -> f64 {
            let v = [y[0] - c[0], y[1] - c[1], y[2] - c[2]];
            let mut mono = vec![0.0; n1];
            ctx.t1.monomials(v, &mut mono);
            l.iter()
                .zip(&mono)
                .zip(&ctx.t1.factorial)
                .map(|((l, m), f)| l * m / f)
                .sum()
        };
        let exact = {
            let d = [y[0] - src[0], y[1] - src[1], y[2] - src[2]];
            q / (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt()
        };
        let at_l = eval(&local, c_l);
        let at_child = eval(&local_child, c_child);
        assert!((at_l - exact).abs() / exact < 1e-6, "{at_l} vs {exact}");
        assert!(
            (at_child - at_l).abs() / at_l.abs() < 1e-6,
            "L2L must preserve the potential: {at_child} vs {at_l}"
        );
    }

    #[test]
    fn total_charge_appears_in_root_multipole() {
        let prm = Params {
            n_particles: 500,
            levels: 2,
            terms: 4,
            mpl_chunk: 25,
            seed: 15,
        };
        let particles = gen_particles(&prm);
        let ctx = Ctx::new(prm.order());
        let (leaf_start, leaf_particles) = bin_particles(&particles, prm.levels);
        let mut tree = Tree {
            levels: prm.levels,
            n1: ctx.n1(),
            m: (0..=prm.levels)
                .map(|l| vec![0.0; cells_per_side(l).pow(3) * ctx.n1()])
                .collect(),
            l: (0..=prm.levels)
                .map(|l| vec![0.0; cells_per_side(l).pow(3) * ctx.n1()])
                .collect(),
            leaf_start,
            leaf_particles,
        };
        phase_p2m(&particles, &prm, &ctx, &mut tree);
        phase_m2m(&prm, &ctx, &mut tree);
        // M_0 at the root is the total charge (1.0) at every level.
        for level in 0..=prm.levels {
            let total: f64 = (0..cells_per_side(level).pow(3))
                .map(|c| tree.m[level][c * ctx.n1()])
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "level {level}: {total}");
        }
    }
}
