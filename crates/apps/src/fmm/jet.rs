//! Truncated multivariate Taylor ("jet") arithmetic in three variables.
//!
//! Used to evaluate all partial derivatives of the Laplace kernel
//! `G(r) = 1/|r|` up to order `2P` at a point, which is the only analytic
//! ingredient the Cartesian-Taylor FMM translation operators need. Working
//! with jets sidesteps hand-derived recurrences for the derivative tensors:
//! we evaluate `1/sqrt(s0 + u)` in jet arithmetic, where `u` is the
//! (exactly quadratic) jet of `|r0 + h|² − |r0|²`.

use super::tables::MultiIndexTable;

/// Kernel-derivative evaluator for a fixed order.
#[derive(Debug, Clone)]
pub struct KernelJet {
    table: MultiIndexTable,
    /// Truncated-product pair list for this order.
    pairs: Vec<(u32, u32, u32)>,
}

impl KernelJet {
    /// Builds the evaluator for derivatives up to `order`.
    pub fn new(order: usize) -> Self {
        let table = MultiIndexTable::new(order);
        let pairs = table.product_pairs();
        KernelJet { table, pairs }
    }

    /// The underlying index table.
    pub fn table(&self) -> &MultiIndexTable {
        &self.table
    }

    /// Truncated product `out = a * b`.
    fn mul(&self, a: &[f64], b: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        for &(i, j, o) in &self.pairs {
            out[o as usize] += a[i as usize] * b[j as usize];
        }
    }

    /// Taylor coefficients of `G(r0 + h) = 1/|r0 + h|` as a polynomial in
    /// `h`: returns `T` with `T[γ] = D^γ G(r0) / γ!`.
    ///
    /// # Panics
    /// Panics if `r0` is the origin.
    pub fn inv_r_coeffs(&self, r0: [f64; 3]) -> Vec<f64> {
        let n = self.table.len();
        let order = self.table.order;
        let s0 = r0[0] * r0[0] + r0[1] * r0[1] + r0[2] * r0[2];
        assert!(s0 > 0.0, "kernel jet at the origin");
        // u = |r0+h|² − s0 = 2 r0·h + |h|², an exact (quadratic) jet.
        let mut u = vec![0.0; n];
        let t = &self.table;
        if order >= 1 {
            u[t.pos(1, 0, 0).unwrap()] = 2.0 * r0[0];
            u[t.pos(0, 1, 0).unwrap()] = 2.0 * r0[1];
            u[t.pos(0, 0, 1).unwrap()] = 2.0 * r0[2];
        }
        if order >= 2 {
            u[t.pos(2, 0, 0).unwrap()] = 1.0;
            u[t.pos(0, 2, 0).unwrap()] = 1.0;
            u[t.pos(0, 0, 2).unwrap()] = 1.0;
        }
        // Univariate series of g(s) = s^{-1/2} about s0:
        //   c_k = binom(-1/2, k) s0^{-1/2-k}.
        let mut c = vec![0.0; order + 1];
        let mut binom = 1.0; // binom(-1/2, 0)
        let mut s_pow = 1.0 / s0.sqrt(); // s0^{-1/2-k} running value
        for (k, ck) in c.iter_mut().enumerate() {
            *ck = binom * s_pow;
            binom *= (-0.5 - k as f64) / (k as f64 + 1.0);
            s_pow /= s0;
        }
        // Horner on jets: G = ((c_m u + c_{m-1}) u + ...) u + c_0.
        let mut g = vec![0.0; n];
        g[0] = c[order];
        let mut tmp = vec![0.0; n];
        for k in (0..order).rev() {
            self.mul(&g, &u, &mut tmp);
            std::mem::swap(&mut g, &mut tmp);
            g[0] += c[k];
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(r: [f64; 3]) -> f64 {
        1.0 / (r[0] * r[0] + r[1] * r[1] + r[2] * r[2]).sqrt()
    }

    #[test]
    fn zeroth_coefficient_is_value() {
        let kj = KernelJet::new(4);
        let r0 = [1.0, 2.0, -0.5];
        let t = kj.inv_r_coeffs(r0);
        assert!((t[0] - g(r0)).abs() < 1e-14);
    }

    #[test]
    fn first_derivatives_match_closed_form() {
        let kj = KernelJet::new(3);
        let r0 = [1.5, -0.7, 2.2];
        let t = kj.inv_r_coeffs(r0);
        let r3 = (r0[0] * r0[0] + r0[1] * r0[1] + r0[2] * r0[2]).powf(1.5);
        // D_x (1/r) = -x/r³ and T[e_x] = D_x G / 1!.
        let tb = kj.table();
        assert!((t[tb.pos(1, 0, 0).unwrap()] + r0[0] / r3).abs() < 1e-12);
        assert!((t[tb.pos(0, 1, 0).unwrap()] + r0[1] / r3).abs() < 1e-12);
        assert!((t[tb.pos(0, 0, 1).unwrap()] + r0[2] / r3).abs() < 1e-12);
    }

    #[test]
    fn second_derivatives_match_closed_form() {
        let kj = KernelJet::new(4);
        let r0 = [0.9, 1.1, -1.3];
        let t = kj.inv_r_coeffs(r0);
        let r2 = r0[0] * r0[0] + r0[1] * r0[1] + r0[2] * r0[2];
        let r5 = r2.powf(2.5);
        let tb = kj.table();
        // D_xx (1/r) = (3x² - r²)/r⁵; T[(2,0,0)] = D_xx/2!.
        let want = (3.0 * r0[0] * r0[0] - r2) / r5 / 2.0;
        assert!((t[tb.pos(2, 0, 0).unwrap()] - want).abs() < 1e-12);
        // D_xy (1/r) = 3xy/r⁵; T[(1,1,0)] = D_xy.
        let want = 3.0 * r0[0] * r0[1] / r5;
        assert!((t[tb.pos(1, 1, 0).unwrap()] - want).abs() < 1e-12);
    }

    #[test]
    fn taylor_series_predicts_nearby_values() {
        let kj = KernelJet::new(8);
        let r0 = [2.0, 1.0, -1.5];
        let t = kj.inv_r_coeffs(r0);
        let tb = kj.table();
        let h = [0.05, -0.08, 0.06];
        let mut mono = vec![0.0; tb.len()];
        tb.monomials(h, &mut mono);
        let approx: f64 = t.iter().zip(&mono).map(|(a, b)| a * b).sum();
        let exact = g([r0[0] + h[0], r0[1] + h[1], r0[2] + h[2]]);
        assert!(
            (approx - exact).abs() / exact < 1e-10,
            "approx {approx} exact {exact}"
        );
    }

    #[test]
    fn laplace_kernel_is_harmonic() {
        // Δ(1/r) = 0 away from the origin: T[(2,0,0)]·2 + T[(0,2,0)]·2 +
        // T[(0,0,2)]·2 must vanish.
        let kj = KernelJet::new(2);
        let t = kj.inv_r_coeffs([1.3, -2.1, 0.4]);
        let tb = kj.table();
        let lap = 2.0
            * (t[tb.pos(2, 0, 0).unwrap()]
                + t[tb.pos(0, 2, 0).unwrap()]
                + t[tb.pos(0, 0, 2).unwrap()]);
        assert!(lap.abs() < 1e-12, "laplacian {lap}");
    }
}
