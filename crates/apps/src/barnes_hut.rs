//! Barnes-Hut N-body simulation (paper §5.1.1, after the SPLASH-2 "Barnes"
//! application).
//!
//! Each timestep has three phases: build an octree over the bodies,
//! compute the force on every body by traversing the tree with the opening
//! criterion θ, and update positions and velocities.
//!
//! * **Fine-grained** (the paper's rewrite): the tree build forks a thread
//!   per sufficiently large octant subtree; the force phase recursively
//!   forks a thread per subtree until a subtree holds fewer than `grain`
//!   bodies (paper: ~8 leaves); the update phase forks a thread per chunk.
//!   No partitioning scheme is needed — the scheduler balances the load.
//! * **Coarse-grained** (SPLASH-2 style): one thread per processor with
//!   barriers between phases, bodies partitioned by a costzones scheme:
//!   contiguous tree-order zones of roughly equal work, weighted by each
//!   body's interaction count from the previous timestep.
//!
//! Input is the Plummer model, as in SPLASH-2.

use ptdf::{Barrier, Mutex};

use crate::util::{charge_flops_irregular, region, salt, uniform01, SharedBuf};

/// 3-vector helpers.
type V3 = [f64; 3];

fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}
fn sub3(a: V3, b: V3) -> V3 {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}
fn scale(a: V3, s: f64) -> V3 {
    [a[0] * s, a[1] * s, a[2] * s]
}
fn norm2(a: V3) -> f64 {
    a[0] * a[0] + a[1] * a[1] + a[2] * a[2]
}

/// A body.
#[derive(Debug, Clone, Copy, Default)]
pub struct Body {
    /// Position.
    pub pos: V3,
    /// Velocity.
    pub vel: V3,
    /// Mass.
    pub mass: f64,
}

/// Problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of bodies.
    pub n_bodies: usize,
    /// Simulated timesteps.
    pub timesteps: usize,
    /// Opening criterion θ (smaller = more accurate).
    pub theta: f64,
    /// Integration step.
    pub dt: f64,
    /// Bodies per octree leaf.
    pub leaf_cap: usize,
    /// Force-phase threads stop forking below this many bodies per subtree.
    pub grain: usize,
    /// Seed for the Plummer sampler.
    pub seed: u64,
}

impl Params {
    /// The paper's scale: 100k bodies (Plummer), leafy tree.
    pub fn paper() -> Self {
        Params {
            n_bodies: 100_000,
            timesteps: 2,
            theta: 0.75,
            dt: 0.025,
            leaf_cap: 8,
            grain: 64,
            seed: 0xB0D1,
        }
    }

    /// Scaled-down configuration.
    pub fn small() -> Self {
        Params {
            n_bodies: 4_000,
            timesteps: 2,
            theta: 0.75,
            dt: 0.025,
            leaf_cap: 8,
            grain: 64,
            seed: 0xB0D1,
        }
    }
}

/// Samples `n` bodies from the Plummer model (standard Aarseth sampling,
/// scale radius 1, total mass 1), truncated at radius 10.
pub fn plummer(n: usize, seed: u64) -> Vec<Body> {
    let mut s = seed;
    let mut bodies = Vec::with_capacity(n);
    while bodies.len() < n {
        let u = uniform01(&mut s).max(1e-9);
        let r = (u.powf(-2.0 / 3.0) - 1.0).powf(-0.5);
        if r > 10.0 {
            continue;
        }
        let pos = scale(rand_dir(&mut s), r);
        // Velocity magnitude via von Neumann rejection on g(q)=q²(1-q²)^3.5.
        let q = loop {
            let q = uniform01(&mut s);
            let g = q * q * (1.0 - q * q).powf(3.5);
            if uniform01(&mut s) * 0.1 < g {
                break q;
            }
        };
        let vmag = q * std::f64::consts::SQRT_2 * (1.0 + r * r).powf(-0.25);
        bodies.push(Body {
            pos,
            vel: scale(rand_dir(&mut s), vmag),
            mass: 1.0 / n as f64,
        });
    }
    bodies
}

fn rand_dir(s: &mut u64) -> V3 {
    // Marsaglia sphere point picking.
    loop {
        let x = uniform01(s) * 2.0 - 1.0;
        let y = uniform01(s) * 2.0 - 1.0;
        let k = x * x + y * y;
        if k < 1.0 {
            let f = 2.0 * (1.0 - k).sqrt();
            return [x * f, y * f, 1.0 - 2.0 * k];
        }
    }
}

/// An octree node.
#[derive(Debug)]
pub enum BhNode {
    /// Leaf holding body indices.
    Leaf {
        /// Indices of the bodies in this cell.
        bodies: Vec<u32>,
        /// Total mass.
        mass: f64,
        /// Center of mass.
        com: V3,
    },
    /// Internal cell.
    Internal {
        /// Child octants (some may be absent).
        children: [Option<Box<BhNode>>; 8],
        /// Total mass.
        mass: f64,
        /// Center of mass.
        com: V3,
        /// Cell half-width (for the opening criterion).
        half: f64,
        /// Bodies contained (for force-phase granularity decisions).
        count: usize,
    },
}

impl BhNode {
    /// Total mass.
    pub fn mass(&self) -> f64 {
        match self {
            BhNode::Leaf { mass, .. } => *mass,
            BhNode::Internal { mass, .. } => *mass,
        }
    }

    /// Center of mass.
    pub fn com(&self) -> V3 {
        match self {
            BhNode::Leaf { com, .. } => *com,
            BhNode::Internal { com, .. } => *com,
        }
    }

    /// Number of bodies.
    pub fn count(&self) -> usize {
        match self {
            BhNode::Leaf { bodies, .. } => bodies.len(),
            BhNode::Internal { count, .. } => *count,
        }
    }

    /// Number of cells in the tree.
    pub fn cells(&self) -> usize {
        match self {
            BhNode::Leaf { .. } => 1,
            BhNode::Internal { children, .. } => {
                1 + children
                    .iter()
                    .flatten()
                    .map(|c| c.cells())
                    .sum::<usize>()
            }
        }
    }
}

fn make_leaf(bodies: &[Body], idx: Vec<u32>) -> BhNode {
    let mut mass = 0.0;
    let mut com = [0.0; 3];
    for &i in &idx {
        let b = &bodies[i as usize];
        mass += b.mass;
        com = add(com, scale(b.pos, b.mass));
    }
    if mass > 0.0 {
        com = scale(com, 1.0 / mass);
    }
    BhNode::Leaf {
        bodies: idx,
        mass,
        com,
    }
}

/// Builds the octree over `idx` within the cell (`center`, `half`).
/// `build_stats` models the paper's mutex-protected shared tree state.
fn build_rec(
    bodies: &[Body],
    idx: Vec<u32>,
    center: V3,
    half: f64,
    p: &Params,
    parallel: bool,
    build_stats: &Mutex<usize>,
) -> BhNode {
    charge_flops_irregular(idx.len() as u64 * 6);
    {
        // The paper's fine-grained build takes a Pthread mutex to update the
        // shared, partially-built tree; we model that contended update here.
        *build_stats.lock() += 1;
    }
    if idx.len() <= p.leaf_cap || half < 1e-6 {
        return make_leaf(bodies, idx);
    }
    // Partition into octants.
    let mut parts: [Vec<u32>; 8] = Default::default();
    for &i in &idx {
        let b = bodies[i as usize].pos;
        let o = (usize::from(b[0] >= center[0]) << 2)
            | (usize::from(b[1] >= center[1]) << 1)
            | usize::from(b[2] >= center[2]);
        parts[o].push(i);
    }
    drop(idx);
    let count: usize = parts.iter().map(|v| v.len()).sum();
    let q = half / 2.0;
    let child_center = |o: usize| {
        [
            center[0] + if o & 4 != 0 { q } else { -q },
            center[1] + if o & 2 != 0 { q } else { -q },
            center[2] + if o & 1 != 0 { q } else { -q },
        ]
    };
    let mut children: [Option<Box<BhNode>>; 8] = Default::default();
    ptdf::scope(|s| {
        let mut handles = Vec::new();
        for (o, (slot, part)) in children.iter_mut().zip(parts).enumerate() {
            if part.is_empty() {
                continue;
            }
            let cc = child_center(o);
            let fork = parallel && part.len() > p.grain;
            if fork {
                let h = s.spawn(move || {
                    Box::new(build_rec(bodies, part, cc, q, p, parallel, build_stats))
                });
                handles.push((o, h));
            } else {
                *slot = Some(Box::new(build_rec(
                    bodies,
                    part,
                    cc,
                    q,
                    p,
                    parallel,
                    build_stats,
                )));
            }
        }
        for (o, h) in handles {
            children[o] = Some(h.join());
        }
    });
    let mut mass = 0.0;
    let mut com = [0.0; 3];
    for c in children.iter().flatten() {
        mass += c.mass();
        com = add(com, scale(c.com(), c.mass()));
    }
    if mass > 0.0 {
        com = scale(com, 1.0 / mass);
    }
    BhNode::Internal {
        children,
        mass,
        com,
        half,
        count,
    }
}

/// Builds the octree for the body set.
pub fn build_tree(bodies: &[Body], p: &Params, parallel: bool) -> BhNode {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for b in bodies {
        for d in 0..3 {
            lo[d] = lo[d].min(b.pos[d]);
            hi[d] = hi[d].max(b.pos[d]);
        }
    }
    let center = [
        (lo[0] + hi[0]) / 2.0,
        (lo[1] + hi[1]) / 2.0,
        (lo[2] + hi[2]) / 2.0,
    ];
    let half = (0..3).map(|d| (hi[d] - lo[d]) / 2.0).fold(0.0, f64::max) + 1e-9;
    let stats = Mutex::new(0usize);
    let idx: Vec<u32> = (0..bodies.len() as u32).collect();
    build_rec(bodies, idx, center, half, p, parallel, &stats)
}

/// Gravitational acceleration on `pos` from the tree (softening ε² = 1e-4;
/// counts body-cell interactions for cost charging). Leaf cells are always
/// opened (direct sum over their bodies, excluding the target itself via
/// the softening guard).
pub fn accel_on(
    bodies: &[Body],
    pos: V3,
    tree: &BhNode,
    theta: f64,
    interactions: &mut u64,
) -> V3 {
    const EPS2: f64 = 1e-4;
    let mut acc = [0.0; 3];
    // Explicit stack walk (avoids deep fiber recursion on large trees).
    let mut stack: Vec<&BhNode> = vec![tree];
    while let Some(node) = stack.pop() {
        match node {
            BhNode::Leaf { bodies: idx, .. } => {
                for &i in idx {
                    let b = &bodies[i as usize];
                    let d = sub3(b.pos, pos);
                    let r2 = norm2(d) + EPS2;
                    if r2 > EPS2 * 1.5 {
                        let inv = b.mass / (r2 * r2.sqrt());
                        acc = add(acc, scale(d, inv));
                    }
                }
                *interactions += idx.len() as u64;
            }
            BhNode::Internal {
                children,
                mass,
                com,
                half,
                ..
            } => {
                let d = sub3(*com, pos);
                let r2 = norm2(d) + EPS2;
                if (2.0 * half) * (2.0 * half) < theta * theta * r2 {
                    let inv = mass / (r2 * r2.sqrt());
                    acc = add(acc, scale(d, inv));
                    *interactions += 1;
                } else {
                    for c in children.iter().flatten() {
                        stack.push(c);
                    }
                }
            }
        }
    }
    acc
}

/// Force phase over a subtree: recursively forks per child subtree until
/// fewer than `grain` bodies, then computes accelerations for the subtree's
/// bodies (each walking the whole tree from the root).
fn force_rec(
    bodies: &[Body],
    node: &BhNode,
    root: &BhNode,
    acc: SharedBuf<V3>,
    p: &Params,
    parallel: bool,
    path: u64,
) {
    match node {
        BhNode::Leaf {
            bodies: idx, ..
        } => {
            ptdf::touch(region(salt::BH_BODIES, path), (idx.len() * 80) as u64);
            let mut inter = 0u64;
            for &i in idx {
                let a = accel_on(bodies, bodies[i as usize].pos, root, p.theta, &mut inter);
                // SAFETY: each body index belongs to exactly one leaf.
                unsafe { acc.set(i as usize, a) };
            }
            charge_flops_irregular(inter * 22);
        }
        BhNode::Internal { children, .. } => {
            ptdf::scope(|s| {
                for (o, c) in children.iter().flatten().enumerate() {
                    let child_path = path * 8 + o as u64 + 1;
                    if parallel && c.count() > p.grain {
                        s.spawn(move || force_rec(bodies, c, root, acc, p, parallel, child_path));
                    } else {
                        force_rec(bodies, c, root, acc, p, parallel, child_path);
                    }
                }
            });
        }
    }
}

/// One simulation timestep (build, force, update). Returns the tree cell
/// count (for stats). `parallel` selects fine-grained forking.
pub fn step(bodies: &mut [Body], p: &Params, parallel: bool) -> usize {
    let tree = build_tree(bodies, p, parallel);
    let cells = tree.cells();
    let n = bodies.len();
    let mut acc = vec![[0.0f64; 3]; n];
    {
        let av = SharedBuf::new(&mut acc);
        force_rec(bodies, &tree, &tree, av, p, parallel, 0);
    }
    // Update phase: thread per chunk.
    let chunk = p.grain.max(1) * 4;
    {
        let bv = SharedBuf::new(bodies);
        let av = SharedBuf::new(&mut acc);
        ptdf::scope(|s| {
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                let dt = p.dt;
                let body = move || {
                    for i in lo..hi {
                        // SAFETY: disjoint index ranges per thread.
                        unsafe {
                            let mut b = bv.get(i);
                            let a = av.get(i);
                            b.vel = add(b.vel, scale(a, dt));
                            b.pos = add(b.pos, scale(b.vel, dt));
                            bv.set(i, b);
                        }
                    }
                    charge_flops_irregular((hi - lo) as u64 * 12);
                };
                if parallel {
                    s.spawn(body);
                } else {
                    body();
                }
                lo = hi;
            }
        });
    }
    cells
}

/// Runs the fine-grained simulation for `p.timesteps` steps.
pub fn run_fine(bodies: &mut [Body], p: &Params) {
    for _ in 0..p.timesteps {
        step(bodies, p, true);
    }
}

/// Coarse-grained (SPLASH-2 style) simulation: one thread per processor,
/// barriers between phases, bodies partitioned in tree (Morton-ish) order
/// weighted by the previous step's per-chunk interaction counts — the
/// costzones approximation.
pub fn run_coarse(bodies: &mut [Body], p: &Params, procs: usize) {
    let n = bodies.len();
    // Costzones state: per-body work weight from the previous timestep's
    // interaction counts (uniform on the first step), as in SPLASH-2.
    let mut weights: Vec<u32> = vec![1; n];
    for _ in 0..p.timesteps {
        // Phase 1: tree build (parallel over octant subtrees with the
        // mutex-guarded shared state, like the SPLASH-2 lock-based build).
        let tree = build_tree(bodies, p, true);
        // Collect leaf body order (tree order ≈ spatial locality).
        let mut order = Vec::with_capacity(n);
        collect_tree_order(&tree, &mut order);
        // Costzones partition: contiguous tree-order ranges of roughly
        // equal previous-step work.
        let total: u64 = order.iter().map(|&i| weights[i as usize] as u64).sum();
        let per = total.div_ceil(procs as u64).max(1);
        let mut cuts = Vec::with_capacity(procs + 1);
        cuts.push(0usize);
        let mut acc_w = 0u64;
        for (pos, &i) in order.iter().enumerate() {
            acc_w += weights[i as usize] as u64;
            if acc_w >= per && cuts.len() < procs {
                cuts.push(pos + 1);
                acc_w = 0;
            }
        }
        while cuts.len() < procs {
            cuts.push(n);
        }
        cuts.push(n);
        // Phase 2: forces over the costzones, one long-lived thread each.
        let mut acc = vec![[0.0f64; 3]; n];
        let mut new_weights: Vec<u32> = vec![1; n];
        {
            let av = SharedBuf::new(&mut acc);
            let wv = SharedBuf::new(&mut new_weights);
            let tree = &tree;
            let order = &order;
            let cuts = &cuts;
            let bodies2: &[Body] = bodies;
            let barrier = Barrier::new(procs);
            ptdf::scope(|s| {
                for t in 0..procs {
                    let barrier = barrier.clone();
                    s.spawn(move || {
                        let (lo, hi) = (cuts[t], cuts[t + 1]);
                        let mut total_inter = 0u64;
                        ptdf::touch(region(salt::BH_BODIES, t as u64), ((hi - lo) * 80) as u64);
                        for &i in &order[lo..hi] {
                            let mut inter = 0u64;
                            let a = accel_on(
                                bodies2,
                                bodies2[i as usize].pos,
                                tree,
                                p.theta,
                                &mut inter,
                            );
                            // SAFETY: disjoint body sets per thread.
                            unsafe {
                                av.set(i as usize, a);
                                wv.set(i as usize, inter.min(u32::MAX as u64) as u32);
                            }
                            total_inter += inter;
                        }
                        charge_flops_irregular(total_inter * 22);
                        barrier.wait();
                    });
                }
            });
        }
        weights = new_weights;
        // Phase 3: update.
        for (b, a) in bodies.iter_mut().zip(&acc) {
            b.vel = add(b.vel, scale(*a, p.dt));
            b.pos = add(b.pos, scale(b.vel, p.dt));
        }
        charge_flops_irregular(n as u64 * 12);
    }
}

fn collect_tree_order(node: &BhNode, out: &mut Vec<u32>) {
    match node {
        BhNode::Leaf { bodies, .. } => out.extend_from_slice(bodies),
        BhNode::Internal { children, .. } => {
            for c in children.iter().flatten() {
                collect_tree_order(c, out);
            }
        }
    }
}

/// Direct O(n²) accelerations for verification.
pub fn direct_accels(bodies: &[Body]) -> Vec<V3> {
    const EPS2: f64 = 1e-4;
    bodies
        .iter()
        .map(|bi| {
            let mut a = [0.0; 3];
            for bj in bodies {
                let d = sub3(bj.pos, bi.pos);
                let r2 = norm2(d) + EPS2;
                if r2 > EPS2 * 1.5 {
                    a = add(a, scale(d, bj.mass / (r2 * r2.sqrt())));
                }
            }
            a
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{Config, SchedKind};

    #[test]
    fn plummer_statistics() {
        let bodies = plummer(20_000, 1);
        let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((total_mass - 1.0).abs() < 1e-9);
        // Half-mass radius of a (untruncated) Plummer sphere ≈ 1.30.
        let mut radii: Vec<f64> = bodies.iter().map(|b| norm2(b.pos).sqrt()).collect();
        radii.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let half_mass_r = radii[radii.len() / 2];
        assert!(
            (1.0..1.6).contains(&half_mass_r),
            "half-mass radius {half_mass_r}"
        );
        // Center of mass near origin.
        let com: V3 = bodies
            .iter()
            .fold([0.0; 3], |acc, b| add(acc, scale(b.pos, b.mass)));
        assert!(norm2(com).sqrt() < 0.1);
    }

    #[test]
    fn tree_partitions_all_bodies() {
        let p = Params::small();
        let bodies = plummer(2000, 2);
        let tree = build_tree(&bodies, &p, false);
        assert_eq!(tree.count(), 2000);
        let mut order = Vec::new();
        collect_tree_order(&tree, &mut order);
        order.sort_unstable();
        assert!(order.iter().enumerate().all(|(i, &v)| v == i as u32));
        assert!((tree.mass() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bh_accels_close_to_direct() {
        let mut p = Params::small();
        p.theta = 0.3; // accuracy mode for the check
        let bodies = plummer(500, 3);
        let tree = build_tree(&bodies, &p, false);
        let direct = direct_accels(&bodies);
        let mut err_num = 0.0;
        let mut err_den = 0.0;
        let mut inter = 0;
        for (b, d) in bodies.iter().zip(&direct) {
            let a = accel_on(&bodies, b.pos, &tree, p.theta, &mut inter);
            err_num += norm2(sub3(a, *d));
            err_den += norm2(*d);
        }
        let rel = (err_num / err_den).sqrt();
        assert!(rel < 0.02, "relative force error {rel}");
    }

    #[test]
    fn fine_and_coarse_agree() {
        let p = Params {
            n_bodies: 800,
            timesteps: 2,
            grain: 50,
            ..Params::small()
        };
        let init = plummer(p.n_bodies, 4);
        let (fine, _) = ptdf::run(Config::new(4, SchedKind::Df), {
            let mut b = init.clone();
            move || {
                run_fine(&mut b, &p);
                b
            }
        });
        let (coarse, _) = ptdf::run(Config::new(4, SchedKind::Fifo), {
            let mut b = init.clone();
            move || {
                run_coarse(&mut b, &p, 4);
                b
            }
        });
        for (f, c) in fine.iter().zip(&coarse) {
            assert!(norm2(sub3(f.pos, c.pos)) < 1e-18);
        }
    }

    #[test]
    fn fine_forks_many_threads_and_df_bounds_them() {
        let p = Params {
            n_bodies: 3000,
            timesteps: 1,
            grain: 32,
            ..Params::small()
        };
        let bodies = plummer(p.n_bodies, 5);
        let (_, report) = ptdf::run(Config::new(8, SchedKind::Df), {
            let mut b = bodies.clone();
            move || run_fine(&mut b, &p)
        });
        assert!(report.total_threads > 50, "forked {}", report.total_threads);
        assert!(
            report.max_live_threads() < report.total_threads as u64 / 2,
            "DF should not keep all threads live: {} of {}",
            report.max_live_threads(),
            report.total_threads
        );
    }

    #[test]
    fn momentum_roughly_conserved_over_step() {
        let p = Params {
            n_bodies: 1000,
            timesteps: 1,
            ..Params::small()
        };
        let mut bodies = plummer(p.n_bodies, 6);
        let p0: V3 = bodies
            .iter()
            .fold([0.0; 3], |acc, b| add(acc, scale(b.vel, b.mass)));
        step(&mut bodies, &p, false);
        let p1: V3 = bodies
            .iter()
            .fold([0.0; 3], |acc, b| add(acc, scale(b.vel, b.mass)));
        // Approximate (tree) forces are not exactly pairwise-antisymmetric,
        // but momentum drift per step must be small.
        assert!(norm2(sub3(p1, p0)).sqrt() < 1e-3);
    }
}
