//! `ptdf-trace`: inspect flight-recorder traces.
//!
//! The runtime's flight recorder ([`ptdf::Trace`], enabled with
//! [`ptdf::Config::with_trace`]) exports Chrome/Perfetto trace-event JSON.
//! This tool reads those files back (they round-trip losslessly through
//! `Trace::from_chrome_json`) and offers six subcommands:
//!
//! * `summarize <trace.json>` — configuration echo, span/event tallies,
//!   counter-track maxima, per-thread lifecycle percentiles
//!   (spawn→first-dispatch latency, ready-wait), per-object blocked time
//!   (top waits by cumulative duration), and — when the run was profiled
//!   with [`ptdf::Config::with_host_profile`] — the host engine phase
//!   table (heap/dispatch/trace-alloc counts and real-nanosecond shares).
//! * `critpath <trace.json> [--top N] [--json] [--perfetto OUT]` — walk
//!   the observed critical path backwards through the trace's causal
//!   edges ([`ptdf::analyze_with_makespan`]) and report blame buckets
//!   (compute, ready-wait, lock contention per sync object, join wait,
//!   preemption, residual) as percentages of the makespan, naming the
//!   dominant bucket and the top-N blamed objects and threads. The
//!   buckets sum bit-exactly to the makespan — the tool re-verifies this
//!   and exits 1 on a mismatch. `--perfetto` re-exports the trace with
//!   the path overlaid as a dedicated track (pid 1).
//! * `validate <trace.json> [--s1 B] [--depth B] [--factor F]` — structural
//!   checks (span overlap, event ordering, counter monotonicity, lifecycle
//!   consistency) plus an optional space-bound audit against the paper's
//!   `S1 + O(p·D)` guarantee: with `--s1` (serial footprint, bytes) and
//!   `--depth` (per-processor depth allowance, bytes) the footprint
//!   high-water mark must stay within `S1 + factor·p·depth`.
//! * `audit <trace.json>... --s1 B --depth B [--factor F]` — the same
//!   space-bound comparison as `validate`, batched over many traces and
//!   reporting the *margin* to the bound per trace (how far under — or
//!   over — `S1 + factor·p·D` the run peaked), along with any
//!   bound-violation events the runtime itself recorded when armed via
//!   [`ptdf::Config::with_space_bound`].
//! * `check <trace.json>...` — run the happens-before checker
//!   ([`ptdf::check_trace`]) over each trace: lost notifies/wakeups,
//!   wait-past-notify, block/wake pairing, lifecycle inversions, and
//!   deadlocks the sentinel recorded (rendered as
//!   `deadlock at <t>: waits-for cycle t1 -> t2 -> ... -> t1`). Prints a
//!   replay recipe (`--sched <policy> [--perturb-seed <s>] [--chaos-seed
//!   <c>]`) for any trace recorded under perturbation or chaos.
//! * `diff <a.json> <b.json>` — side-by-side comparison of two traces
//!   (schedulers, footprint, event counts, latency percentiles).
//!
//! Exit status: 0 on success, 1 on a failed validation or audit, 2 on
//! usage or I/O errors.

use std::process::ExitCode;

use ptdf::Trace;
use ptdf_smp::VirtTime;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("critpath") => cmd_critpath(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("audit") => cmd_audit(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprint!("{USAGE}");
            Ok(ExitCode::from(if args.is_empty() { 2 } else { 0 }))
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    match code {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("ptdf-trace: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: ptdf-trace <command> [args]

commands:
  summarize <trace.json>
      Print configuration, span/event tallies, counter maxima,
      per-thread lifecycle percentiles, per-object blocked time, and
      the host engine phase profile when the run recorded one.
  critpath <trace.json> [--top N] [--json] [--perfetto OUT]
      Blame-attributed observed critical path: per-bucket shares of
      the makespan (compute, ready-wait, lock-wait, join-wait,
      preempt, residual), the dominant bucket, and the top-N blamed
      sync objects and threads. --json emits the full path as JSON;
      --perfetto writes a Chrome/Perfetto file with the path overlaid
      as its own track. Exits 1 if the buckets fail to tile the
      makespan exactly.
  validate <trace.json> [--s1 BYTES] [--depth BYTES] [--factor F]
      Structural validation; with --s1 and --depth also audits the
      footprint high-water mark against S1 + factor * p * depth
      (factor defaults to 1.0).
  audit <trace.json>... --s1 BYTES --depth BYTES [--factor F]
      Space-bound audit with margin: for each trace, compare the
      footprint high-water mark against S1 + factor * p * depth and
      print the margin to the bound (negative = over). Also reports
      bound-violation events the runtime recorded when the run was
      armed with Config::with_space_bound. Exits 1 if any trace is
      over the bound.
  check <trace.json>...
      Happens-before checking: lost notifies/wakeups, wait-past-notify,
      block/wake pairing, lifecycle inversions, recorded deadlock
      cycles. Exits 1 if any trace has violations; prints the replay
      recipe when one is recorded.
  diff <a.json> <b.json>
      Compare two traces side by side.
";

fn load(path: &str) -> Result<Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Trace::from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))
}

// ---------------------------------------------------------------------------
// summarize
// ---------------------------------------------------------------------------

fn cmd_summarize(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err(format!("summarize expects one trace file\n{USAGE}"));
    };
    let trace = load(path)?;
    print!("{}", summarize(&trace));
    Ok(ExitCode::SUCCESS)
}

/// Renders the human-readable summary of a trace.
fn summarize(trace: &Trace) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let m = &trace.meta;
    let quota = m
        .quota
        .map(|k| format!(", quota {k} B"))
        .unwrap_or_default();
    let _ = writeln!(
        out,
        "scheduler {} on {} procs (default stack {} B{quota})",
        m.scheduler, m.processors, m.default_stack
    );

    let makespan = trace
        .spans
        .iter()
        .map(|s| s.end)
        .max()
        .unwrap_or(VirtTime::ZERO);
    let _ = writeln!(out, "makespan   {makespan}");
    let _ = writeln!(out, "spans      {}", trace.len());

    let _ = writeln!(out, "events     {}", trace.events.len());
    for (kind, count) in trace.event_kind_counts() {
        let _ = writeln!(out, "  {kind:<15} {count}");
    }

    let _ = writeln!(out, "counters");
    let _ = writeln!(
        out,
        "  footprint hwm   {} B ({} samples)",
        trace.footprint_hwm(),
        trace.counters.footprint.len()
    );
    let _ = writeln!(
        out,
        "  live threads    {} max ({} samples)",
        trace.max_live_threads(),
        trace.counters.live_threads.len()
    );
    let ready_max = track_max(&trace.counters.ready);
    let _ = writeln!(
        out,
        "  ready queue     {} max ({} samples)",
        ready_max,
        trace.counters.ready.len()
    );
    if !trace.counters.active_deques.is_empty() {
        let _ = writeln!(
            out,
            "  active deques   {} max ({} samples)",
            track_max(&trace.counters.active_deques),
            trace.counters.active_deques.len()
        );
    }
    if let Some(&(_, wait)) = trace.counters.sched_lock_wait.last() {
        let _ = writeln!(
            out,
            "  sched-lock wait {} cumulative",
            VirtTime::from_ns(wait)
        );
    }

    let lc = trace.lifecycle();
    let _ = writeln!(
        out,
        "threads    {} ({} quanta total)",
        lc.threads, lc.total_quanta
    );
    let _ = writeln!(
        out,
        "  dispatch latency p50 {} / p90 {} / p99 {} / max {}  (n={})",
        lc.dispatch_latency.p50,
        lc.dispatch_latency.p90,
        lc.dispatch_latency.p99,
        lc.dispatch_latency.max,
        lc.dispatch_latency.count
    );
    let _ = writeln!(
        out,
        "  ready wait       p50 {} / p90 {} / p99 {} / max {}  (n={})",
        lc.ready_wait.p50,
        lc.ready_wait.p90,
        lc.ready_wait.p99,
        lc.ready_wait.max,
        lc.ready_wait.count
    );

    // Per-object blocked time: every Block..Wake/Timeout pairing in the
    // trace, aggregated per sync object, heaviest first.
    let waits = ptdf::object_waits(trace);
    if !waits.is_empty() {
        let shown = waits.len().min(5);
        let _ = writeln!(out, "blocked time by object (top {shown} of {})", waits.len());
        for w in waits.iter().take(shown) {
            let _ = writeln!(
                out,
                "  {:<10} #{:<4} total {} over {} wait(s), max {}",
                w.reason.name(),
                w.obj,
                w.total,
                w.waits,
                w.max
            );
        }
    }

    // Host engine phase profile, when the run carried one
    // (Config::with_host_profile). These are real host nanoseconds, not
    // virtual time.
    if let Some(hp) = &trace.host_phase {
        let total = hp.total_ns().max(1);
        let _ = writeln!(out, "host phases (profiled, {} ns total)", hp.total_ns());
        for (name, ps) in hp.phases() {
            let _ = writeln!(
                out,
                "  {name:<12} {:>9} calls  {:>12} ns ({:>5.1}%)  mean {:.0} ns",
                ps.count,
                ps.ns,
                ps.ns as f64 * 100.0 / total as f64,
                ps.mean_ns()
            );
        }
    }
    out
}

fn track_max(track: &[(VirtTime, u64)]) -> u64 {
    track.iter().map(|&(_, v)| v).max().unwrap_or(0)
}

// ---------------------------------------------------------------------------
// critpath
// ---------------------------------------------------------------------------

fn cmd_critpath(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut top = 5usize;
    let mut json = false;
    let mut perfetto = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top expects a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?
            }
            "--json" => json = true,
            "--perfetto" => {
                perfetto = Some(
                    it.next()
                        .ok_or("--perfetto expects an output path")?
                        .to_string(),
                )
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("critpath expects a trace file\n{USAGE}"))?;
    let trace = load(&path)?;
    let cp = ptdf::critpath::analyze(&trace);

    // The analyzer's contract: buckets tile [0, makespan] bit-exactly. A
    // mismatch means a corrupt trace (or an analyzer bug) — fail loudly.
    if cp.blame.sum() != cp.makespan {
        eprintln!(
            "{path}: blame buckets sum to {} but the makespan is {} — trace is \
             inconsistent",
            cp.blame.sum(),
            cp.makespan
        );
        return Ok(ExitCode::FAILURE);
    }

    if let Some(out_path) = &perfetto {
        let doc = trace.to_chrome_json_with_critpath(&cp);
        std::fs::write(out_path, doc).map_err(|e| format!("{out_path}: {e}"))?;
        eprintln!("wrote critical-path overlay to {out_path}");
    }

    if json {
        println!("{}", critpath_json(&cp).to_json());
    } else {
        print!("{}", render_critpath(&path, &cp, top));
    }
    Ok(ExitCode::SUCCESS)
}

/// Renders the human-readable blame report for one trace's critical path.
fn render_critpath(path: &str, cp: &ptdf::CritPath, top: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if cp.empty {
        let _ = writeln!(out, "{path}: empty trace (no spans); makespan {}", cp.makespan);
        return out;
    }
    let _ = writeln!(
        out,
        "{path}: makespan {} over {} path segment(s)",
        cp.makespan,
        cp.segments.len()
    );
    let total = cp.makespan.as_ns().max(1);
    for (name, v) in cp.blame.named() {
        let _ = writeln!(
            out,
            "  {name:<11} {:>6.2}%  {v}",
            v.as_ns() as f64 * 100.0 / total as f64
        );
    }
    let (dom, dv) = cp.blame.dominant();
    let _ = writeln!(
        out,
        "dominant: {dom} ({:.2}% of makespan)",
        dv.as_ns() as f64 * 100.0 / total as f64
    );

    if !cp.objects.is_empty() {
        let shown = cp.objects.len().min(top);
        let _ = writeln!(out, "blamed objects (top {shown} of {})", cp.objects.len());
        for o in cp.objects.iter().take(shown) {
            let id = o.obj.map(|o| format!("#{o}")).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "  {:<10} {id:<5} {} on path over {} segment(s)",
                o.reason.name(),
                o.wait,
                o.segments
            );
        }
    }
    if !cp.threads.is_empty() {
        let shown = cp.threads.len().min(top);
        let _ = writeln!(out, "on-path threads (top {shown} of {})", cp.threads.len());
        for t in cp.threads.iter().take(shown) {
            let _ = writeln!(
                out,
                "  t{:<5} {} on path ({} compute) over {} segment(s)",
                t.thread, t.on_path, t.compute, t.segments
            );
        }
    }
    out
}

/// Builds the machine-readable form of a critical path.
fn critpath_json(cp: &ptdf::CritPath) -> ptdf::json::Value {
    use ptdf::json::{obj, Value};
    let blame = obj(cp
        .blame
        .named()
        .iter()
        .map(|&(n, v)| (n, Value::UInt(v.as_ns())))
        .collect());
    let segments = Value::Arr(
        cp.segments
            .iter()
            .map(|s| {
                let mut members = vec![
                    (
                        "thread",
                        s.thread.map(|t| Value::UInt(t as u64)).unwrap_or(Value::Null),
                    ),
                    ("startNs", Value::UInt(s.start.as_ns())),
                    ("endNs", Value::UInt(s.end.as_ns())),
                    ("bucket", Value::Str(s.bucket.name().to_string())),
                ];
                if let ptdf::BlameBucket::LockWait { reason, obj: o } = s.bucket {
                    members.push(("reason", Value::Str(reason.name().to_string())));
                    if let Some(o) = o {
                        members.push(("obj", Value::UInt(o as u64)));
                    }
                }
                obj(members)
            })
            .collect(),
    );
    let objects = Value::Arr(
        cp.objects
            .iter()
            .map(|o| {
                obj(vec![
                    ("reason", Value::Str(o.reason.name().to_string())),
                    (
                        "obj",
                        o.obj.map(|o| Value::UInt(o as u64)).unwrap_or(Value::Null),
                    ),
                    ("waitNs", Value::UInt(o.wait.as_ns())),
                    ("segments", Value::UInt(o.segments)),
                ])
            })
            .collect(),
    );
    let threads = Value::Arr(
        cp.threads
            .iter()
            .map(|t| {
                obj(vec![
                    ("thread", Value::UInt(t.thread as u64)),
                    ("onPathNs", Value::UInt(t.on_path.as_ns())),
                    ("computeNs", Value::UInt(t.compute.as_ns())),
                    ("segments", Value::UInt(t.segments)),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("empty", Value::Bool(cp.empty)),
        ("makespanNs", Value::UInt(cp.makespan.as_ns())),
        ("blameNs", blame),
        (
            "dominant",
            Value::Str(cp.blame.dominant().0.to_string()),
        ),
        ("segments", segments),
        ("objects", objects),
        ("threads", threads),
    ])
}

// ---------------------------------------------------------------------------
// validate
// ---------------------------------------------------------------------------

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    let mut path = None;
    let mut s1 = None;
    let mut depth = None;
    let mut factor = 1.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--s1" => s1 = Some(parse_flag_u64(&mut it, "--s1")?),
            "--depth" => depth = Some(parse_flag_u64(&mut it, "--depth")?),
            "--factor" => {
                factor = it
                    .next()
                    .ok_or("--factor expects a value")?
                    .parse()
                    .map_err(|e| format!("--factor: {e}"))?
            }
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("validate expects a trace file\n{USAGE}"))?;
    let trace = load(&path)?;

    match trace.validate() {
        Ok(()) => println!("structure   ok ({} spans, {} events)", trace.len(), trace.events.len()),
        Err(e) => {
            println!("structure   FAIL: {e}");
            return Ok(ExitCode::FAILURE);
        }
    }

    if let Some(s1) = s1 {
        let hwm = trace.footprint_hwm();
        let p = trace.meta.processors as u64;
        let over = hwm.saturating_sub(s1);
        println!("footprint   hwm {hwm} B, S1 {s1} B, overhead {over} B ({} B/proc)", over / p.max(1));
        if let Some(depth) = depth {
            let bound = s1 as f64 + factor * p as f64 * depth as f64;
            let verdict = if (hwm as f64) <= bound { "ok" } else { "FAIL" };
            println!(
                "space bound {verdict}: hwm {hwm} <= S1 + {factor} * p({p}) * D({depth}) = {bound:.0}"
            );
            if (hwm as f64) > bound {
                return Ok(ExitCode::FAILURE);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn parse_flag_u64(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} expects a value"))?
        .parse()
        .map_err(|e| format!("{flag}: {e}"))
}

// ---------------------------------------------------------------------------
// audit
// ---------------------------------------------------------------------------

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    let mut paths = Vec::new();
    let mut s1 = None;
    let mut depth = None;
    let mut factor = 1.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--s1" => s1 = Some(parse_flag_u64(&mut it, "--s1")?),
            "--depth" => depth = Some(parse_flag_u64(&mut it, "--depth")?),
            "--factor" => {
                factor = it
                    .next()
                    .ok_or("--factor expects a value")?
                    .parse()
                    .map_err(|e| format!("--factor: {e}"))?
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    if paths.is_empty() {
        return Err(format!("audit expects at least one trace file\n{USAGE}"));
    }
    let s1 = s1.ok_or_else(|| format!("audit requires --s1\n{USAGE}"))?;
    let depth = depth.ok_or_else(|| format!("audit requires --depth\n{USAGE}"))?;

    let mut over = false;
    for path in &paths {
        let trace = load(path)?;
        let (rendered, ok) = audit(path, &trace, s1, depth, factor);
        print!("{rendered}");
        over |= !ok;
    }
    Ok(if over {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Renders one trace's margin-to-bound report. Returns the text and whether
/// the trace stayed within `S1 + factor·p·depth`.
fn audit(path: &str, trace: &Trace, s1: u64, depth: u64, factor: f64) -> (String, bool) {
    use std::fmt::Write;
    let hwm = trace.footprint_hwm();
    let p = trace.meta.processors as u64;
    let bound = (s1 as f64 + factor * p as f64 * depth as f64).round() as u64;
    let margin = bound as i128 - hwm as i128;
    let ok = hwm <= bound;
    let verdict = if ok { "ok" } else { "OVER" };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{path}: {verdict} [{}/p{p}] hwm {hwm} B, bound {bound} B \
         (S1 {s1} + {factor} * p * D {depth}), margin {margin:+} B",
        trace.meta.scheduler
    );

    // Excursions the runtime itself observed, when the run was armed with
    // Config::with_space_bound (its limit may differ from the CLI's terms).
    let recorded: Vec<&ptdf::trace::Event> = trace
        .events
        .iter()
        .filter(|e| matches!(e.kind, ptdf::trace::EventKind::BoundViolation { .. }))
        .collect();
    for e in &recorded {
        if let ptdf::trace::EventKind::BoundViolation { footprint, bound } = e.kind {
            let _ = writeln!(
                out,
                "  runtime bound crossed at {}: footprint {footprint} B > armed bound {bound} B",
                e.at
            );
        }
    }
    (out, ok)
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    if args.is_empty() {
        return Err(format!("check expects at least one trace file\n{USAGE}"));
    }
    let mut dirty = false;
    for path in args {
        let trace = load(path)?;
        let report = ptdf::check_trace(&trace);
        print!("{}", render_check(path, &report));
        dirty |= !report.is_clean();
    }
    Ok(if dirty {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// Renders one trace's checker verdict.
fn render_check(path: &str, report: &ptdf::CheckReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if report.is_clean() {
        let _ = writeln!(
            out,
            "{path}: clean ({} events, {} threads)",
            report.events, report.threads
        );
    } else {
        let _ = writeln!(
            out,
            "{path}: {} violation(s) in {} events across {} threads",
            report.violations.len(),
            report.events,
            report.threads
        );
        for v in &report.violations {
            let _ = writeln!(out, "  {v}");
        }
        match &report.replay {
            Some(recipe) => {
                let _ = writeln!(out, "  replay: {recipe}");
            }
            None => {
                let _ = writeln!(
                    out,
                    "  replay: trace was not recorded under perturbation \
                     (re-run with Config::with_perturbation)"
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let [a, b] = args else {
        return Err(format!("diff expects two trace files\n{USAGE}"));
    };
    let ta = load(a)?;
    let tb = load(b)?;
    print!("{}", diff(&ta, &tb));
    Ok(ExitCode::SUCCESS)
}

/// Renders the side-by-side comparison of two traces.
fn diff(a: &Trace, b: &Trace) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>12}",
        "metric", "A", "B", "delta"
    );
    let row = |out: &mut String, name: &str, va: u64, vb: u64| {
        let delta = vb as i128 - va as i128;
        let _ = writeln!(out, "{name:<18} {va:>14} {vb:>14} {delta:>+12}");
    };
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14}",
        "scheduler", a.meta.scheduler, b.meta.scheduler
    );
    row(&mut out, "processors", a.meta.processors as u64, b.meta.processors as u64);
    let span_end = |t: &Trace| {
        t.spans
            .iter()
            .map(|s| s.end.as_ns())
            .max()
            .unwrap_or(0)
    };
    row(&mut out, "makespan ns", span_end(a), span_end(b));
    row(&mut out, "spans", a.len() as u64, b.len() as u64);
    row(&mut out, "events", a.events.len() as u64, b.events.len() as u64);
    row(&mut out, "footprint hwm B", a.footprint_hwm(), b.footprint_hwm());
    row(&mut out, "live threads max", a.max_live_threads(), b.max_live_threads());
    row(&mut out, "ready max", track_max(&a.counters.ready), track_max(&b.counters.ready));

    // Union of event kinds, in name order (event_kind_counts is sorted).
    let ca = a.event_kind_counts();
    let cb = b.event_kind_counts();
    let mut kinds: Vec<&str> = ca.iter().chain(cb.iter()).map(|&(k, _)| k).collect();
    kinds.sort_unstable();
    kinds.dedup();
    let count = |c: &[(&str, u64)], k: &str| {
        c.iter().find(|&&(n, _)| n == k).map_or(0, |&(_, v)| v)
    };
    for k in kinds {
        row(&mut out, &format!("  {k}"), count(&ca, k), count(&cb, k));
    }

    let la = a.lifecycle();
    let lb = b.lifecycle();
    row(&mut out, "threads", la.threads, lb.threads);
    row(&mut out, "quanta", la.total_quanta, lb.total_quanta);
    row(
        &mut out,
        "dispatch p50 ns",
        la.dispatch_latency.p50.as_ns(),
        lb.dispatch_latency.p50.as_ns(),
    );
    row(
        &mut out,
        "ready-wait p50 ns",
        la.ready_wait.p50.as_ns(),
        lb.ready_wait.p50.as_ns(),
    );
    out
}

// ---------------------------------------------------------------------------
// tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use ptdf::{run, Config, SchedKind};

    fn sample_trace(kind: SchedKind) -> Trace {
        let (_, report) = run(Config::new(2, kind).with_trace(), || {
            let h = ptdf::spawn(|| ptdf::work(10_000));
            ptdf::rt_alloc(64 * 1024);
            ptdf::work(2_000);
            ptdf::rt_free(64 * 1024);
            h.join();
        });
        report.trace.unwrap()
    }

    #[test]
    fn summarize_mentions_the_key_metrics() {
        let t = sample_trace(SchedKind::Df);
        let s = summarize(&t);
        assert!(s.contains("scheduler df on 2 procs"), "{s}");
        assert!(s.contains("footprint hwm"), "{s}");
        assert!(s.contains("dispatch latency p50"), "{s}");
        assert!(s.contains("spawn"), "{s}");
    }

    #[test]
    fn summarize_footprint_matches_report_exactly() {
        let (_, report) = run(Config::new(2, SchedKind::Df).with_trace(), || {
            ptdf::rt_alloc(128 * 1024);
            ptdf::rt_free(128 * 1024);
        });
        let hwm = report.footprint();
        let t = report.trace.unwrap();
        assert_eq!(t.footprint_hwm(), hwm, "trace hwm must equal Report::footprint");
        let s = summarize(&t);
        assert!(s.contains(&format!("footprint hwm   {hwm} B")), "{s}");
    }

    #[test]
    fn diff_lines_up_both_traces() {
        let a = sample_trace(SchedKind::Fifo);
        let b = sample_trace(SchedKind::Ws);
        let d = diff(&a, &b);
        assert!(d.contains("fifo"), "{d}");
        assert!(d.contains("ws"), "{d}");
        assert!(d.contains("footprint hwm B"), "{d}");
        assert!(d.contains("  spawn"), "{d}");
    }

    #[test]
    fn check_reports_clean_on_a_healthy_trace() {
        let (_, report) = run(
            Config::new(2, SchedKind::Df).with_trace().with_perturbation(7),
            || {
                let m = ptdf::Mutex::new(0u32);
                ptdf::scope(|s| {
                    for _ in 0..3 {
                        let m = m.clone();
                        s.spawn(move || *m.lock() += 1);
                    }
                });
            },
        );
        let t = report.trace.unwrap();
        let c = ptdf::check_trace(&t);
        let rendered = render_check("t.json", &c);
        assert!(c.is_clean(), "{rendered}");
        assert!(rendered.contains("clean"), "{rendered}");
    }

    #[test]
    fn check_prints_violations_and_replay_recipe() {
        let mut t = sample_trace(SchedKind::Fifo);
        t.meta.perturb_seed = Some(99);
        // Forge a lost notify: one waiter observed, zero woken.
        t.events.push(ptdf::trace::Event {
            at: ptdf_smp::VirtTime::from_ns(1),
            thread: Some(0),
            proc: 0,
            kind: ptdf::trace::EventKind::Notify {
                reason: ptdf::trace::BlockReason::Condvar,
                obj: 0,
                waiters: 1,
                woken: 0,
            },
        });
        let c = ptdf::check_trace(&t);
        assert!(!c.is_clean());
        let rendered = render_check("t.json", &c);
        assert!(rendered.contains("violation"), "{rendered}");
        assert!(
            rendered.contains("--sched fifo --perturb-seed 99"),
            "{rendered}"
        );
    }

    #[test]
    fn check_names_the_cycle_on_a_deadlock_trace() {
        // AB-BA inversion under the sentinel: the recorder carries one
        // Deadlock event per cycle member, and `check` must surface the
        // reassembled cycle (this is the path the CI smoke drives through
        // examples/deadlock_trace.rs).
        let (_, report) = ptdf::try_run(
            Config::new(2, SchedKind::Df).with_trace().with_perturbation(3),
            || {
                let a = ptdf::Mutex::new(());
                let b = ptdf::Mutex::new(());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = ptdf::spawn(move || {
                    let _ga = a2.lock();
                    ptdf::work(300_000);
                    let _gb = b2.lock();
                });
                let t2 = ptdf::spawn(move || {
                    let _gb = b.lock();
                    ptdf::work(300_000);
                    let _ga = a.lock();
                });
                let _ = t1.try_join();
                let _ = t2.try_join();
            },
        )
        .expect("a detected deadlock completes the run with a verdict");
        assert_eq!(report.deadlocks().len(), 1);
        let t = report.trace.unwrap();
        let c = ptdf::check_trace(&t);
        assert!(!c.is_clean(), "deadlock trace must check dirty");
        let rendered = render_check("t.json", &c);
        assert!(rendered.contains("deadlock at"), "{rendered}");
        assert!(rendered.contains("waits-for cycle"), "{rendered}");
        assert!(
            rendered.contains("--sched df --perturb-seed 3"),
            "{rendered}"
        );
    }

    #[test]
    fn audit_reports_margin_and_verdict() {
        let t = sample_trace(SchedKind::Df);
        let hwm = t.footprint_hwm();
        // Generous bound: passes with positive margin.
        let (out, ok) = audit("t.json", &t, hwm, 1024, 1.0);
        assert!(ok, "{out}");
        assert!(out.contains(": ok "), "{out}");
        assert!(out.contains("margin +"), "{out}");
        // Impossible bound: fails with negative margin.
        let (out, ok) = audit("t.json", &t, 0, 0, 1.0);
        assert!(!ok, "{out}");
        assert!(out.contains(": OVER "), "{out}");
        assert!(out.contains(&format!("margin -{hwm}")), "{out}");
    }

    #[test]
    fn audit_surfaces_runtime_recorded_crossings() {
        let (_, report) = run(
            Config::new(2, SchedKind::Fifo)
                .with_trace()
                .with_space_bound(1),
            || {
                let h = ptdf::spawn(|| ptdf::work(1_000));
                h.join();
            },
        );
        assert!(report.bound_violations() > 0);
        let t = report.trace.unwrap();
        let (out, _) = audit("t.json", &t, u64::MAX / 2, 0, 1.0);
        assert!(out.contains("runtime bound crossed at"), "{out}");
    }

    #[test]
    fn summarize_lists_blocked_time_by_object() {
        let (_, report) = run(Config::new(2, SchedKind::Df).with_trace(), || {
            let m = ptdf::Mutex::new(0u32);
            ptdf::scope(|s| {
                for _ in 0..4 {
                    let m = m.clone();
                    s.spawn(move || {
                        for _ in 0..8 {
                            let mut g = m.lock();
                            ptdf::work(20_000);
                            *g += 1;
                        }
                    });
                }
            });
        });
        let t = report.trace.unwrap();
        let s = summarize(&t);
        assert!(s.contains("blocked time by object"), "{s}");
        assert!(s.contains("mutex"), "{s}");
    }

    #[test]
    fn summarize_prints_host_phases_when_profiled() {
        let (_, report) = run(
            Config::new(2, SchedKind::Df)
                .with_trace()
                .with_host_profile(true),
            || {
                let h = ptdf::spawn(|| ptdf::work(10_000));
                h.join();
            },
        );
        let t = report.trace.unwrap();
        let s = summarize(&t);
        assert!(s.contains("host phases (profiled"), "{s}");
        assert!(s.contains("dispatch"), "{s}");
        assert!(s.contains("trace_alloc"), "{s}");
        // And the section round-trips through the disk format.
        let back = Trace::from_chrome_json(&t.to_chrome_json()).unwrap();
        assert!(summarize(&back).contains("host phases (profiled"));

        // Unprofiled traces stay quiet.
        let plain = sample_trace(SchedKind::Df);
        assert!(!summarize(&plain).contains("host phases"));
    }

    #[test]
    fn critpath_render_names_the_dominant_bucket() {
        let t = sample_trace(SchedKind::Df);
        let cp = ptdf::critpath::analyze(&t);
        assert_eq!(cp.blame.sum(), cp.makespan);
        let s = render_critpath("t.json", &cp, 5);
        assert!(s.contains("makespan"), "{s}");
        assert!(s.contains("dominant:"), "{s}");
        assert!(s.contains("compute"), "{s}");
        assert!(s.contains("on-path threads"), "{s}");
    }

    #[test]
    fn critpath_json_parses_and_tiles() {
        let t = sample_trace(SchedKind::Ws);
        let cp = ptdf::critpath::analyze(&t);
        let doc = critpath_json(&cp).to_json();
        let v = ptdf::json::Value::parse(&doc).unwrap();
        let makespan = v.get("makespanNs").and_then(|m| m.as_u64()).unwrap();
        let blame = v.get("blameNs").unwrap();
        let total: u64 = cp
            .blame
            .named()
            .iter()
            .map(|&(n, _)| blame.get(n).and_then(|b| b.as_u64()).unwrap())
            .sum();
        assert_eq!(total, makespan, "{doc}");
        assert!(v.get("dominant").and_then(|d| d.as_str()).is_some());
        let segs = v.get("segments").and_then(|s| s.as_arr()).unwrap();
        assert!(!segs.is_empty());
    }

    #[test]
    fn round_trip_through_disk_format() {
        let t = sample_trace(SchedKind::DfDeques);
        let back = Trace::from_chrome_json(&t.to_chrome_json()).unwrap();
        assert_eq!(t, back);
        back.validate().unwrap();
    }
}
