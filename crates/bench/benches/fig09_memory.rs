//! Figure 9: memory high-water vs processors for the two dynamically
//! allocating benchmarks — (a) FMM and (b) the decision-tree builder —
//! under the original (FIFO) and the new space-efficient (DF) scheduler.

use ptdf::{Config, SchedKind};
use ptdf_bench::{drivers, mb, procs_list, Table};

fn main() {
    ptdf_bench::methodology_note();
    for (tag, app) in [
        ("a_fmm", drivers::fmm_driver()),
        ("b_dtree", drivers::dtree_driver()),
    ] {
        eprintln!("[fig09] {} ...", app.name);
        let serial = (app.serial)();
        let mut t = Table::new(
            &format!("fig09{tag}"),
            &format!(
                "Figure 9({}): {} memory high-water (serial space {} MB)",
                &tag[..1],
                app.name,
                mb(serial.s1_bytes())
            ),
            &["p", "orig (MB)", "new (MB)", "orig live thr", "new live thr"],
        );
        for p in procs_list() {
            let orig = (app.fine)(Config::new(p, SchedKind::Fifo));
            let new = (app.fine)(Config::new(p, SchedKind::Df));
            t.row(vec![
                p.to_string(),
                mb(orig.footprint()),
                mb(new.footprint()),
                orig.max_live_threads().to_string(),
                new.max_live_threads().to_string(),
            ]);
        }
        t.finish();
    }
    println!(
        "paper shape: the new scheduler's footprint stays near serial space\n\
         and grows only mildly with p; the original scheduler allocates\n\
         substantially more."
    );
}
