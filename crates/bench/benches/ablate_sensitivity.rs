//! Cost-model sensitivity ablation: the reproduction claims *shapes*, so
//! the shapes must not hinge on the calibration constants. This harness
//! sweeps the two most influential costs — the kernel page first-touch
//! penalty (drives the FIFO memory-system time of Figure 6) and the
//! context-switch cost (drives per-thread overhead) — across an order of
//! magnitude in each direction, and reports the FIFO/LIFO/DF speedups for
//! the matmul benchmark. The claim holds if DF > LIFO > FIFO at every
//! point of the sweep.

use ptdf::{Config, CostModel, SchedKind, VirtTime};
use ptdf_bench::{drivers, Table};

fn main() {
    ptdf_bench::methodology_note();
    let app = drivers::matmul_driver();
    let p = 8;

    let mut t = Table::new(
        "ablate_sensitivity",
        "Cost-model sensitivity: matmul speedups at p = 8 under perturbed constants",
        &[
            "page touch (us)",
            "ctx switch (us)",
            "fifo",
            "lifo",
            "df",
            "ordering holds",
        ],
    );
    let mut all_hold = true;
    for page_us in [5u64, 25, 100] {
        for switch_us in [2u64, 10, 40] {
            let mut cost = CostModel::ultrasparc_167();
            cost.page_first_touch = VirtTime::from_us(page_us);
            cost.ctx_switch = VirtTime::from_us(switch_us);
            // Serial baseline must use the same perturbed model.
            let serial = {
                let prm = drivers::matmul_params();
                let (a, b) = ptdf_apps::matmul::gen_input(&prm);
                ptdf::run_serial(cost.clone(), || ptdf_apps::matmul::multiply(&a, &b, &prm)).1
            };
            let speedup = |kind: SchedKind| {
                let cfg = Config::new(p, kind).with_cost(cost.clone()).with_stack(
                    if kind == SchedKind::Fifo {
                        ptdf::STACK_1MB
                    } else {
                        ptdf::STACK_8KB
                    },
                );
                (app.fine)(cfg).speedup_vs(serial.time)
            };
            let fifo = speedup(SchedKind::Fifo);
            let lifo = speedup(SchedKind::Lifo);
            let df = speedup(SchedKind::Df);
            let holds = df > fifo && lifo > fifo;
            all_hold &= holds;
            t.row(vec![
                page_us.to_string(),
                switch_us.to_string(),
                format!("{fifo:.2}"),
                format!("{lifo:.2}"),
                format!("{df:.2}"),
                if holds { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.finish();
    println!(
        "claim: DF and LIFO beat FIFO at every point of the 9-point sweep\n\
         (page-touch x5 down / x4 up, switch x5 down / x4 up): {}",
        if all_hold { "HOLDS" } else { "VIOLATED" }
    );
}
