//! Criterion microbenchmarks of the runtime substrate itself (host-time,
//! not virtual-time): fiber switching, spawn/join throughput, and engine
//! overhead per scheduling decision under each policy.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ptdf::{Config, SchedKind};
use ptdf_fiber::Coroutine;

fn fiber_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("fiber");
    g.bench_function("create_drop", |b| {
        b.iter(|| {
            let co = Coroutine::<(), (), ()>::new(16 * 1024, |_, ()| ());
            std::hint::black_box(&co);
        })
    });
    g.bench_function("create_run_exit", |b| {
        b.iter(|| {
            let mut co = Coroutine::<(), (), u64>::new(16 * 1024, |_, ()| 42);
            co.resume(()).unwrap_complete()
        })
    });
    g.bench_function("switch_pair", |b| {
        b.iter_batched_ref(
            || {
                Coroutine::<(), u64, ()>::new(16 * 1024, |y, ()| loop {
                    y.suspend(1);
                })
            },
            |co| co.resume(()).unwrap_yield(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn runtime_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(20);
    for kind in [SchedKind::Fifo, SchedKind::Df, SchedKind::Ws] {
        g.bench_function(format!("spawn_join_100_{}", kind.name()), |b| {
            b.iter(|| {
                ptdf::run(Config::new(4, kind), || {
                    let hs: Vec<_> = (0..100).map(|i| ptdf::spawn(move || i)).collect();
                    hs.into_iter().map(|h| h.join()).sum::<u64>()
                })
                .0
            })
        });
    }
    g.bench_function("mutex_ping_pong_200", |b| {
        b.iter(|| {
            ptdf::run(Config::new(2, SchedKind::Df), || {
                let m = ptdf::Mutex::new(0u64);
                ptdf::scope(|s| {
                    for _ in 0..2 {
                        let m = m.clone();
                        s.spawn(move || {
                            for _ in 0..100 {
                                *m.lock() += 1;
                            }
                        });
                    }
                });
                let v = *m.lock();
                v
            })
            .0
        })
    });
    g.finish();
}

criterion_group!(benches, fiber_ops, runtime_ops);
criterion_main!(benches);
