//! Figure 7: matmul under each §4 modification of the Pthreads scheduler:
//! FIFO (original), LIFO, and the space-efficient DF scheduler, each with
//! 1 MB ("Original") and 8 KB ("small stk") default stacks.

use ptdf_bench::{drivers, mb, procs_list, speedup, Table};
use ptdf::{Config, SchedKind, STACK_1MB, STACK_8KB};

fn main() {
    ptdf_bench::methodology_note();
    let app = drivers::matmul_driver();
    let serial = (app.serial)();
    println!(
        "serial: time {} | space {} MB",
        serial.time,
        mb(serial.s1_bytes())
    );
    let mut t = Table::new(
        "fig07_matmul_sched",
        "Figure 7: matmul speedup & memory by scheduler and default stack size",
        &["scheduler", "stack", "p", "speedup", "memory (MB)", "max live threads"],
    );
    let variants = [
        (SchedKind::Fifo, STACK_1MB, "original"),
        (SchedKind::Fifo, STACK_8KB, "orig + small stk"),
        (SchedKind::Lifo, STACK_1MB, "LIFO"),
        (SchedKind::Lifo, STACK_8KB, "LIFO + small stk"),
        (SchedKind::Df, STACK_1MB, "new scheduler"),
        (SchedKind::Df, STACK_8KB, "new + small stk"),
    ];
    for (kind, stack, label) in variants {
        for p in procs_list() {
            let report = (app.fine)(Config::new(p, kind).with_stack(stack));
            t.row(vec![
                label.into(),
                if stack == STACK_1MB { "1MB" } else { "8KB" }.into(),
                p.to_string(),
                speedup(&report, serial.time),
                mb(report.footprint()),
                report.max_live_threads().to_string(),
            ]);
        }
    }
    t.finish();
    println!(
        "paper shape: FIFO worst on both axes and worsening with p; LIFO\n\
         in-between; the new (DF) scheduler has near-flat memory close to\n\
         serial space and the best speedup; small stacks help every policy."
    );
}
