//! Wall-clock scheduler benchmark: micro dispatch storms (indexed vs
//! reference policies, 10k–1M live threads), host runtimes of all seven
//! paper applications under each scheduler, spawn/sentinel storms, and
//! the host engine phase profile. Writes `BENCH_sched.json` at the
//! workspace root. `REPRO_QUICK=1` for the CI smoke configuration.

use ptdf_bench::wallclock::{self, StormPoint};
use ptdf_bench::Table;

fn main() {
    let micro = wallclock::run_micro();
    let mut t = Table::new(
        "wallclock_micro",
        "Dispatch hot paths: host ns per dispatch attempt (indexed vs reference)",
        &["storm", "live threads", "impl", "ops", "ns/dispatch"],
    );
    for StormPoint {
        storm,
        impl_name,
        live_threads,
        ops,
        ns_per_dispatch,
        ..
    } in &micro
    {
        t.row(vec![
            storm.to_string(),
            live_threads.to_string(),
            impl_name.to_string(),
            ops.to_string(),
            format!("{ns_per_dispatch:.1}"),
        ]);
    }
    t.finish();

    for (storm, n, x) in wallclock::speedups(&micro) {
        println!("{storm} @ {n} live threads: indexed is {x:.0}x the reference");
    }

    let procs = if wallclock::quick() { 2 } else { 4 };
    let apps = wallclock::run_apps(procs);
    let mut t = Table::new(
        "wallclock_apps",
        "Application host runtime per scheduler (reduced scale)",
        &["app", "sched", "procs", "host ms", "dispatches", "host ns/dispatch"],
    );
    for a in &apps {
        t.row(vec![
            a.app.to_string(),
            a.sched.to_string(),
            a.procs.to_string(),
            format!("{:.1}", a.host_ms),
            a.dispatches.to_string(),
            format!("{:.1}", a.host_ns_per_dispatch),
        ]);
    }
    t.finish();

    let spawn = wallclock::run_spawn_storms();
    let mut t = Table::new(
        "wallclock_spawn",
        "Engine spawn storm: host ns per fork/join (stack pool on vs off)",
        &["pool", "threads", "ns/spawn", "pool hit rate"],
    );
    for p in &spawn {
        t.row(vec![
            p.pool.to_string(),
            p.threads.to_string(),
            format!("{:.1}", p.ns_per_spawn),
            format!("{:.4}", p.pool_hit_rate),
        ]);
    }
    t.finish();

    let sentinel = wallclock::run_sentinel_storm();
    let mut t = Table::new(
        "wallclock_sentinel",
        "Sentinel-armed join storm: host ns per blocking join (waits-for bookkeeping on every one)",
        &["joins", "ns/join"],
    );
    t.row(vec![
        sentinel.joins.to_string(),
        format!("{:.1}", sentinel.ns_per_join),
    ]);
    t.finish();

    let host_phase = wallclock::run_host_phase(procs);
    let mut t = Table::new(
        "wallclock_host_phase",
        "Host engine phase profile: where the engine's own host ns go (traced runs)",
        &["workload", "sched", "phase", "calls", "ns", "share %"],
    );
    for p in &host_phase {
        let total = p.phases.total_ns().max(1);
        for (name, ps) in p.phases.phases() {
            t.row(vec![
                p.workload.to_string(),
                p.sched.to_string(),
                name.to_string(),
                ps.count.to_string(),
                ps.ns.to_string(),
                format!("{:.1}", ps.ns as f64 / total as f64 * 100.0),
            ]);
        }
    }
    t.finish();

    let path = wallclock::json_path();
    std::fs::write(
        &path,
        wallclock::to_json(
            &micro,
            &apps,
            &spawn,
            std::slice::from_ref(&sentinel),
            &host_phase,
        ),
    )
    .expect("write BENCH_sched.json");
    println!("[json written to {}]", path.display());
}
