//! Figure 3: thread operation overheads.
//!
//! Two tables:
//!
//! 1. The **modelled** Solaris 2.5 costs (what the virtual machine charges),
//!    side by side with the paper's measured values — these match by
//!    construction (they are the calibration).
//! 2. The **real host** cost of the reproduction's own fiber/runtime
//!    operations, measured with a simple median-of-batches timer — showing
//!    that the substrate is genuinely lightweight (sub-microsecond context
//!    switches), as a user-level threads library should be.

use std::time::Instant;

use ptdf_bench::Table;
use ptdf_fiber::{Coroutine, Step};

/// Median of `reps` timings of `batch` iterations of `f`, in ns/op.
fn time_ns(reps: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[reps / 2]
}

fn main() {
    ptdf_bench::methodology_note();

    // Table 1: the model calibration.
    let cost = ptdf::CostModel::ultrasparc_167();
    let mut t = Table::new(
        "fig03_model",
        "Figure 3 (model): charged costs vs the paper's Solaris 2.5 measurements",
        &["operation", "model (us)", "paper (us)"],
    );
    let us = |v: ptdf::VirtTime| format!("{:.1}", v.as_ns() as f64 / 1e3);
    t.row(vec!["create (unbound, preallocated stack)".into(), us(cost.thread_create), "20.5".into()]);
    t.row(vec!["join (exited thread)".into(), us(cost.join_exited), "~5".into()]);
    t.row(vec!["context switch".into(), us(cost.ctx_switch), "~10".into()]);
    t.row(vec![
        "semaphore sync (2 threads, 1 switch)".into(),
        format!(
            "{:.1}",
            (2 * cost.sync_op.as_ns() + cost.ctx_switch.as_ns()) as f64 / 1e3
        ),
        "19".into(),
    ]);
    t.row(vec![
        "stack reservation 8KB (fresh)".into(),
        us(cost.stack_fresh(8 * 1024)),
        "200".into(),
    ]);
    t.row(vec![
        "stack reservation 1MB (fresh)".into(),
        us(cost.stack_fresh(1024 * 1024)),
        "260".into(),
    ]);
    t.finish();

    // Table 2: real host costs of the substrate.
    let mut t = Table::new(
        "fig03_host",
        "Figure 3 (host): measured cost of this runtime's own operations",
        &["operation", "ns/op"],
    );

    let create_destroy = time_ns(9, 2_000, || {
        let co = Coroutine::<(), (), ()>::new(16 * 1024, |_, ()| ());
        drop(co);
    });
    t.row(vec!["fiber create + drop (16KB stack)".into(), format!("{create_destroy:.0}")]);

    let create_run = time_ns(9, 2_000, || {
        let mut co = Coroutine::<(), (), ()>::new(16 * 1024, |_, ()| ());
        assert_eq!(co.resume(()), Step::Complete(()));
    });
    t.row(vec!["fiber create + run + exit".into(), format!("{create_run:.0}")]);

    // Context switch pair: resume into fiber + suspend back.
    let mut co = Coroutine::<(), (), ()>::new(16 * 1024, |y, ()| loop {
        y.suspend(());
    });
    let switch_pair = time_ns(9, 20_000, || {
        co.resume(()).unwrap_yield();
    });
    t.row(vec![
        "context switch pair (resume + suspend)".into(),
        format!("{switch_pair:.0}"),
    ]);
    drop(co);

    let spawn_join = time_ns(5, 200, || {
        ptdf::run(ptdf::Config::new(1, ptdf::SchedKind::Df), || {
            ptdf::spawn(|| ()).join();
        });
    });
    t.row(vec![
        "full runtime boot + spawn + join (host)".into(),
        format!("{spawn_join:.0}"),
    ]);
    t.finish();

    println!(
        "paper context: Solaris user-level thread creation cost 20.5 us on a\n\
         167 MHz UltraSPARC (~3400 cycles); the reproduction's fiber switch is\n\
         tens of ns on modern hardware, i.e. the same 'user-level ops are\n\
         10-100x cheaper than kernel threads' regime."
    );
}
