//! Figure 10: FFTW-style DFT running times on p processors for three
//! versions: (1) p threads, (2) 256 threads + original scheduler,
//! (3) 256 threads + modified scheduler.
//!
//! The paper's point: with p threads the regular power-of-two problem
//! partitions perfectly when p is a power of two, but at other processor
//! counts the 256-thread version wins because the scheduler balances the
//! load — performance becomes insensitive to the processor count.

use ptdf::{Config, SchedKind};
use ptdf_apps::fft;
use ptdf_bench::{full_scale, procs_list, Table};

fn main() {
    ptdf_bench::methodology_note();
    let mk = |threads| {
        if full_scale() {
            fft::Params::paper(threads)
        } else {
            fft::Params::small(threads)
        }
    };
    let serial = {
        let p = mk(1);
        let x = fft::gen_input(&p);
        ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || fft::fft(&x, &p)).1
    };
    println!("serial time: {}", serial.time);
    let mut t = Table::new(
        "fig10_fft",
        "Figure 10: DFT running time (virtual ms) by thread count and scheduler",
        &["p", "p threads (ms)", "256 thr orig (ms)", "256 thr new (ms)"],
    );
    let ms = |r: &ptdf::Report| format!("{:.2}", r.makespan().as_millis_f64());
    for procs in procs_list() {
        let run = |threads: usize, kind: SchedKind| {
            let p = mk(threads);
            let x = fft::gen_input(&p);
            ptdf::run(Config::new(procs, kind), move || fft::fft(&x, &p)).1
        };
        let pthreads = run(procs, SchedKind::Fifo);
        let orig256 = run(256, SchedKind::Fifo);
        let new256 = run(256, SchedKind::Df);
        t.row(vec![
            procs.to_string(),
            ms(&pthreads),
            ms(&orig256),
            ms(&new256),
        ]);
    }
    t.finish();
    println!(
        "paper shape: the p-thread version is marginally fastest at\n\
         p = 2, 4, 8; at every other p the 256-thread versions win because\n\
         the scheduler load-balances the uneven leaf transforms."
    );
}
