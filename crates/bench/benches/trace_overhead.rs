//! Tracing-overhead guard: the flight recorder must be near-zero-cost when
//! disabled and cheap when enabled.
//!
//! Two measurements:
//!
//! 1. **Engine fork/join storm** — a binary fork tree with leaf joins run
//!    through the full engine, host-timed with the recorder off and on.
//!    Prints the enabled-tracing overhead percentage.
//! 2. **Guard mode** (`TRACE_GUARD=1`) — re-runs the wallclock micro
//!    dispatch storms with tracing-free policies and compares the indexed
//!    implementations against the committed `BENCH_sched.json` baseline:
//!    each `ns_per_dispatch` must stay within `TRACE_GUARD_TOL` (default
//!    0.03 = 3%) of the baseline, exiting nonzero on a regression. Points
//!    over tolerance are individually re-measured (best-of) before being
//!    flagged, so shared-host scheduling noise doesn't trip the gate.
//!    Guard mode also re-runs the engine spawn storm and holds the pooled
//!    fiber-stack path to the committed baseline, to the unpooled path,
//!    and to a ≥90% pool hit rate. Finally it re-runs the sentinel-armed
//!    join storm and holds the deadlock sentinel's waits-for bookkeeping
//!    to the committed `sentinel_storm` baseline within
//!    `TRACE_GUARD_SENTINEL_TOL` (default 0.05 = 5%); the sentinel's cost
//!    on the *policy-level* indexed dispatch paths is zero by design
//!    (bookkeeping lives in the engine's block/unblock paths), which the
//!    micro-storm comparison above witnesses. It also re-runs the spawn
//!    storm with the host phase profiler explicitly disarmed
//!    (`with_host_profile(false)`) and holds it to the committed pooled
//!    baseline — the profiler must be zero-cost when off.
//!
//! Run with: `cargo bench -p ptdf-bench --bench trace_overhead`
//! (`REPRO_QUICK=1` for the CI smoke configuration.)

use std::time::Instant;

use ptdf::json::Value;
use ptdf::{Config, SchedKind};
use ptdf_bench::wallclock::{self, StormPoint};

fn fork_tree(depth: u32) {
    if depth == 0 {
        ptdf::work(500);
        return;
    }
    let left = ptdf::spawn(move || fork_tree(depth - 1));
    fork_tree(depth - 1);
    left.join();
}

/// Host-times one engine run of the fork/join storm; returns (ms, spans).
fn storm(kind: SchedKind, depth: u32, trace: bool) -> (f64, usize) {
    let cfg = Config::new(4, kind);
    let cfg = if trace { cfg.with_trace() } else { cfg };
    let start = Instant::now();
    let (_, report) = ptdf::run(cfg, move || fork_tree(depth));
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, report.trace.map_or(0, |t| t.len()))
}

fn main() {
    let quick = wallclock::quick();
    let depth = if quick { 10 } else { 13 };
    let reps = if quick { 3 } else { 5 };

    println!("engine fork/join storm (depth {depth}, {reps} reps, best-of):");
    for kind in [SchedKind::Df, SchedKind::Ws] {
        // Warm-up, then best-of-N to shed scheduler noise.
        storm(kind, depth, false);
        let off = (0..reps)
            .map(|_| storm(kind, depth, false).0)
            .fold(f64::INFINITY, f64::min);
        let (mut on, mut spans) = (f64::INFINITY, 0);
        for _ in 0..reps {
            let (ms, s) = storm(kind, depth, true);
            if ms < on {
                (on, spans) = (ms, s);
            }
        }
        println!(
            "  {:>9}: off {off:.1} ms, on {on:.1} ms ({spans} spans) — overhead {:+.1}%",
            kind.name(),
            (on / off - 1.0) * 100.0
        );
    }

    if std::env::var("TRACE_GUARD").is_ok_and(|v| v == "1") {
        std::process::exit(guard());
    }
}

/// Compares fresh indexed micro-storm numbers against the committed
/// baseline; returns the process exit code.
fn guard() -> i32 {
    let tol: f64 = std::env::var("TRACE_GUARD_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);
    let path = wallclock::json_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("guard: cannot read {}: {e}", path.display());
            return 1;
        }
    };
    let doc = match Value::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("guard: {}: {e}", path.display());
            return 1;
        }
    };
    let Some(baseline) = doc.get("micro_dispatch").and_then(|v| v.as_arr()) else {
        eprintln!("guard: {} has no micro_dispatch table", path.display());
        return 1;
    };

    // run_micro_indexed is already best-of-N per point; single samples on a
    // shared host swing by tens of percent, the minimum is stable. Points
    // that still exceed tolerance get individually re-measured a few times
    // (keeping the minimum) before being called regressions: noise never
    // survives extra minima, a real slowdown does.
    const GUARD_RETRIES: usize = 4;
    let fresh = wallclock::run_micro_indexed();
    println!("guard: indexed dispatch vs {} (tol {:.0}%):", path.display(), tol * 100.0);
    let mut failed = false;
    let mut compared = 0;
    for p in fresh.iter().filter(|p| p.impl_name == "indexed") {
        let Some(base) = lookup(baseline, p) else {
            continue; // baseline from a different size sweep (quick vs full)
        };
        compared += 1;
        let mut best = p.ns_per_dispatch;
        let mut retries = 0;
        while best > base * (1.0 + tol) && retries < GUARD_RETRIES {
            if let Some(r) = wallclock::remeasure_indexed(p.storm, p.live_threads) {
                best = best.min(r.ns_per_dispatch);
            }
            retries += 1;
        }
        let ratio = best / base;
        let verdict = if ratio <= 1.0 + tol { "ok" } else { "REGRESSION" };
        println!(
            "  {:<22} @{:>9}: {:.1} ns vs {:.1} ns baseline ({:+.1}%, {retries} retries) {verdict}",
            p.storm,
            p.live_threads,
            best,
            base,
            (ratio - 1.0) * 100.0
        );
        failed |= ratio > 1.0 + tol;
    }
    if compared == 0 {
        eprintln!("guard: no comparable baseline entries (size sweeps differ)");
        return 1;
    }

    failed |= spawn_guard(&doc, tol);
    failed |= sentinel_guard(&doc);
    failed |= host_profile_off_guard(&doc, tol);
    i32::from(failed)
}

/// Holds the line on the host phase profiler's *disarmed* cost: a spawn
/// storm run with `with_host_profile(false)` — the path every unprofiled
/// run takes through the profiler's hot-path hooks — must stay within
/// tolerance of the committed pooled baseline. When off, the hooks are one
/// `Option` discriminant test each; this guard is what keeps them that way.
fn host_profile_off_guard(doc: &Value, tol: f64) -> bool {
    const GUARD_RETRIES: usize = 4;
    let fresh = wallclock::spawn_storm_profile_off();
    let baseline = doc.get("spawn_storm").and_then(Value::as_arr).and_then(|arr| {
        arr.iter()
            .find(|b| {
                b.get("pool").and_then(Value::as_str) == Some("pooled")
                    && b.get("threads").and_then(Value::as_u64) == Some(fresh.threads)
            })
            .and_then(|b| b.get("ns_per_spawn").and_then(Value::as_f64))
    });
    let Some(base) = baseline else {
        println!(
            "  host_profile(off): no committed pooled baseline for {} threads",
            fresh.threads
        );
        return false;
    };
    let mut best = fresh.ns_per_spawn;
    let mut retries = 0;
    while best > base * (1.0 + tol) && retries < GUARD_RETRIES {
        best = best.min(wallclock::spawn_storm_profile_off().ns_per_spawn);
        retries += 1;
    }
    let ratio = best / base;
    let verdict = if ratio <= 1.0 + tol { "ok" } else { "REGRESSION" };
    println!(
        "  host_profile(off) spawn storm @{:>7}: {best:.1} ns vs {base:.1} ns baseline \
         ({:+.1}%, {retries} retries) {verdict}",
        fresh.threads,
        (ratio - 1.0) * 100.0
    );
    ratio > 1.0 + tol
}

/// Holds the line on the deadlock sentinel's waits-for bookkeeping: fresh
/// ns per blocking join must stay within `TRACE_GUARD_SENTINEL_TOL`
/// (default 5%) of the committed `sentinel_storm` baseline.
fn sentinel_guard(doc: &Value) -> bool {
    const GUARD_RETRIES: usize = 4;
    let tol: f64 = std::env::var("TRACE_GUARD_SENTINEL_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let fresh = wallclock::run_sentinel_storm();
    let baseline = doc.get("sentinel_storm").and_then(Value::as_arr).and_then(|arr| {
        arr.iter()
            .find(|b| b.get("joins").and_then(Value::as_u64) == Some(fresh.joins))
            .and_then(|b| b.get("ns_per_join").and_then(Value::as_f64))
    });
    let Some(base) = baseline else {
        println!("  sentinel_storm: no committed baseline for {} joins", fresh.joins);
        return false;
    };
    let mut best = fresh.ns_per_join;
    let mut retries = 0;
    while best > base * (1.0 + tol) && retries < GUARD_RETRIES {
        best = best.min(wallclock::remeasure_sentinel().ns_per_join);
        retries += 1;
    }
    let ratio = best / base;
    let verdict = if ratio <= 1.0 + tol { "ok" } else { "REGRESSION" };
    println!(
        "  sentinel_storm @{:>7} joins: {best:.1} ns vs {base:.1} ns baseline \
         ({:+.1}%, tol {:.0}%, {retries} retries) {verdict}",
        fresh.joins,
        (ratio - 1.0) * 100.0,
        tol * 100.0
    );
    ratio > 1.0 + tol
}

/// Holds the line on the pooled spawn path: fresh pooled ns/spawn must stay
/// within tolerance of the committed baseline (when one is present for this
/// storm size) *and* of the fresh unpooled measurement, and the pool must
/// actually serve the storm (≥90% hit rate on the real-stack backend).
fn spawn_guard(doc: &Value, tol: f64) -> bool {
    const GUARD_RETRIES: usize = 4;
    let points = wallclock::run_spawn_storms();
    let Some(pooled) = points.iter().find(|p| p.pool == "pooled") else {
        return true;
    };
    let Some(unpooled) = points.iter().find(|p| p.pool == "unpooled") else {
        return true;
    };

    let mut targets = vec![("unpooled (fresh)", unpooled.ns_per_spawn)];
    let baseline = doc.get("spawn_storm").and_then(Value::as_arr).and_then(|arr| {
        arr.iter()
            .find(|b| {
                b.get("pool").and_then(Value::as_str) == Some("pooled")
                    && b.get("threads").and_then(Value::as_u64) == Some(pooled.threads)
            })
            .and_then(|b| b.get("ns_per_spawn").and_then(Value::as_f64))
    });
    match baseline {
        Some(base) => targets.push(("baseline", base)),
        None => println!("  spawn_storm: no committed baseline for {} threads", pooled.threads),
    }

    let mut best = pooled.ns_per_spawn;
    let limit = targets
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min)
        * (1.0 + tol);
    let mut retries = 0;
    while best > limit && retries < GUARD_RETRIES {
        best = best.min(wallclock::remeasure_spawn_pooled().ns_per_spawn);
        retries += 1;
    }

    let mut failed = false;
    for (name, target) in targets {
        let ratio = best / target;
        let verdict = if ratio <= 1.0 + tol { "ok" } else { "REGRESSION" };
        println!(
            "  spawn_storm pooled @{:>7}: {best:.1} ns vs {target:.1} ns {name} ({:+.1}%, {retries} retries) {verdict}",
            pooled.threads,
            (ratio - 1.0) * 100.0
        );
        failed |= ratio > 1.0 + tol;
    }

    if ptdf_fiber::HAS_REAL_STACKS && pooled.pool_hit_rate < 0.9 {
        println!(
            "  spawn_storm pooled hit rate {:.4} < 0.9 REGRESSION",
            pooled.pool_hit_rate
        );
        failed = true;
    }
    failed
}

/// Baseline `ns_per_dispatch` for the same (storm, impl, size) point.
fn lookup(baseline: &[Value], p: &StormPoint) -> Option<f64> {
    baseline
        .iter()
        .find(|b| {
            b.get("storm").and_then(Value::as_str) == Some(p.storm)
                && b.get("impl").and_then(Value::as_str) == Some(p.impl_name)
                && b.get("live_threads").and_then(Value::as_u64) == Some(p.live_threads)
        })
        .and_then(|b| b.get("ns_per_dispatch").and_then(Value::as_f64))
}
