//! Ablation: the space-efficient DF scheduler vs Cilk-style work stealing
//! (§2.1).
//!
//! Work stealing bounds space by `p · S1` (each processor holds a
//! depth-first path); the DF scheduler bounds it by `S1 + O(p·D)`. For
//! programs whose serial space is dominated by big temporaries (matmul),
//! the difference shows as footprint growing ~linearly in `p` under
//! stealing but staying near-flat under DF.

use ptdf::{Config, SchedKind};
use ptdf_bench::{drivers, mb, Table};

fn main() {
    ptdf_bench::methodology_note();
    for app in [drivers::matmul_driver(), drivers::fmm_driver()] {
        eprintln!("[ablate_stealing] {} ...", app.name);
        let serial = (app.serial)();
        let mut t = Table::new(
            &format!(
                "ablate_stealing_{}",
                app.name.to_lowercase().replace([' ', '.'], "")
            ),
            &format!(
                "DF vs work stealing: {} (serial space {} MB)",
                app.name,
                mb(serial.s1_bytes())
            ),
            &["p", "df speedup", "ws speedup", "df mem (MB)", "ws mem (MB)"],
        );
        for p in [1usize, 2, 4, 8, 16] {
            let df = (app.fine)(Config::new(p, SchedKind::Df));
            let ws = (app.fine)(Config::new(p, SchedKind::Ws));
            t.row(vec![
                p.to_string(),
                format!("{:.2}", df.speedup_vs(serial.time)),
                format!("{:.2}", ws.speedup_vs(serial.time)),
                mb(df.footprint()),
                mb(ws.footprint()),
            ]);
        }
        t.finish();
    }
    println!(
        "expected: comparable speedups; WS memory grows roughly linearly\n\
         with p (≤ p·S1), DF memory stays near S1 + O(p·D)."
    );
}
