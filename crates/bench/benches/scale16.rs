//! §5.2 scalability: the benchmarks on up to 16 processors, and the onset
//! of the global scheduler lock as the serialization point the paper's §6
//! predicts ("we do not expect such a serialized scheduler to scale well
//! beyond 16 processors").

use ptdf::{Config, SchedKind};
use ptdf_bench::{drivers, speedup, Table};

fn main() {
    ptdf_bench::methodology_note();
    for app in [
        drivers::matmul_driver(),
        drivers::barnes_hut_driver(),
        drivers::spmv_driver(),
    ] {
        eprintln!("[scale16] {} ...", app.name);
        let serial = (app.serial)();
        let mut t = Table::new(
            &format!(
                "scale16_{}",
                app.name.to_lowercase().replace([' ', '.'], "")
            ),
            &format!(
                "Scalability to 16 processors: {} (serialized DF vs parallelized DFDeques)",
                app.name
            ),
            &[
                "p",
                "df speedup",
                "df lock wait (ms)",
                "df-deques speedup",
                "deques lock wait (ms)",
            ],
        );
        for p in [1usize, 2, 4, 8, 12, 16] {
            let r = (app.fine)(Config::new(p, SchedKind::Df));
            let d = (app.fine)(Config::new(p, SchedKind::DfDeques));
            t.row(vec![
                p.to_string(),
                speedup(&r, serial.time),
                format!("{:.2}", r.stats.sched_lock_wait.as_millis_f64()),
                speedup(&d, serial.time),
                format!("{:.2}", d.stats.sched_lock_wait.as_millis_f64()),
            ]);
        }
        t.finish();
    }
    println!(
        "expected: near-linear speedup through 8-16 processors with the\n\
         scheduler-lock wait share growing — the serialization §6 warns of."
    );
}
