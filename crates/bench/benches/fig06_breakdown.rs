//! Figure 6: execution-time breakdown of the native-scheduler matmul.
//!
//! The paper's profile shows processors spending a large share of time in
//! the kernel on memory-allocation system calls. The model's equivalent
//! buckets: `memsys` (malloc/free/page-commit/stack reservations through
//! the kernel VM lock), `threadop`, `sched` (queue lock wait + critical
//! sections), `cache stalls`, and `idle`.

use ptdf_bench::{drivers, Table};

fn main() {
    ptdf_bench::methodology_note();
    let app = drivers::matmul_driver();
    let mut t = Table::new(
        "fig06_breakdown",
        "Figure 6: matmul time breakdown (% of total processor time), FIFO + 1MB stacks vs DF + 8KB",
        &["config", "p", "compute%", "memsys%", "threadop%", "sched%", "cache%", "idle%"],
    );
    for (label, cfg_of) in [
        (
            "fifo+1MB",
            Box::new(ptdf::Config::solaris_native) as Box<dyn Fn(usize) -> ptdf::Config>,
        ),
        (
            "df+8KB",
            Box::new(|p| ptdf::Config::new(p, ptdf::SchedKind::Df)),
        ),
    ] {
        for p in [1usize, 4, 8] {
            let report = (app.fine)(cfg_of(p));
            let b = report.stats.total_breakdown();
            let total = b.total().as_ns().max(1) as f64;
            let pct = |v: ptdf::VirtTime| format!("{:.1}", v.as_ns() as f64 / total * 100.0);
            t.row(vec![
                label.into(),
                p.to_string(),
                pct(b.compute),
                pct(b.memsys),
                pct(b.threadop),
                pct(b.sched_wait + b.sched_cs),
                pct(b.cache_miss),
                pct(b.idle),
            ]);
        }
    }
    t.finish();
    println!(
        "paper shape: under the native scheduler a large share of processor\n\
         time goes to memory-allocation system calls, growing with p; the\n\
         space-efficient scheduler pushes it back into compute."
    );
}
