//! Ablation: the DF scheduler's memory quota `K` (§4 item 2).
//!
//! `K` is the space/time knob of the space-efficient scheduler: a small
//! quota preempts allocating threads often and inserts many dummy threads
//! (more scheduling overhead, tighter space); a large quota approaches the
//! plain child-first scheduler. The paper inherits the `S1 + O(p·D)` bound
//! whose constant scales with `K`.

use ptdf::{Config, SchedKind};
use ptdf_bench::{drivers, mb, Table};

fn main() {
    ptdf_bench::methodology_note();
    let p = 8;
    for app in [drivers::matmul_driver(), drivers::dtree_driver()] {
        eprintln!("[ablate_quota] {} ...", app.name);
        let serial = (app.serial)();
        let mut t = Table::new(
            &format!(
                "ablate_quota_{}",
                app.name.to_lowercase().replace([' ', '.'], "")
            ),
            &format!(
                "Quota ablation: {} on {p} procs (serial space {} MB)",
                app.name,
                mb(serial.s1_bytes())
            ),
            &["K (KB)", "speedup", "memory (MB)", "dummies", "live thr"],
        );
        for k_kb in [4u64, 16, 64, 256, 1024, 8192] {
            let cfg = Config::new(p, SchedKind::Df).with_quota(k_kb * 1024);
            let r = (app.fine)(cfg);
            t.row(vec![
                k_kb.to_string(),
                format!("{:.2}", r.speedup_vs(serial.time)),
                mb(r.footprint()),
                r.stats.mem.dummy_threads.to_string(),
                r.max_live_threads().to_string(),
            ]);
        }
        t.finish();
    }
    println!(
        "expected: small K → more dummies/preemptions (slower) but lower\n\
         footprint; large K → fewer scheduler interventions, footprint\n\
         approaching the no-quota child-first behaviour."
    );
}
