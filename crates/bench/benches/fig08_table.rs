//! Figure 8: the headline table — 8-processor speedups for all seven
//! benchmarks in three versions: coarse-grained (where the paper had one),
//! fine-grained + original (FIFO) scheduler, and fine-grained + the new
//! space-efficient (DF) scheduler with 8 KB default stacks; plus the peak
//! number of simultaneously active threads under the new scheduler.

use ptdf::{Config, SchedKind};
use ptdf_bench::{drivers, speedup, Table};

fn main() {
    ptdf_bench::methodology_note();
    let p = std::env::var("REPRO_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    let mut t = Table::new(
        "fig08_table",
        &format!("Figure 8: speedups on {p} processors over the serial version"),
        &[
            "benchmark",
            "problem",
            "coarse",
            "fine+orig",
            "fine+new",
            "threads(new)",
            "created(new)",
        ],
    );
    for app in drivers::all_drivers() {
        eprintln!("[fig08] {} ...", app.name);
        let serial = (app.serial)();
        let coarse = app
            .coarse
            .as_ref()
            .map(|f| f(Config::new(p, SchedKind::Fifo)));
        let orig = (app.fine)(Config::new(p, SchedKind::Fifo));
        let new = (app.fine)(Config::new(p, SchedKind::Df));
        t.row(vec![
            app.name.into(),
            app.problem.clone(),
            coarse
                .map(|r| speedup(&r, serial.time))
                .unwrap_or_else(|| "--".into()),
            speedup(&orig, serial.time),
            speedup(&new, serial.time),
            new.max_live_threads().to_string(),
            new.total_threads.to_string(),
        ]);
    }
    t.finish();
    println!(
        "paper (p=8, full sizes): MatMult 3.65/6.56; Barnes 7.53/5.76/7.80;\n\
         FMM 4.90/7.45; DTree 5.23/5.25; FFTW 6.27/5.84/5.94;\n\
         Sparse 6.14/4.41/5.96; VolRend 6.79/5.73/6.72.\n\
         shape: fine+new ≈ coarse; fine+orig notably worse for the\n\
         allocation-heavy benchmarks; few live threads under the new scheduler."
    );
}
