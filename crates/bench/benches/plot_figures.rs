//! Renders the experiment CSVs (written by the other bench targets) into
//! SVG figures mirroring the paper's plots. Run the figure harnesses first
//! (`./repro.sh`), then this target; SVGs land next to the CSVs.

use ptdf_bench::plot::{line_chart, parse_csv, Series};
use ptdf_bench::experiments_dir;

fn load(name: &str) -> Option<(Vec<String>, Vec<Vec<String>>)> {
    let path = experiments_dir().join(format!("{name}.csv"));
    let body = std::fs::read_to_string(&path).ok()?;
    Some(parse_csv(&body))
}

fn col(headers: &[String], name: &str) -> Option<usize> {
    headers.iter().position(|h| h == name)
}

fn f(v: &str) -> Option<f64> {
    v.trim().parse().ok()
}

/// Builds one series per distinct value of `group_col`, x from `x_col`,
/// y from `y_col`.
fn grouped_series(
    headers: &[String],
    rows: &[Vec<String>],
    group_col: &str,
    x_col: &str,
    y_col: &str,
) -> Vec<Series> {
    let (Some(g), Some(x), Some(y)) = (
        col(headers, group_col),
        col(headers, x_col),
        col(headers, y_col),
    ) else {
        return Vec::new();
    };
    let mut series: Vec<Series> = Vec::new();
    for row in rows {
        let (Some(xv), Some(yv)) = (f(&row[x]), f(&row[y])) else {
            continue;
        };
        let label = row[g].clone();
        match series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((xv, yv)),
            None => series.push(Series {
                label,
                points: vec![(xv, yv)],
            }),
        }
    }
    series
}

/// Builds one series per named y column over a shared x column.
fn column_series(
    headers: &[String],
    rows: &[Vec<String>],
    x_col: &str,
    y_cols: &[&str],
) -> Vec<Series> {
    let Some(x) = col(headers, x_col) else {
        return Vec::new();
    };
    y_cols
        .iter()
        .filter_map(|name| {
            let y = col(headers, name)?;
            let points: Vec<(f64, f64)> = rows
                .iter()
                .filter_map(|r| Some((f(&r[x])?, f(&r[y])?)))
                .collect();
            (!points.is_empty()).then(|| Series {
                label: (*name).to_string(),
                points,
            })
        })
        .collect()
}

fn save(name: &str, svg: &str) {
    let path = experiments_dir().join(format!("{name}.svg"));
    std::fs::write(&path, svg).expect("write svg");
    println!("wrote {}", path.display());
}

fn main() {
    let mut plotted = 0;

    if let Some((h, rows)) = load("fig05_matmul_native") {
        let rows: Vec<_> = rows
            .into_iter()
            .filter(|r| f(&r[0]).is_some()) // drop the "serial" row
            .collect();
        let s = column_series(&h, &rows, "p", &["speedup"]);
        save(
            "fig05a_speedup",
            &line_chart("Fig 5(a): matmul, native FIFO scheduler", "processors", "speedup", &s),
        );
        let m = column_series(&h, &rows, "p", &["memory (MB)"]);
        save(
            "fig05b_memory",
            &line_chart("Fig 5(b): matmul memory, native scheduler", "processors", "MB", &m),
        );
        plotted += 2;
    }

    if let Some((h, rows)) = load("fig07_matmul_sched") {
        let s = grouped_series(&h, &rows, "scheduler", "p", "speedup");
        save(
            "fig07a_speedup",
            &line_chart("Fig 7(a): matmul speedup by scheduler", "processors", "speedup", &s),
        );
        let m = grouped_series(&h, &rows, "scheduler", "p", "memory (MB)");
        save(
            "fig07b_memory",
            &line_chart("Fig 7(b): matmul memory by scheduler", "processors", "MB", &m),
        );
        plotted += 2;
    }

    for (csv, out, title) in [
        ("fig09a_fmm", "fig09a_fmm", "Fig 9(a): FMM memory"),
        ("fig09b_dtree", "fig09b_dtree", "Fig 9(b): decision-tree memory"),
    ] {
        if let Some((h, rows)) = load(csv) {
            let s = column_series(&h, &rows, "p", &["orig (MB)", "new (MB)"]);
            save(out, &line_chart(title, "processors", "MB", &s));
            plotted += 1;
        }
    }

    if let Some((h, rows)) = load("fig10_fft") {
        let s = column_series(
            &h,
            &rows,
            "p",
            &["p threads (ms)", "256 thr orig (ms)", "256 thr new (ms)"],
        );
        save(
            "fig10_fft",
            &line_chart("Fig 10: DFT running time", "processors", "virtual ms", &s),
        );
        plotted += 1;
    }

    if let Some((h, rows)) = load("fig11_granularity") {
        let s = column_series(
            &h,
            &rows,
            "tiles/thread",
            &["orig sched", "new sched", "df+locality (§5.3)"],
        );
        save(
            "fig11_granularity",
            &line_chart("Fig 11: volrend speedup vs granularity", "tiles per thread", "speedup", &s),
        );
        plotted += 1;
    }

    if plotted == 0 {
        println!(
            "no CSVs found under {} — run ./repro.sh (or the individual\n\
             bench targets) first, then re-run this target",
            experiments_dir().display()
        );
    } else {
        println!("{plotted} figures rendered into {}", experiments_dir().display());
    }
}
