//! Figure 11: volume-rendering speedup vs thread granularity (4×4-pixel
//! tiles per thread) on 8 processors, for the original (FIFO) and new (DF)
//! schedulers.
//!
//! The paper's shape: both curves fall at very fine grain (locality loss +
//! scheduler-lock contention, FIFO falling harder), peak around ~60
//! tiles/thread, and fall again past ~130 tiles/thread from load imbalance.

use ptdf::{Config, SchedKind};
use ptdf_apps::volren;
use ptdf_bench::{full_scale, speedup, Table};

fn main() {
    ptdf_bench::methodology_note();
    let base = if full_scale() {
        volren::Params::paper()
    } else {
        volren::Params::small()
    };
    let p = std::env::var("REPRO_P")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);
    let vol = volren::gen_volume(base.size);
    let serial = {
        let vol = vol.clone();
        ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), move || {
            volren::render_fine(&vol, &base)
        })
        .1
    };
    println!(
        "serial time: {} | total tiles {}",
        serial.time,
        base.total_tiles()
    );
    let grains: &[usize] = if full_scale() {
        &[10, 20, 40, 60, 90, 130, 180, 260]
    } else {
        &[2, 4, 8, 16, 32, 64, 96, 144]
    };
    let mut t = Table::new(
        "fig11_granularity",
        &format!("Figure 11: volrend speedup vs tiles/thread on {p} processors"),
        &[
            "tiles/thread",
            "threads",
            "orig sched",
            "new sched",
            "df+locality (§5.3)",
        ],
    );
    for &g in grains {
        let prm = volren::Params {
            tiles_per_thread: g,
            ..base
        };
        let run = |kind: SchedKind| {
            let vol = vol.clone();
            ptdf::run(Config::new(p, kind), move || volren::render_fine(&vol, &prm)).1
        };
        let orig = run(SchedKind::Fifo);
        let new = run(SchedKind::Df);
        let local = run(SchedKind::DfLocal);
        t.row(vec![
            g.to_string(),
            base.total_tiles().div_ceil(g).to_string(),
            speedup(&orig, serial.time),
            speedup(&new, serial.time),
            speedup(&local, serial.time),
        ]);
    }
    t.finish();
    println!(
        "paper shape: both schedulers dip at fine grain (orig dips harder),\n\
         peak in the middle, and dip again at very coarse grain from load\n\
         imbalance. The df+locality column is the paper's §5.3 future work:\n\
         a bounded affinity window should flatten the fine-grain dip."
    );
}
