//! Figure 1: scheduler space behaviour on the example computation graph.
//!
//! Reproduces the paper's claim: a serial FIFO execution of the 7-thread
//! example graph makes all 7 threads simultaneously active, while a
//! depth-first (child-first) execution needs at most `d = 3`. Also shows
//! the same contrast on deeper trees, plus the §4 queue-LIFO variant
//! (which is only *close* to depth-first).

use ptdf_bench::Table;
use ptdf_dag::{
    fig1_example, gen_program, max_path_threads, simulate, GenParams, PolicyKind,
};

fn main() {
    ptdf_bench::methodology_note();
    let mut t = Table::new(
        "fig01_graph",
        "Figure 1: max simultaneously active threads (serial execution)",
        &["graph", "threads", "d", "fifo", "lifo-queue", "child-first(df)"],
    );
    let policies = [
        PolicyKind::FifoQueue,
        PolicyKind::LifoQueue,
        PolicyKind::ChildFirst,
    ];
    let mut add = |name: &str, p: &ptdf_dag::Program| {
        let live: Vec<usize> = policies
            .iter()
            .map(|&pol| simulate(p, pol, 1).max_live_threads)
            .collect();
        t.row(vec![
            name.to_string(),
            p.len().to_string(),
            max_path_threads(p).to_string(),
            live[0].to_string(),
            live[1].to_string(),
            live[2].to_string(),
        ]);
    };
    add("fig1 (7 threads)", &fig1_example());
    for depth in [4, 6, 8, 10] {
        let prog = binary_tree(depth);
        add(&format!("binary depth {depth}"), &prog);
    }
    for seed in [1, 2, 3] {
        let prog = gen_program(GenParams {
            seed,
            max_threads: 400,
            ..GenParams::default()
        });
        add(&format!("random #{seed}"), &prog);
    }
    t.finish();
    println!(
        "paper: FIFO activates all 7 threads of the example; a depth-first\n\
         order needs at most d = 3. The gap widens with graph size."
    );
}

fn binary_tree(depth: u32) -> ptdf_dag::Program {
    use ptdf_dag::{Action, Program, ThreadSpec};
    fn build(threads: &mut Vec<ThreadSpec>, depth: u32) -> usize {
        let idx = threads.len();
        threads.push(ThreadSpec::default());
        if depth == 0 {
            threads[idx].actions = vec![Action::Work(1)];
        } else {
            let l = build(threads, depth - 1);
            let r = build(threads, depth - 1);
            threads[idx].actions = vec![
                Action::Fork(l),
                Action::Fork(r),
                Action::Join(l),
                Action::Join(r),
            ];
        }
        idx
    }
    let mut threads = Vec::new();
    build(&mut threads, depth);
    Program { threads }
}
