//! Figure 5: matrix multiply under the **native** Solaris Pthreads
//! implementation (FIFO scheduler, 1 MB default stacks).
//!
//! (a) speedup over the serial version; (b) memory high-water mark, with
//! the serial space for reference. The paper's headline: speedup is
//! "unexpectedly poor" and the 8-processor footprint (115 MB) dwarfs the
//! serial program's (25 MB).

use ptdf_bench::{drivers, mb, procs_list, speedup, Table};

fn main() {
    ptdf_bench::methodology_note();
    let app = drivers::matmul_driver();
    let serial = (app.serial)();
    println!(
        "serial: time {} | space {} MB",
        serial.time,
        mb(serial.s1_bytes())
    );
    let mut t = Table::new(
        "fig05_matmul_native",
        "Figure 5: matmul, native FIFO scheduler, 1MB default stacks",
        &["p", "speedup", "memory (MB)", "max live threads", "threads created"],
    );
    t.row(vec![
        "serial".into(),
        "1.00".into(),
        mb(serial.s1_bytes()),
        "1".into(),
        "0".into(),
    ]);
    for p in procs_list() {
        let report = (app.fine)(ptdf::Config::solaris_native(p));
        t.row(vec![
            p.to_string(),
            speedup(&report, serial.time),
            mb(report.footprint()),
            report.max_live_threads().to_string(),
            report.total_threads.to_string(),
        ]);
    }
    t.finish();
    println!(
        "paper shape: speedup flattens well below p (3.65 at p=8); memory\n\
         grows with p to ~4.6x the serial space (115 MB vs 25 MB)."
    );
}
