//! Shared harness utilities for the experiment benches.
//!
//! Every bench target regenerates one table or figure of the paper: it runs
//! the relevant benchmark under the relevant configurations, prints an
//! aligned text table with the same rows/series the paper reports, and
//! writes a CSV under `target/experiments/` for plotting.
//!
//! Environment knobs:
//!
//! * `REPRO_FULL=1` — run the paper's full problem sizes (slower). The
//!   default sizes are scaled down so `cargo bench` completes quickly;
//!   the *shapes* of the results are the same.
//! * `REPRO_PROCS=1,2,4,8` — override the processor counts swept.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::path::PathBuf;

pub mod drivers;
pub mod plot;
pub mod wallclock;

pub use ptdf::{Config, CostModel, Report, SchedKind, SerialReport, VirtTime};

/// True when the paper's full problem sizes were requested.
pub fn full_scale() -> bool {
    std::env::var("REPRO_FULL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Processor counts to sweep (default 1..=8 like the paper's figures).
pub fn procs_list() -> Vec<usize> {
    if let Ok(v) = std::env::var("REPRO_PROCS") {
        return v
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
    }
    vec![1, 2, 3, 4, 5, 6, 7, 8]
}

/// A result table being accumulated.
pub struct Table {
    name: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table; `name` is the CSV file stem, `title` the heading.
    pub fn new(name: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Prints the aligned table and writes the CSV; returns the CSV path.
    pub fn finish(&self) -> PathBuf {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        println!("{out}");
        // CSV.
        let dir = experiments_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.csv", self.name));
        let mut csv = csv_line(&self.headers);
        for row in &self.rows {
            csv.push_str(&csv_line(row));
        }
        let _ = std::fs::write(&path, csv);
        println!("[csv written to {}]", path.display());
        path
    }
}

/// Directory the CSVs are written to: `target/experiments/` at the
/// workspace root (stable regardless of the CWD cargo gives the bench
/// binary), overridable with `REPRO_OUT`.
pub fn experiments_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("REPRO_OUT") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR (compile-time) = <workspace>/crates/bench.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("target/experiments"))
        .unwrap_or_else(|| PathBuf::from("target/experiments"))
}

/// Serializes one CSV record, quoting fields that contain commas, quotes,
/// or newlines (RFC 4180).
fn csv_line(cells: &[String]) -> String {
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if c.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
    out
}

/// Formats a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a speedup.
pub fn speedup(report: &Report, serial: VirtTime) -> String {
    format!("{:.2}", report.speedup_vs(serial))
}

/// Standard note emitted by every harness about the methodology.
pub fn methodology_note() {
    println!(
        "[virtual-time SMP model calibrated to a 167 MHz UltraSPARC / Solaris 2.5; \
         see DESIGN.md — shapes, not absolute hardware times, are the claim]"
    );
    if !full_scale() {
        println!("[scaled-down default sizes; set REPRO_FULL=1 for the paper's sizes]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_quotes_fields_with_commas_and_quotes() {
        let line = csv_line(&[
            "plain".into(),
            "has, comma".into(),
            "has \"quote\"".into(),
        ]);
        assert_eq!(line, "plain,\"has, comma\",\"has \"\"quote\"\"\"\n");
    }

    #[test]
    fn table_writes_csv_with_all_rows() {
        let dir = std::env::temp_dir().join("ptdf_table_test");
        std::env::set_var("REPRO_OUT", &dir);
        let mut t = Table::new("unit_test_table", "t", &["a", "b"]);
        t.row(vec!["1".into(), "x, y".into()]);
        t.row(vec!["2".into(), "z".into()]);
        let path = t.finish();
        std::env::remove_var("REPRO_OUT");
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "a,b\n1,\"x, y\"\n2,z\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn experiments_dir_is_workspace_rooted() {
        let d = experiments_dir();
        assert!(d.ends_with("target/experiments"), "{d:?}");
        assert!(!d.to_string_lossy().contains("crates"), "{d:?}");
    }
}
