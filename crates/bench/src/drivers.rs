//! Benchmark drivers: one uniform entry point per paper benchmark, used by
//! the figure harnesses.

use ptdf::{Config, Report, SerialReport};
use ptdf_apps::{barnes_hut, dtree, fft, fmm, matmul, spmv, volren};

use crate::full_scale;

/// A benchmark with serial, fine-grained, and (optionally) coarse-grained
/// entry points. The closures generate their own inputs (outside the timed
/// runtime) so each invocation is independent.
pub struct AppDriver {
    /// Benchmark name (paper's Figure 8 row).
    pub name: &'static str,
    /// Paper problem-size description.
    pub problem: String,
    /// Serial baseline (the paper's "serial C version").
    pub serial: Box<dyn Fn() -> SerialReport>,
    /// Fine-grained version (many threads) under the given config.
    pub fine: Box<dyn Fn(Config) -> Report>,
    /// Coarse-grained version (one thread per processor), if the paper had
    /// one.
    pub coarse: Option<Box<dyn Fn(Config) -> Report>>,
}

/// Matmul parameters at the active scale.
pub fn matmul_params() -> matmul::Params {
    if full_scale() {
        matmul::Params::paper()
    } else {
        matmul::Params::small()
    }
}

/// The dense matrix multiply driver.
pub fn matmul_driver() -> AppDriver {
    let p = matmul_params();
    AppDriver {
        name: "Matrix Mult.",
        problem: format!("{n}x{n}", n = p.n),
        serial: Box::new(move || {
            let (a, b) = matmul::gen_input(&p);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
                matmul::multiply(&a, &b, &p)
            })
            .1
        }),
        fine: Box::new(move |cfg| {
            let (a, b) = matmul::gen_input(&p);
            ptdf::run(cfg, move || matmul::multiply(&a, &b, &p)).1
        }),
        coarse: None,
    }
}

/// The Barnes-Hut driver.
pub fn barnes_hut_driver() -> AppDriver {
    let p = if full_scale() {
        barnes_hut::Params::paper()
    } else {
        barnes_hut::Params::small()
    };
    AppDriver {
        name: "Barnes Hut",
        problem: format!("N={}, Plummer", p.n_bodies),
        serial: Box::new(move || {
            let mut bodies = barnes_hut::plummer(p.n_bodies, p.seed);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
                barnes_hut::run_fine(&mut bodies, &p)
            })
            .1
        }),
        fine: Box::new(move |cfg| {
            let mut bodies = barnes_hut::plummer(p.n_bodies, p.seed);
            ptdf::run(cfg, move || barnes_hut::run_fine(&mut bodies, &p)).1
        }),
        coarse: Some(Box::new(move |cfg| {
            let mut bodies = barnes_hut::plummer(p.n_bodies, p.seed);
            let procs = cfg.processors;
            ptdf::run(cfg, move || barnes_hut::run_coarse(&mut bodies, &p, procs)).1
        })),
    }
}

/// The FMM driver.
pub fn fmm_driver() -> AppDriver {
    let p = if full_scale() {
        fmm::Params::paper()
    } else {
        fmm::Params::small()
    };
    AppDriver {
        name: "FMM",
        problem: format!("N={}, {} terms", p.n_particles, p.terms),
        serial: Box::new(move || {
            let particles = fmm::gen_particles(&p);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
                fmm::run_fmm(&particles, &p)
            })
            .1
        }),
        fine: Box::new(move |cfg| {
            let particles = fmm::gen_particles(&p);
            ptdf::run(cfg, move || fmm::run_fmm(&particles, &p)).1
        }),
        coarse: None,
    }
}

/// The decision-tree driver.
pub fn dtree_driver() -> AppDriver {
    let p = if full_scale() {
        dtree::Params::paper()
    } else {
        dtree::Params::small()
    };
    AppDriver {
        name: "Decision Tree",
        problem: format!("{} instances", p.instances),
        serial: Box::new(move || {
            let ds = dtree::gen_dataset(&p);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || dtree::build(&ds, &p)).1
        }),
        fine: Box::new(move |cfg| {
            let ds = dtree::gen_dataset(&p);
            ptdf::run(cfg, move || dtree::build(&ds, &p)).1
        }),
        coarse: None,
    }
}

/// The FFT driver (fine = 256 threads; coarse = p threads).
pub fn fft_driver() -> AppDriver {
    let mk = |threads| {
        if full_scale() {
            fft::Params::paper(threads)
        } else {
            fft::Params::small(threads)
        }
    };
    AppDriver {
        name: "FFTW",
        problem: format!("N=2^{}", mk(1).log2n),
        serial: Box::new(move || {
            let p = mk(1);
            let x = fft::gen_input(&p);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || fft::fft(&x, &p)).1
        }),
        fine: Box::new(move |cfg| {
            let p = mk(256);
            let x = fft::gen_input(&p);
            ptdf::run(cfg, move || fft::fft(&x, &p)).1
        }),
        coarse: Some(Box::new(move |cfg| {
            let p = mk(cfg.processors);
            let x = fft::gen_input(&p);
            ptdf::run(cfg, move || fft::fft(&x, &p)).1
        })),
    }
}

/// The sparse matrix-vector driver.
pub fn spmv_driver() -> AppDriver {
    let p = if full_scale() {
        spmv::Params::paper()
    } else {
        spmv::Params::small()
    };
    AppDriver {
        name: "Sparse Matrix",
        problem: format!("{} nodes", p.nodes),
        serial: Box::new(move || {
            let m = spmv::gen_matrix(&p);
            let v = spmv::gen_vector(&p);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
                spmv::run_fine(&m, &v, &p)
            })
            .1
        }),
        fine: Box::new(move |cfg| {
            let m = spmv::gen_matrix(&p);
            let v = spmv::gen_vector(&p);
            ptdf::run(cfg, move || spmv::run_fine(&m, &v, &p)).1
        }),
        coarse: Some(Box::new(move |cfg| {
            let m = spmv::gen_matrix(&p);
            let v = spmv::gen_vector(&p);
            let procs = cfg.processors;
            ptdf::run(cfg, move || spmv::run_coarse(&m, &v, &p, procs)).1
        })),
    }
}

/// The volume-rendering driver.
pub fn volren_driver() -> AppDriver {
    let p = if full_scale() {
        volren::Params::paper()
    } else {
        volren::Params::small()
    };
    AppDriver {
        name: "Vol. Rend.",
        problem: format!("{s}^3 vol, {i}^2 img", s = p.size, i = p.image),
        serial: Box::new(move || {
            let vol = volren::gen_volume(p.size);
            ptdf::run_serial(ptdf::CostModel::ultrasparc_167(), || {
                volren::render_fine(&vol, &p)
            })
            .1
        }),
        fine: Box::new(move |cfg| {
            let vol = volren::gen_volume(p.size);
            ptdf::run(cfg, move || volren::render_fine(&vol, &p)).1
        }),
        coarse: Some(Box::new(move |cfg| {
            let vol = volren::gen_volume(p.size);
            let procs = cfg.processors;
            ptdf::run(cfg, move || volren::render_coarse(&vol, &p, procs)).1
        })),
    }
}

/// All seven benchmarks in the paper's Figure 8 order.
pub fn all_drivers() -> Vec<AppDriver> {
    vec![
        matmul_driver(),
        barnes_hut_driver(),
        fmm_driver(),
        dtree_driver(),
        fft_driver(),
        spmv_driver(),
        volren_driver(),
    ]
}
