//! Minimal dependency-free SVG line charts for the experiment CSVs.
//!
//! The `plot_figures` bench target turns the CSVs under
//! `target/experiments/` into SVG plots mirroring the paper's figures.

use std::fmt::Write as _;

/// One line series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

const PALETTE: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b",
];

const W: f64 = 640.0;
const H: f64 = 420.0;
const ML: f64 = 64.0; // margins
const MR: f64 = 18.0;
const MT: f64 = 40.0;
const MB: f64 = 52.0;

fn nice_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return vec![lo];
    }
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|&s| s >= raw)
        .unwrap_or(mag * 10.0);
    let start = (lo / step).floor() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= hi + step * 0.001 {
        if t >= lo - step * 0.001 {
            ticks.push(t);
        }
        t += step;
    }
    ticks
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 || v.fract().abs() < 1e-9 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders a line chart as a standalone SVG document.
pub fn line_chart(title: &str, xlabel: &str, ylabel: &str, series: &[Series]) -> String {
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
    for s in series {
        for &(x, y) in &s.points {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() {
        xmin = 0.0;
        xmax = 1.0;
        ymax = 1.0;
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }
    ymax *= 1.05;
    let px = |x: f64| ML + (x - xmin) / (xmax - xmin).max(1e-12) * (W - ML - MR);
    let py = |y: f64| H - MB - (y - ymin) / (ymax - ymin) * (H - MT - MB);

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
        W / 2.0,
        xml(title)
    );
    // Axes + grid.
    for t in nice_ticks(ymin, ymax, 5) {
        let y = py(t);
        let _ = write!(
            svg,
            r##"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#e0e0e0"/><text x="{:.1}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"##,
            W - MR,
            ML - 6.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for t in nice_ticks(xmin, xmax, 7) {
        let x = px(t);
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="#f0f0f0"/><text x="{x:.1}" y="{:.1}" text-anchor="middle" font-size="11">{}</text>"##,
            H - MB,
            H - MB + 16.0,
            fmt_tick(t)
        );
    }
    let _ = write!(
        svg,
        r##"<line x1="{ML}" y1="{MT}" x2="{ML}" y2="{0:.1}" stroke="black"/><line x1="{ML}" y1="{0:.1}" x2="{1:.1}" y2="{0:.1}" stroke="black"/>"##,
        H - MB,
        W - MR
    );
    // Axis labels.
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="12">{}</text>"#,
        (ML + W - MR) / 2.0,
        H - 12.0,
        xml(xlabel)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {:.1})">{}</text>"#,
        (MT + H - MB) / 2.0,
        (MT + H - MB) / 2.0,
        xml(ylabel)
    );
    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let pts: String = s
            .points
            .iter()
            .map(|&(x, y)| format!("{:.1},{:.1} ", px(x), py(y)))
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="2"/>"#
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>"#,
                px(x),
                py(y)
            );
        }
        // Legend.
        let ly = MT + 8.0 + i as f64 * 16.0;
        let _ = write!(
            svg,
            r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            W - MR - 150.0,
            W - MR - 128.0,
            W - MR - 122.0,
            ly + 4.0,
            xml(&s.label)
        );
    }
    svg.push_str("</svg>");
    svg
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Parses a CSV written by [`crate::Table`] into (headers, rows). Handles
/// the quoting produced by the writer.
pub fn parse_csv(body: &str) -> (Vec<String>, Vec<Vec<String>>) {
    let mut lines = body.lines();
    let headers = lines.next().map(split_csv_line).unwrap_or_default();
    let rows = lines.map(split_csv_line).collect();
    (headers, rows)
}

fn split_csv_line(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_is_valid_svg_with_all_series() {
        let svg = line_chart(
            "Title <x>",
            "p",
            "speedup",
            &[
                Series {
                    label: "fifo".into(),
                    points: vec![(1.0, 1.0), (2.0, 1.8), (4.0, 2.5)],
                },
                Series {
                    label: "df & co".into(),
                    points: vec![(1.0, 1.0), (2.0, 1.9), (4.0, 3.7)],
                },
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Title &lt;x&gt;"), "XML escaping");
        assert!(svg.contains("df &amp; co"));
    }

    #[test]
    fn nice_ticks_cover_range() {
        let t = nice_ticks(0.0, 8.3, 5);
        assert!(t.first().copied().unwrap() <= 0.0 + 1e-9);
        assert!(*t.last().unwrap() <= 8.3 + 1e-9);
        assert!(t.len() >= 3);
    }

    #[test]
    fn csv_roundtrip_with_quotes() {
        let (h, rows) = parse_csv("a,b\n1,\"x, y\"\n2,\"he said \"\"hi\"\"\"\n");
        assert_eq!(h, vec!["a", "b"]);
        assert_eq!(rows[0], vec!["1", "x, y"]);
        assert_eq!(rows[1], vec!["2", "he said \"hi\""]);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = line_chart("t", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
        let svg = line_chart(
            "t",
            "x",
            "y",
            &[Series {
                label: "one point".into(),
                points: vec![(3.0, 3.0)],
            }],
        );
        assert!(svg.contains("<circle"));
    }
}
