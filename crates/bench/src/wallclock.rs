//! Wall-clock (host-time) harness for the scheduler dispatch hot paths.
//!
//! Two measurements feed `BENCH_sched.json` at the workspace root:
//!
//! 1. **Micro dispatch storms** — each policy is driven *directly* through
//!    [`ptdf::bench_api`] (no engine, no fibers, no cost model) on
//!    synthetic fork/join states of 10k–1M live threads, against its naive
//!    pre-index reference. The storms pin the asymptotic difference:
//!
//!    * `df_join_storm`: one dispatchable root to the right of `n` blocked
//!      placeholders (a join-wave). The reference scans every placeholder
//!      per pop (O(n)); the indexed scheduler answers from its eligible
//!      index (O(log n)).
//!    * `dfdeques_poll_storm`: an owner deque holding `n` items published
//!      in the processor's virtual future (a `NotYet` poll, the idle
//!      processor's hot loop). The reference rescans every item twice per
//!      pop (O(n)); the indexed scheduler answers from its cached exact
//!      minimum (O(1)).
//!
//! 2. **Application wall-clock** — all seven paper applications (matmul,
//!    Barnes-Hut, FMM, decision tree, FFT, sparse matvec, volume
//!    rendering) at reduced scale under every scheduler, reporting total
//!    host runtime and host nanoseconds per engine dispatch.
//!
//! 3. **Spawn storm** — a 100k-thread fork/join churn through the full
//!    engine, run twice: with the fiber stack pool (the default) and with
//!    it disabled (`Config::with_stack_pool_cap(0)`). Reports host
//!    nanoseconds per spawn and the pool hit rate; the overhead guard
//!    (`trace_overhead --bench`, `TRACE_GUARD=1`) uses both to hold the
//!    line that pooled spawn is never slower than the committed baseline
//!    or than the unpooled path.
//!
//! 4. **Sentinel-armed join storm** — fork/join waves whose every join
//!    *blocks*, so the deadlock sentinel's waits-for bookkeeping (edge
//!    install, cycle walk, teardown) runs on each one. The committed
//!    `ns_per_join` cell is the baseline the overhead guard holds the
//!    bookkeeping to (default 5% tolerance).
//!
//! 5. **Host engine phases** — matmul, FFT, the decision tree, and a
//!    fork/join storm re-run under [`ptdf::Config::with_host_profile`]
//!    with tracing on, reporting where the engine's own host time goes
//!    (event-heap push/pop, dispatch prologue, charge batching, sched-lock
//!    accounting, trace allocation) as counts, nanoseconds, and shares.
//!
//! `REPRO_QUICK=1` shrinks the storm sizes and budgets for CI smoke runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ptdf::bench_api::{BenchPolicy, BenchPop};
use ptdf::{Config, SchedKind};

use crate::drivers::{
    barnes_hut_driver, dtree_driver, fft_driver, fmm_driver, matmul_driver, spmv_driver,
    volren_driver, AppDriver,
};

/// One (storm, implementation, size) measurement.
#[derive(Debug, Clone)]
pub struct StormPoint {
    /// Storm name.
    pub storm: &'static str,
    /// Scheduler the storm targets ("df" / "df-deques").
    pub sched: &'static str,
    /// "indexed" or "reference".
    pub impl_name: &'static str,
    /// Live threads resident in the policy during the measurement.
    pub live_threads: u64,
    /// Dispatch attempts timed.
    pub ops: u64,
    /// Host nanoseconds per dispatch attempt.
    pub ns_per_dispatch: f64,
}

/// One application run under one scheduler.
#[derive(Debug, Clone)]
pub struct AppPoint {
    /// Application name.
    pub app: &'static str,
    /// Scheduler name.
    pub sched: &'static str,
    /// Virtual processors.
    pub procs: usize,
    /// Total host runtime of the run, milliseconds.
    pub host_ms: f64,
    /// Engine dispatches over the run.
    pub dispatches: u64,
    /// Host nanoseconds per engine dispatch (total runtime / dispatches —
    /// an upper bound on scheduler cost, since it includes the app itself).
    pub host_ns_per_dispatch: f64,
    /// Virtual makespan of the run (model output, for cross-checking that
    /// implementations only changed speed, not results).
    pub virt_makespan_ns: u64,
}

/// True when `REPRO_QUICK=1` asks for a CI-sized smoke run.
pub fn quick() -> bool {
    std::env::var("REPRO_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Storm sizes: 10k–1M live threads (10k–100k under `REPRO_QUICK`).
pub fn storm_sizes() -> Vec<u64> {
    if quick() {
        vec![10_000, 100_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    }
}

fn budget() -> Duration {
    Duration::from_millis(if quick() { 25 } else { 150 })
}

/// Times `op` repeatedly until the budget elapses (checking the clock every
/// few iterations so slow O(n) reference pops still terminate promptly).
fn time_ops(mut op: impl FnMut(), budget: Duration) -> (u64, f64) {
    // Warm up (first pop may lazily build state on either implementation).
    op();
    let start = Instant::now();
    let mut ops = 0u64;
    loop {
        for _ in 0..8 {
            op();
        }
        ops += 8;
        let elapsed = start.elapsed();
        if elapsed >= budget {
            return (ops, elapsed.as_nanos() as f64 / ops as f64);
        }
    }
}

const QUOTA: u64 = 1 << 20;

/// A join-wave: `n` blocked children sit immediately left of their ready
/// parent in the serial depth-first order, so every dispatch of the parent
/// must get past all of them. Measures pop + re-publish of the parent.
fn df_join_storm(mut pol: BenchPolicy, n: u64) -> (u64, f64) {
    pol.on_create(0, None, true, 0, 0);
    for i in 1..=n as u32 {
        // Handoff-created (running) children that block at once: each
        // leaves a non-ready placeholder immediately left of the root.
        pol.on_create(i, Some(0), false, 0, 0);
        pol.on_block(i);
    }
    time_ops(
        move || {
            match pol.pop(0, 1) {
                BenchPop::Got { tid: 0, .. } => {}
                r => panic!("join storm must dispatch the root, got {r:?}"),
            }
            pol.on_ready(0, 1, 0, None);
        },
        budget(),
    )
}

/// An idle-processor poll against an owner deque of `n` items all published
/// in the virtual future (e.g. by a processor running ahead): every pop is
/// a `NotYet`, the answer the engine uses to pick its idle-until time.
fn dfdeques_poll_storm(mut pol: BenchPolicy, n: u64) -> (u64, f64) {
    const FUTURE: u64 = 1 << 40;
    for i in 0..n as u32 {
        pol.on_create(i, None, true, FUTURE + u64::from(i), 0);
    }
    time_ops(
        move || match pol.pop(0, 0) {
            BenchPop::NotYet(t) if t == FUTURE => {}
            r => panic!("poll storm must answer NotYet({FUTURE}), got {r:?}"),
        },
        budget(),
    )
}

/// One storm case: names plus the storm function and a constructor for the
/// policy it drives (fresh state per repetition).
type StormCase = (
    &'static str,
    &'static str,
    &'static str,
    fn(BenchPolicy, u64) -> (u64, f64),
    fn() -> BenchPolicy,
);

/// Repetitions per storm point; the minimum is kept. Host scheduling on a
/// shared machine swings single samples by tens of percent — the best-of
/// minimum is what the hot path can do and is stable enough to commit as a
/// baseline and to compare against one.
const STORM_REPS: usize = 3;

/// Runs every storm at every size for both implementations.
pub fn run_micro() -> Vec<StormPoint> {
    run_storms(true)
}

/// Indexed-implementation storms only (the dispatch hot paths a CI guard
/// compares against the committed baseline; skips the slow references).
pub fn run_micro_indexed() -> Vec<StormPoint> {
    run_storms(false)
}

fn storm_cases() -> [StormCase; 4] {
    [
        ("df_join_storm", "df", "indexed", df_join_storm, || {
            BenchPolicy::df(QUOTA)
        }),
        ("df_join_storm", "df", "reference", df_join_storm, || {
            BenchPolicy::df_reference(QUOTA)
        }),
        (
            "dfdeques_poll_storm",
            "df-deques",
            "indexed",
            dfdeques_poll_storm,
            || BenchPolicy::dfdeques(QUOTA, 2),
        ),
        (
            "dfdeques_poll_storm",
            "df-deques",
            "reference",
            dfdeques_poll_storm,
            || BenchPolicy::dfdeques_reference(QUOTA, 2),
        ),
    ]
}

/// Re-measures one indexed storm point once (fresh policy, single
/// repetition). The overhead guard retries points that look like
/// regressions through this: host-scheduling noise never survives a few
/// extra minima, a real regression does.
pub fn remeasure_indexed(storm: &str, live_threads: u64) -> Option<StormPoint> {
    let &(name, sched, impl_name, run, make) = storm_cases()
        .iter()
        .find(|c| c.0 == storm && c.2 == "indexed")?;
    let (ops, ns) = run(make(), live_threads);
    Some(StormPoint {
        storm: name,
        sched,
        impl_name,
        live_threads,
        ops,
        ns_per_dispatch: ns,
    })
}

fn run_storms(include_reference: bool) -> Vec<StormPoint> {
    let mut out = Vec::new();
    for &n in &storm_sizes() {
        for &(storm, sched, impl_name, run, make) in &storm_cases() {
            if !include_reference && impl_name != "indexed" {
                continue;
            }
            let (mut ops, mut ns) = run(make(), n);
            for _ in 1..STORM_REPS {
                let (o, t) = run(make(), n);
                if t < ns {
                    (ops, ns) = (o, t);
                }
            }
            out.push(StormPoint {
                storm,
                sched,
                impl_name,
                live_threads: n,
                ops,
                ns_per_dispatch: ns,
            });
        }
    }
    out
}

/// Speedup (reference / indexed) for each storm and size present in
/// `points`.
pub fn speedups(points: &[StormPoint]) -> Vec<(&'static str, u64, f64)> {
    let mut out = Vec::new();
    for p in points.iter().filter(|p| p.impl_name == "indexed") {
        if let Some(r) = points
            .iter()
            .find(|r| r.impl_name == "reference" && r.storm == p.storm && r.live_threads == p.live_threads)
        {
            out.push((p.storm, p.live_threads, r.ns_per_dispatch / p.ns_per_dispatch));
        }
    }
    out
}

/// Schedulers the application sweep covers.
pub fn app_scheds() -> Vec<SchedKind> {
    vec![
        SchedKind::Fifo,
        SchedKind::Lifo,
        SchedKind::Df,
        SchedKind::DfDeques,
        SchedKind::Ws,
    ]
}

/// The full seven-app suite of the paper's Figure 8, at reduced scale,
/// keyed by the short names `BENCH_sched.json` uses.
fn app_suite() -> [(&'static str, AppDriver); 7] {
    [
        ("matmul", matmul_driver()),
        ("barnes_hut", barnes_hut_driver()),
        ("fmm", fmm_driver()),
        ("dtree", dtree_driver()),
        ("fft", fft_driver()),
        ("spmv", spmv_driver()),
        ("volren", volren_driver()),
    ]
}

/// Times all seven paper applications (reduced scale) under each scheduler.
pub fn run_apps(procs: usize) -> Vec<AppPoint> {
    let apps = app_suite();
    let mut out = Vec::new();
    for (app, driver) in apps {
        for kind in app_scheds() {
            let cfg = Config::new(procs, kind);
            let start = Instant::now();
            let report = (driver.fine)(cfg);
            let host = start.elapsed();
            let dispatches: u64 = report.stats.procs.iter().map(|p| p.dispatches).sum();
            out.push(AppPoint {
                app,
                sched: kind.name(),
                procs,
                host_ms: host.as_secs_f64() * 1e3,
                dispatches,
                host_ns_per_dispatch: host.as_nanos() as f64 / dispatches.max(1) as f64,
                virt_makespan_ns: report.makespan().as_ns(),
            });
        }
    }
    out
}

/// One spawn-storm measurement: the engine's fork/join churn with the
/// fiber-stack pool on or off.
#[derive(Debug, Clone)]
pub struct SpawnPoint {
    /// "pooled" (default config) or "unpooled" (`stack_pool_cap = 0`).
    pub pool: &'static str,
    /// Threads spawned and joined over the run.
    pub threads: u64,
    /// Host nanoseconds per spawn+join (total runtime / threads).
    pub ns_per_spawn: f64,
    /// Fraction of fiber stacks served from the pool (0 when disabled or
    /// on the portable thread backend, which has no real stacks).
    pub pool_hit_rate: f64,
}

/// Threads in the spawn storm (the acceptance scale: 100k fork/joins).
pub fn spawn_storm_threads() -> u64 {
    if quick() {
        20_000
    } else {
        100_000
    }
}

/// One spawn-storm run: `threads` fork/joins in waves of 64 so the live
/// set stays small and every exit feeds the next wave's acquires.
fn spawn_storm_once(threads: u64, pool_cap: usize) -> SpawnPoint {
    spawn_storm_cfg(
        threads,
        Config::new(4, SchedKind::Df).with_stack_pool_cap(pool_cap),
    )
}

/// The spawn storm with the host phase profiler *explicitly disarmed*
/// (`with_host_profile(false)`) — the configuration every unprofiled run
/// takes through the profiler's hot-path hooks. The overhead guard holds
/// this to the committed pooled baseline: when off, the profiler must cost
/// nothing but an `Option` discriminant test per hook.
pub fn spawn_storm_profile_off() -> SpawnPoint {
    spawn_storm_cfg(
        spawn_storm_threads(),
        Config::new(4, SchedKind::Df).with_host_profile(false),
    )
}

fn spawn_storm_cfg(threads: u64, cfg: Config) -> SpawnPoint {
    let pool_cap = cfg.stack_pool_cap;
    let start = Instant::now();
    let (_, report) = ptdf::run(cfg, move || {
        let mut done = 0u64;
        while done < threads {
            let wave = 64.min(threads - done);
            let handles: Vec<_> = (0..wave).map(|_| ptdf::spawn(|| ())).collect();
            for h in handles {
                h.join();
            }
            done += wave;
        }
    });
    let host = start.elapsed();
    SpawnPoint {
        pool: if pool_cap == 0 { "unpooled" } else { "pooled" },
        threads,
        ns_per_spawn: host.as_nanos() as f64 / threads as f64,
        pool_hit_rate: report.stack_pool_hit_rate(),
    }
}

/// Runs the spawn storm pooled and unpooled, keeping the best of
/// `STORM_REPS` repetitions per configuration.
pub fn run_spawn_storms() -> Vec<SpawnPoint> {
    let threads = spawn_storm_threads();
    [ptdf_fiber::DEFAULT_POOL_CAP, 0]
        .into_iter()
        .map(|cap| {
            let mut best = spawn_storm_once(threads, cap);
            for _ in 1..STORM_REPS {
                let p = spawn_storm_once(threads, cap);
                if p.ns_per_spawn < best.ns_per_spawn {
                    best = p;
                }
            }
            best
        })
        .collect()
}

/// Re-measures the pooled spawn storm once (the guard's retry hook).
pub fn remeasure_spawn_pooled() -> SpawnPoint {
    spawn_storm_once(spawn_storm_threads(), ptdf_fiber::DEFAULT_POOL_CAP)
}

/// One sentinel-armed join-storm measurement: fork/join churn shaped so
/// every `join` *blocks*, driving the deadlock sentinel's waits-for
/// bookkeeping (join edge install, cycle walk, edge teardown) on each one.
#[derive(Debug, Clone)]
pub struct SentinelPoint {
    /// Joins performed (each a blocking join through the sentinel).
    pub joins: u64,
    /// Host nanoseconds per blocking join (total runtime / joins).
    pub ns_per_join: f64,
}

/// Joins in the sentinel storm.
pub fn sentinel_storm_joins() -> u64 {
    if quick() {
        10_000
    } else {
        50_000
    }
}

/// One sentinel-storm run: waves of children that each carry real modelled
/// work, so the parent's joins reach the sentinel while the children still
/// run — every join installs a waits-for edge and walks the graph.
fn sentinel_storm_once(joins: u64) -> SentinelPoint {
    let cfg = Config::new(4, SchedKind::Df);
    let start = Instant::now();
    ptdf::run(cfg, move || {
        let mut done = 0u64;
        while done < joins {
            let wave = 32.min(joins - done);
            let handles: Vec<_> = (0..wave)
                .map(|_| ptdf::spawn(|| ptdf::work(2_000)))
                .collect();
            for h in handles {
                h.join();
            }
            done += wave;
        }
    });
    let host = start.elapsed();
    SentinelPoint {
        joins,
        ns_per_join: host.as_nanos() as f64 / joins as f64,
    }
}

/// Runs the sentinel-armed join storm, best of `STORM_REPS` repetitions.
pub fn run_sentinel_storm() -> SentinelPoint {
    let joins = sentinel_storm_joins();
    let mut best = sentinel_storm_once(joins);
    for _ in 1..STORM_REPS {
        let p = sentinel_storm_once(joins);
        if p.ns_per_join < best.ns_per_join {
            best = p;
        }
    }
    best
}

/// Re-measures the sentinel storm once (the guard's retry hook).
pub fn remeasure_sentinel() -> SentinelPoint {
    sentinel_storm_once(sentinel_storm_joins())
}

/// One host engine phase profile: where the engine's own host time goes
/// (event-heap, dispatch, charge batching, trace allocation, sched lock)
/// for one workload, measured with [`ptdf::Config::with_host_profile`].
#[derive(Debug, Clone)]
pub struct HostPhasePoint {
    /// Workload name ("matmul", "fft", "dtree", "join_storm").
    pub workload: &'static str,
    /// Scheduler the workload ran under.
    pub sched: &'static str,
    /// The profiled phase counters (real host nanoseconds).
    pub phases: ptdf_smp::HostPhaseStats,
}

/// Joins in the host-phase join storm.
fn host_phase_joins() -> u64 {
    if quick() {
        5_000
    } else {
        20_000
    }
}

/// Profiles the engine phase breakdown over three paper apps plus a
/// fork/join storm, tracing enabled (so the trace-alloc phase is live).
pub fn run_host_phase(procs: usize) -> Vec<HostPhasePoint> {
    let kind = SchedKind::Df;
    let mut out = Vec::new();
    let apps: [(&'static str, AppDriver); 3] = [
        ("matmul", matmul_driver()),
        ("fft", fft_driver()),
        ("dtree", dtree_driver()),
    ];
    for (workload, driver) in apps {
        let cfg = Config::new(procs, kind).with_trace().with_host_profile(true);
        let report = (driver.fine)(cfg);
        out.push(HostPhasePoint {
            workload,
            sched: kind.name(),
            phases: *report.host_phase(),
        });
    }
    let joins = host_phase_joins();
    let cfg = Config::new(procs, kind).with_trace().with_host_profile(true);
    let (_, report) = ptdf::run(cfg, move || {
        let mut done = 0u64;
        while done < joins {
            let wave = 32.min(joins - done);
            let handles: Vec<_> = (0..wave)
                .map(|_| ptdf::spawn(|| ptdf::work(2_000)))
                .collect();
            for h in handles {
                h.join();
            }
            done += wave;
        }
    });
    out.push(HostPhasePoint {
        workload: "join_storm",
        sched: kind.name(),
        phases: *report.host_phase(),
    });
    out
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

/// Renders the whole result set as the `BENCH_sched.json` document.
pub fn to_json(
    micro: &[StormPoint],
    apps: &[AppPoint],
    spawn: &[SpawnPoint],
    sentinel: &[SentinelPoint],
    host_phase: &[HostPhasePoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"wallclock\",\n");
    let _ = writeln!(s, "  \"quick\": {},", quick());
    s.push_str("  \"micro_dispatch\": [\n");
    for (i, p) in micro.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"storm\": \"{}\", \"sched\": \"{}\", \"impl\": \"{}\", \"live_threads\": {}, \"ops\": {}, \"ns_per_dispatch\": {}}}",
            p.storm, p.sched, p.impl_name, p.live_threads, p.ops, json_f(p.ns_per_dispatch)
        );
        s.push_str(if i + 1 < micro.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"speedup_indexed_vs_reference\": [\n");
    let sp = speedups(micro);
    for (i, (storm, n, x)) in sp.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"storm\": \"{storm}\", \"live_threads\": {n}, \"speedup\": {}}}",
            json_f(*x)
        );
        s.push_str(if i + 1 < sp.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"apps\": [\n");
    for (i, a) in apps.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"app\": \"{}\", \"sched\": \"{}\", \"procs\": {}, \"host_ms\": {}, \"dispatches\": {}, \"host_ns_per_dispatch\": {}, \"virt_makespan_ns\": {}}}",
            a.app,
            a.sched,
            a.procs,
            json_f(a.host_ms),
            a.dispatches,
            json_f(a.host_ns_per_dispatch),
            a.virt_makespan_ns
        );
        s.push_str(if i + 1 < apps.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"spawn_storm\": [\n");
    for (i, p) in spawn.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"pool\": \"{}\", \"threads\": {}, \"ns_per_spawn\": {}, \"pool_hit_rate\": {:.4}}}",
            p.pool,
            p.threads,
            json_f(p.ns_per_spawn),
            p.pool_hit_rate
        );
        s.push_str(if i + 1 < spawn.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"sentinel_storm\": [\n");
    for (i, p) in sentinel.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"joins\": {}, \"ns_per_join\": {}}}",
            p.joins,
            json_f(p.ns_per_join)
        );
        s.push_str(if i + 1 < sentinel.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n  \"host_phase\": [\n");
    for (i, p) in host_phase.iter().enumerate() {
        let total = p.phases.total_ns().max(1);
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"sched\": \"{}\", \"total_ns\": {}",
            p.workload,
            p.sched,
            p.phases.total_ns()
        );
        for (name, ps) in p.phases.phases() {
            let _ = write!(
                s,
                ", \"{name}\": {{\"count\": {}, \"ns\": {}, \"share\": {}}}",
                ps.count,
                ps.ns,
                json_f(ps.ns as f64 / total as f64 * 100.0)
            );
        }
        s.push('}');
        s.push_str(if i + 1 < host_phase.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// `BENCH_sched.json` at the workspace root (the committed snapshot
/// location), `REPRO_OUT` overriding the directory.
pub fn json_path() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("REPRO_OUT") {
        return std::path::PathBuf::from(dir).join("BENCH_sched.json");
    }
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(|ws| ws.join("BENCH_sched.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_sched.json"))
}
