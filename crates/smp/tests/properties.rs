//! Property tests of the machine-model primitives against reference
//! implementations.

use proptest::prelude::*;
use ptdf_smp::{CacheModel, HeapModel, VirtTime, VirtualLock};

proptest! {
    /// Granted critical sections never overlap, never start before the
    /// acquirer arrives, and the counters add up.
    #[test]
    fn vlock_grants_are_disjoint(ops in proptest::collection::vec((0u64..10_000, 1u64..200), 1..200)) {
        let mut lock = VirtualLock::new();
        let mut grants: Vec<(u64, u64)> = Vec::new();
        let mut total_wait = 0u64;
        for (now, hold) in ops {
            let (wait, release) = lock.acquire(VirtTime::from_ns(now), VirtTime::from_ns(hold));
            let start = release.as_ns() - hold;
            prop_assert!(start >= now, "granted before arrival");
            prop_assert_eq!(wait.as_ns(), start - now);
            for &(s, e) in &grants {
                prop_assert!(release.as_ns() <= s || start >= e,
                    "overlap: [{start},{}) vs [{s},{e})", release.as_ns());
            }
            grants.push((start, release.as_ns()));
            total_wait += wait.as_ns();
        }
        let (acq, wait, _) = lock.counters();
        prop_assert_eq!(acq as usize, grants.len());
        prop_assert_eq!(wait.as_ns(), total_wait);
    }

    /// Pruning below the minimum future arrival time never changes grants.
    #[test]
    fn vlock_prune_is_transparent(
        ops in proptest::collection::vec((0u64..5_000, 1u64..100), 1..100),
        later in proptest::collection::vec((5_000u64..10_000, 1u64..100), 1..50),
    ) {
        let mut a = VirtualLock::new();
        let mut b = VirtualLock::new();
        for &(now, hold) in &ops {
            a.acquire(VirtTime::from_ns(now), VirtTime::from_ns(hold));
            b.acquire(VirtTime::from_ns(now), VirtTime::from_ns(hold));
        }
        a.prune(VirtTime::from_ns(0)); // no-op prune
        for &(now, hold) in &later {
            let ra = a.acquire(VirtTime::from_ns(now), VirtTime::from_ns(hold));
            let rb = b.acquire(VirtTime::from_ns(now), VirtTime::from_ns(hold));
            prop_assert_eq!(ra, rb);
        }
    }

    /// HeapModel bookkeeping against a straightforward reference.
    #[test]
    fn heap_model_matches_reference(ops in proptest::collection::vec(1u64..5_000, 1..200)) {
        let mut h = HeapModel::new();
        let mut live_ref = 0u64;
        let mut pool_ref = 0u64;
        let mut footprint_ref = 0u64;
        let mut outstanding: Vec<u64> = Vec::new();
        for (i, &bytes) in ops.iter().enumerate() {
            if i % 3 == 2 && !outstanding.is_empty() {
                let b = outstanding.pop().unwrap();
                prop_assert_eq!(h.free(b), 0, "frees of live bytes never underflow");
                live_ref -= b;
                pool_ref += b;
            } else {
                let fresh = h.alloc(bytes);
                let reused = bytes.min(pool_ref);
                prop_assert_eq!(fresh, bytes - reused);
                pool_ref -= reused;
                footprint_ref += bytes - reused;
                live_ref += bytes;
                outstanding.push(bytes);
            }
            prop_assert_eq!(h.live(), live_ref);
            prop_assert_eq!(h.footprint(), footprint_ref);
            prop_assert!(h.footprint() >= h.live());
        }
    }

    /// CacheModel agrees with a naive reference LRU.
    #[test]
    fn cache_model_matches_reference_lru(
        touches in proptest::collection::vec((0u64..30, 1u64..300), 1..300)
    ) {
        let capacity = 1000u64;
        let mut cache = CacheModel::new(capacity);
        // Reference: vector of (region, bytes), most recent at the back.
        let mut lru: Vec<(u64, u64)> = Vec::new();
        for (region, bytes) in touches {
            let missed = cache.touch(region, bytes);
            // Reference behaviour.
            let expected = if bytes > capacity {
                lru.retain(|&(r, _)| r != region);
                bytes
            } else if let Some(pos) = lru.iter().position(|&(r, _)| r == region) {
                let (_, old) = lru.remove(pos);
                let grow = bytes.saturating_sub(old);
                lru.push((region, bytes.max(old)));
                grow
            } else {
                lru.push((region, bytes));
                bytes
            };
            // Evict from the reference LRU.
            let mut total: u64 = lru.iter().map(|&(_, b)| b).sum();
            while total > capacity {
                let (_, b) = lru.remove(0);
                total -= b;
            }
            prop_assert_eq!(missed, expected, "region {} bytes {}", region, bytes);
            prop_assert!(cache.resident_bytes() <= capacity);
            prop_assert_eq!(cache.resident_bytes(), total.min(capacity));
        }
    }
}
