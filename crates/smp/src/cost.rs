//! The machine cost model.
//!
//! Parameters are calibrated to the paper's Figure 3 (Solaris 2.5 thread
//! operation timings on a 167 MHz UltraSPARC) plus standard numbers for that
//! machine's memory system. Absolute values only anchor the scale; the
//! reproduction claims *shapes* (relative scheduler behaviour), which are
//! driven by the mechanisms, not the exact constants. Every constant can be
//! overridden, and the `ablate_quota` / sensitivity benches sweep the ones
//! that matter.

use crate::VirtTime;

/// Which stack-allocation path a thread creation took (for stats/costing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackClass {
    /// Reused a cached default-size stack (cheap).
    Cached,
    /// Freshly reserved a stack (expensive; cost scales with size).
    Fresh,
}

/// Parameters of the per-processor cache/locality model.
#[derive(Debug, Clone)]
pub struct CacheParams {
    /// Modelled per-processor cache capacity in bytes (UltraSPARC: 512 KB L2).
    pub capacity_bytes: u64,
    /// Cost per byte brought in on a miss (memory bandwidth model).
    pub miss_ns_per_byte: f64,
    /// Fixed per-miss latency (line fill startup).
    pub miss_latency_ns: u64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            capacity_bytes: 512 * 1024,
            miss_ns_per_byte: 4.0,
            miss_latency_ns: 240,
        }
    }
}

/// Full cost model for the virtual SMP.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Nanoseconds per modelled CPU cycle (167 MHz → 6 ns).
    pub cycle_ns: f64,
    /// `pthread_create` of an unbound thread with a preallocated stack
    /// (paper Fig. 3: 20.5 µs).
    pub thread_create: VirtTime,
    /// Joining a thread that has already exited (cheap, user-level).
    pub join_exited: VirtTime,
    /// One user-level context switch (suspend + dispatch register state).
    pub ctx_switch: VirtTime,
    /// Uncontended lock/unlock or semaphore op without blocking.
    pub sync_op: VirtTime,
    /// Scheduler-queue critical section (enqueue/dequeue under the global
    /// scheduler lock). Contention on this lock is modelled by
    /// [`crate::VirtualLock`].
    pub sched_cs: VirtTime,
    /// Fresh stack reservation for the smallest (8 KB) stack
    /// (paper Fig. 3 note: 200 µs).
    pub stack_fresh_base: VirtTime,
    /// Additional fresh-reservation cost for a 1 MB stack over an 8 KB one
    /// (paper: 260 µs at 1 MB ⇒ 60 µs extra), interpolated linearly.
    pub stack_fresh_per_mb_extra: VirtTime,
    /// Reusing a cached default-size stack.
    pub stack_cached: VirtTime,
    /// Base cost of `malloc` (free-list hit, no kernel involvement).
    pub malloc_base: VirtTime,
    /// Base cost of `free`.
    pub free_base: VirtTime,
    /// First-touch cost per fresh 8 KB page when the heap grows past its
    /// previous high-water mark (sbrk/mmap + soft fault). This is the
    /// dominant penalty behind the paper's Figure 6 kernel time.
    pub page_first_touch: VirtTime,
    /// Page size used by the commit accounting (Solaris/UltraSPARC: 8 KB).
    pub page_bytes: u64,
    /// Committed stack memory attributed to a thread that has started
    /// running, capped by its requested stack size (lazy commit model; see
    /// DESIGN.md). Solaris reserved 1 MB of VA but committed only touched
    /// pages, which is why the paper's 4500-thread runs fit in 115 MB.
    pub stack_touch_bytes: u64,
    /// Cache/locality model parameters.
    pub cache: CacheParams,
}

impl CostModel {
    /// The calibration used throughout the reproduction: 167 MHz UltraSPARC
    /// running Solaris 2.5, per the paper's Figure 3.
    pub fn ultrasparc_167() -> Self {
        CostModel {
            cycle_ns: 6.0,
            thread_create: VirtTime::from_ns(20_500),
            join_exited: VirtTime::from_us(5),
            ctx_switch: VirtTime::from_us(10),
            sync_op: VirtTime::from_ns(2_000),
            sched_cs: VirtTime::from_ns(1_500),
            stack_fresh_base: VirtTime::from_us(200),
            stack_fresh_per_mb_extra: VirtTime::from_us(60),
            stack_cached: VirtTime::from_us(3),
            malloc_base: VirtTime::from_ns(3_000),
            free_base: VirtTime::from_ns(2_000),
            page_first_touch: VirtTime::from_us(25),
            page_bytes: 8 * 1024,
            stack_touch_bytes: 16 * 1024,
            cache: CacheParams::default(),
        }
    }

    /// A free model: every operation costs zero except explicit `charge`d
    /// work. Useful in unit tests that assert scheduling order rather than
    /// timing.
    pub fn zero_overhead() -> Self {
        CostModel {
            cycle_ns: 1.0,
            thread_create: VirtTime::ZERO,
            join_exited: VirtTime::ZERO,
            ctx_switch: VirtTime::ZERO,
            sync_op: VirtTime::ZERO,
            sched_cs: VirtTime::ZERO,
            stack_fresh_base: VirtTime::ZERO,
            stack_fresh_per_mb_extra: VirtTime::ZERO,
            stack_cached: VirtTime::ZERO,
            malloc_base: VirtTime::ZERO,
            free_base: VirtTime::ZERO,
            page_first_touch: VirtTime::ZERO,
            page_bytes: 8 * 1024,
            stack_touch_bytes: 16 * 1024,
            cache: CacheParams {
                capacity_bytes: u64::MAX,
                miss_ns_per_byte: 0.0,
                miss_latency_ns: 0,
            },
        }
    }

    /// Virtual duration of `cycles` cycles of straight-line compute.
    pub fn cycles(&self, cycles: u64) -> VirtTime {
        VirtTime::from_ns((cycles as f64 * self.cycle_ns) as u64)
    }

    /// Cost of a fresh stack reservation of `size` bytes (linear
    /// interpolation of the paper's 200 µs @ 8 KB … 260 µs @ 1 MB).
    pub fn stack_fresh(&self, size: u64) -> VirtTime {
        let extra_frac = (size.saturating_sub(8 * 1024)) as f64 / (1024.0 * 1024.0 - 8.0 * 1024.0);
        let extra_frac = extra_frac.clamp(0.0, 4.0); // allow >1MB, capped
        let extra = (self.stack_fresh_per_mb_extra.as_ns() as f64 * extra_frac) as u64;
        self.stack_fresh_base + VirtTime::from_ns(extra)
    }

    /// Cost of bringing `bytes` of fresh (never-touched) heap into the
    /// committed footprint: one first-touch penalty per new page.
    pub fn fresh_pages(&self, bytes: u64) -> VirtTime {
        let pages = bytes.div_ceil(self.page_bytes);
        VirtTime::from_ns(self.page_first_touch.as_ns() * pages)
    }

    /// Cost of a cache miss pulling `bytes` of a region in.
    pub fn cache_miss(&self, bytes: u64) -> VirtTime {
        VirtTime::from_ns(
            self.cache.miss_latency_ns + (bytes as f64 * self.cache.miss_ns_per_byte) as u64,
        )
    }

    /// Committed bytes accounted for the stack of a thread, given its
    /// requested (reserved) size and whether it has started running.
    pub fn stack_commit(&self, reserved: u64, has_run: bool) -> u64 {
        if has_run {
            reserved.min(self.stack_touch_bytes)
        } else {
            reserved.min(self.page_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_fresh_interpolates() {
        let c = CostModel::ultrasparc_167();
        assert_eq!(c.stack_fresh(8 * 1024), VirtTime::from_us(200));
        let one_mb = c.stack_fresh(1024 * 1024);
        assert!(one_mb >= VirtTime::from_us(259) && one_mb <= VirtTime::from_us(261));
        // Monotone in size.
        assert!(c.stack_fresh(64 * 1024) > c.stack_fresh(8 * 1024));
        assert!(c.stack_fresh(64 * 1024) < one_mb);
    }

    #[test]
    fn fresh_pages_rounds_up() {
        let c = CostModel::ultrasparc_167();
        assert_eq!(c.fresh_pages(1).as_ns(), 25_000);
        assert_eq!(c.fresh_pages(8 * 1024).as_ns(), 25_000);
        assert_eq!(c.fresh_pages(8 * 1024 + 1).as_ns(), 50_000);
        assert_eq!(c.fresh_pages(0).as_ns(), 0);
    }

    #[test]
    fn cycles_use_clock_rate() {
        let c = CostModel::ultrasparc_167();
        assert_eq!(c.cycles(1000).as_ns(), 6_000);
    }

    #[test]
    fn stack_commit_lazy_model() {
        let c = CostModel::ultrasparc_167();
        assert_eq!(c.stack_commit(1024 * 1024, false), 8 * 1024);
        assert_eq!(c.stack_commit(1024 * 1024, true), 16 * 1024);
        assert_eq!(c.stack_commit(8 * 1024, true), 8 * 1024);
        assert_eq!(c.stack_commit(4 * 1024, false), 4 * 1024);
    }
}
