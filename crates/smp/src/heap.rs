//! Committed-memory model: heap footprint tracking and the Solaris-style
//! cache of default-size thread stacks.

/// Tracks committed memory the way the paper measured it: the high-water
/// mark of total heap allocation (the process footprint). Freed memory goes
/// to a free pool that later allocations reuse without paying first-touch
/// costs — the footprint never shrinks, as with a real `malloc` arena.
#[derive(Debug, Clone, Default)]
pub struct HeapModel {
    live: u64,
    free_pool: u64,
    footprint: u64,
    live_hwm: u64,
    allocs: u64,
    frees: u64,
    fresh_bytes: u64,
}

impl HeapModel {
    /// New empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes`; returns the number of *fresh* bytes (bytes that
    /// grow the footprint and must pay first-touch costs).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        self.allocs += 1;
        let reused = bytes.min(self.free_pool);
        self.free_pool -= reused;
        let fresh = bytes - reused;
        self.fresh_bytes += fresh;
        self.footprint += fresh;
        self.live += bytes;
        self.live_hwm = self.live_hwm.max(self.live);
        fresh
    }

    /// Frees `bytes`, returning them to the reuse pool.
    ///
    /// Returns the number of bytes by which the free *underflowed* the live
    /// count — `0` for a valid free, positive when more bytes were freed
    /// than were ever live (a double free or a free of unallocated memory in
    /// the modelled program). The accounting itself is unchanged either way
    /// (live clamps at zero, the whole request enters the reuse pool), so
    /// footprint metrics stay identical to the old saturating behaviour;
    /// the caller is expected to surface the underflow instead of hiding it.
    #[must_use = "a non-zero return is a double-free in the modelled program"]
    pub fn free(&mut self, bytes: u64) -> u64 {
        self.frees += 1;
        let underflow = bytes.saturating_sub(self.live);
        self.live -= bytes - underflow;
        self.free_pool += bytes;
        underflow
    }

    /// Currently live (non-freed) bytes.
    pub fn live(&self) -> u64 {
        self.live
    }

    /// High-water mark of live bytes.
    pub fn live_hwm(&self) -> u64 {
        self.live_hwm
    }

    /// Total committed footprint (live + reusable pool); never shrinks.
    /// This is "the high water mark of total heap memory allocation"
    /// reported in the paper's figures.
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// (allocs, frees, fresh bytes) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocs, self.frees, self.fresh_bytes)
    }
}

/// Cache of exited threads' stacks, as in the Solaris Pthreads library:
/// "the library caches stacks of the default size for reuse" (paper §4.3).
/// Cached stacks keep their committed bytes live in the [`HeapModel`], which
/// is exactly why a 1 MB default stack size inflates the footprint of
/// programs that churn threads.
#[derive(Debug, Clone)]
pub struct StackPool {
    default_size: u64,
    /// Committed bytes of each cached (exited) default-size stack.
    cached: Vec<u64>,
    cache_hits: u64,
    fresh: u64,
}

impl StackPool {
    /// A pool caching stacks of `default_size` reserved bytes.
    pub fn new(default_size: u64) -> Self {
        StackPool {
            default_size,
            cached: Vec::new(),
            cache_hits: 0,
            fresh: 0,
        }
    }

    /// The default (cacheable) stack size.
    pub fn default_size(&self) -> u64 {
        self.default_size
    }

    /// Tries to acquire a stack of `reserved` bytes. Returns
    /// `Some(committed)` when a cached stack is reused (its committed bytes
    /// stay live), `None` when a fresh reservation is needed.
    pub fn acquire(&mut self, reserved: u64) -> Option<u64> {
        if reserved == self.default_size {
            if let Some(committed) = self.cached.pop() {
                self.cache_hits += 1;
                return Some(committed);
            }
        }
        self.fresh += 1;
        None
    }

    /// Releases an exited thread's stack. Returns `true` when the stack was
    /// cached (committed bytes stay live); `false` when the caller must free
    /// its committed bytes.
    pub fn release(&mut self, reserved: u64, committed: u64) -> bool {
        if reserved == self.default_size {
            self.cached.push(committed);
            true
        } else {
            false
        }
    }

    /// Number of stacks currently cached.
    pub fn cached_count(&self) -> usize {
        self.cached.len()
    }

    /// Committed bytes held by the cache.
    pub fn cached_bytes(&self) -> u64 {
        self.cached.iter().sum()
    }

    /// (cache hits, fresh reservations).
    pub fn counters(&self) -> (u64, u64) {
        (self.cache_hits, self.fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_never_shrinks_and_pool_reuses() {
        let mut h = HeapModel::new();
        assert_eq!(h.alloc(100), 100);
        assert_eq!(h.footprint(), 100);
        assert_eq!(h.free(100), 0);
        assert_eq!(h.live(), 0);
        assert_eq!(h.footprint(), 100);
        // Reuse: no fresh bytes.
        assert_eq!(h.alloc(60), 0);
        assert_eq!(h.footprint(), 100);
        // Partially fresh.
        assert_eq!(h.alloc(80), 40);
        assert_eq!(h.footprint(), 140);
        assert_eq!(h.live(), 140);
    }

    #[test]
    fn live_hwm_tracks_peak() {
        let mut h = HeapModel::new();
        h.alloc(50);
        h.alloc(70);
        assert_eq!(h.free(50), 0);
        h.alloc(10);
        assert_eq!(h.live_hwm(), 120);
        assert_eq!(h.live(), 80);
    }

    #[test]
    fn free_underflow_is_reported_not_hidden() {
        let mut h = HeapModel::new();
        h.alloc(100);
        // Double free: the second free exceeds live by 60 bytes.
        assert_eq!(h.free(80), 0);
        assert_eq!(h.free(80), 60);
        assert_eq!(h.live(), 0);
        // Accounting matches the old saturating behaviour exactly.
        assert_eq!(h.footprint(), 100);
        let (allocs, frees, _) = h.counters();
        assert_eq!((allocs, frees), (1, 2));
    }

    #[test]
    fn stack_pool_caches_only_default_size() {
        let mut p = StackPool::new(1024 * 1024);
        assert!(p.acquire(1024 * 1024).is_none(), "cold cache");
        assert!(p.release(1024 * 1024, 16 * 1024));
        assert_eq!(p.cached_count(), 1);
        assert_eq!(p.cached_bytes(), 16 * 1024);
        assert_eq!(p.acquire(1024 * 1024), Some(16 * 1024));
        assert_eq!(p.cached_count(), 0);
        // Non-default sizes bypass the cache entirely.
        assert!(p.acquire(8 * 1024).is_none());
        assert!(!p.release(8 * 1024, 8 * 1024));
    }
}
