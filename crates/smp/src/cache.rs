//! Per-processor LRU cache/locality model.
//!
//! Applications declare the data regions they are about to work on via the
//! runtime's `touch(region, bytes)` API (one region per logical block — a
//! matrix tile, an octree subtree, a group of image tiles). Each virtual
//! processor keeps an LRU set of resident regions with a byte capacity; a
//! touch of a non-resident region costs a miss proportional to its size.
//! This is what makes thread *placement* matter in the model: schedulers
//! that run neighbouring threads on the same processor (depth-first order)
//! pay fewer misses than ones that scatter them (FIFO), reproducing the
//! locality story of the paper's Figure 11.

use std::collections::HashMap;

/// An LRU cache over `(region id → bytes)` with a total byte capacity.
#[derive(Debug, Clone)]
pub struct CacheModel {
    capacity: u64,
    resident_bytes: u64,
    /// region → (bytes, last-use tick)
    resident: HashMap<u64, (u64, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    missed_bytes: u64,
}

impl CacheModel {
    /// New empty cache with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        CacheModel {
            capacity,
            resident_bytes: 0,
            resident: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            missed_bytes: 0,
        }
    }

    /// Touches `bytes` of `region`. Returns the number of bytes that missed
    /// (0 on a hit). A region larger than the whole cache is counted as a
    /// full miss and is not retained.
    pub fn touch(&mut self, region: u64, bytes: u64) -> u64 {
        self.tick += 1;
        if bytes > self.capacity {
            self.misses += 1;
            self.missed_bytes += bytes;
            return bytes;
        }
        if let Some(entry) = self.resident.get_mut(&region) {
            entry.1 = self.tick;
            // Region may have grown since last touch; charge the delta.
            if bytes > entry.0 {
                let delta = bytes - entry.0;
                entry.0 = bytes;
                self.resident_bytes += delta;
                self.misses += 1;
                self.missed_bytes += delta;
                self.evict_to_fit();
                return delta;
            }
            self.hits += 1;
            0
        } else {
            self.resident.insert(region, (bytes, self.tick));
            self.resident_bytes += bytes;
            self.misses += 1;
            self.missed_bytes += bytes;
            self.evict_to_fit();
            bytes
        }
    }

    fn evict_to_fit(&mut self) {
        while self.resident_bytes > self.capacity {
            // O(n) LRU scan: resident sets are small (tens of regions) and
            // this is a model, not a hot path.
            let (&victim, &(bytes, _)) = self
                .resident
                .iter()
                .min_by_key(|(_, &(_, last))| last)
                .expect("resident_bytes > 0 implies non-empty");
            self.resident.remove(&victim);
            self.resident_bytes -= bytes;
        }
    }

    /// Invalidates everything (e.g. between benchmark phases).
    pub fn flush(&mut self) {
        self.resident.clear();
        self.resident_bytes = 0;
    }

    /// (hits, misses, missed bytes) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.missed_bytes)
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut c = CacheModel::new(1000);
        assert_eq!(c.touch(1, 100), 100);
        assert_eq!(c.touch(1, 100), 0);
        let (h, m, mb) = c.counters();
        assert_eq!((h, m, mb), (1, 1, 100));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CacheModel::new(300);
        c.touch(1, 100);
        c.touch(2, 100);
        c.touch(3, 100);
        c.touch(1, 100); // refresh 1 → 2 is now LRU
        c.touch(4, 100); // evicts 2
        assert_eq!(c.touch(1, 100), 0, "1 still resident");
        assert_eq!(c.touch(3, 100), 0, "3 still resident");
        assert_eq!(c.touch(2, 100), 100, "2 was evicted");
    }

    #[test]
    fn oversized_region_full_miss_every_time() {
        let mut c = CacheModel::new(100);
        assert_eq!(c.touch(9, 500), 500);
        assert_eq!(c.touch(9, 500), 500);
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn growing_region_charges_delta() {
        let mut c = CacheModel::new(1000);
        assert_eq!(c.touch(1, 100), 100);
        assert_eq!(c.touch(1, 150), 50);
        assert_eq!(c.touch(1, 120), 0);
        assert_eq!(c.resident_bytes(), 150);
    }

    #[test]
    fn capacity_invariant_under_random_workload() {
        let mut c = CacheModel::new(512);
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let region = (x >> 32) % 40;
            let bytes = (x & 0xFF) + 1;
            c.touch(region, bytes);
            assert!(c.resident_bytes() <= 512);
        }
    }
}
