//! Seeded deterministic perturbation source for schedule exploration.
//!
//! The simulator's engine always dispatches the minimum-clock processor, so
//! the interleaving of virtually-concurrent execution segments is a pure
//! function of the virtual timeline. That makes the canonical schedule
//! deterministic — and also means the sync layer only ever sees one
//! interleaving per `(policy, workload)` pair. [`Prng`] is the entropy
//! source behind the perturbation mode ([`crate::Machine`]'s sync-boundary
//! jitter, the runtime's wake-order shuffles and same-timestamp
//! tie-breaks): a tiny SplitMix64 generator whose whole state is its seed,
//! so any schedule it produces replays bit-exactly from the `(policy,
//! seed)` pair alone.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// Not statistically fancy, but fast, seedable from a single `u64`, and —
/// the property the schedule-perturbation checker depends on — fully
/// replayable: two `Prng`s built from the same seed produce identical
/// streams forever.
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Creates a generator from `seed`. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so nearby seeds (0, 1, 2, ...) diverge immediately.
        let mut p = Prng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        p.next_u64();
        p
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Multiply-shift reduction; bias is irrelevant for perturbation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// True with probability `num / den` (saturating at 1).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den.max(1)) < num
    }

    /// Fisher–Yates shuffle of `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(0);
        let mut b = Prng::new(1);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut p = Prng::new(7);
        for n in [1u64, 2, 3, 10, 1000] {
            for _ in 0..50 {
                assert!(p.below(n) < n);
            }
        }
        assert_eq!(p.below(0), 0);
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut p = Prng::new(99);
        let mut v: Vec<u32> = (0..16).collect();
        p.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<u32>>());
        // Replays identically.
        let mut p2 = Prng::new(99);
        let mut v2: Vec<u32> = (0..16).collect();
        p2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn chance_extremes() {
        let mut p = Prng::new(3);
        assert!((0..32).all(|_| p.chance(1, 1)));
        assert!((0..32).all(|_| !p.chance(0, 4)));
    }
}
