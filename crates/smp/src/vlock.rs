//! Virtual-time lock contention model.

use std::collections::BTreeMap;

use crate::VirtTime;

/// Models a lock on the virtual timeline (used for the global scheduler
/// lock — the serialization point the paper's §6 discusses — and the
/// kernel VM lock of the memory model).
///
/// The lock records its busy intervals. An acquirer arriving at virtual
/// time `t` for a critical section of length `hold` is granted the first
/// gap of length `hold` at or after `t`; its contention wait is the gap
/// start minus `t`. This charges waiting only for *true overlaps* in
/// virtual time. (A simpler "free-at" register would force acquirers to
/// queue behind holds that are in their virtual future, grossly inflating
/// contention, because the engine simulates whole execution segments
/// atomically.)
///
/// Note the cost-model nature of this object: grants are made in engine
/// (real) order, so an acquirer may be granted a gap that virtually
/// precedes an already-recorded hold. The semantic effects of the guarded
/// operations are applied in engine order either way; the lock only prices
/// the serialization.
#[derive(Debug, Clone, Default)]
pub struct VirtualLock {
    /// Busy intervals `start → end`, non-overlapping.
    busy: BTreeMap<u64, u64>,
    acquisitions: u64,
    total_wait: VirtTime,
    total_held: VirtTime,
}

impl VirtualLock {
    /// New, immediately-free lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires at `now`, holding for `hold`. Returns `(wait, release)`:
    /// `wait` is contention delay, `release` the end of the critical
    /// section (the caller's new clock).
    pub fn acquire(&mut self, now: VirtTime, hold: VirtTime) -> (VirtTime, VirtTime) {
        self.acquisitions += 1;
        self.total_held += hold;
        let hold_ns = hold.as_ns();
        let mut t = now.as_ns();
        if hold_ns > 0 {
            // Start from the interval covering (or preceding) `t`.
            let mut iter_start = t;
            if let Some((&s, &e)) = self.busy.range(..=t).next_back() {
                if e > t {
                    t = e; // currently held at `t`
                }
                let _ = s;
                iter_start = t;
            }
            // Slide over subsequent intervals until a gap fits.
            loop {
                let mut moved = false;
                for (&s, &e) in self.busy.range(iter_start..) {
                    if s >= t + hold_ns {
                        break; // gap [t, t+hold) is free
                    }
                    if e > t {
                        t = e;
                        iter_start = t;
                        moved = true;
                        break;
                    }
                }
                if !moved {
                    break;
                }
            }
            self.busy.insert(t, t + hold_ns);
        }
        let wait = VirtTime::from_ns(t.saturating_sub(now.as_ns()));
        self.total_wait += wait;
        (wait, VirtTime::from_ns(t + hold_ns))
    }

    /// Perturbed acquire: like [`VirtualLock::acquire`], but the acquirer
    /// loses `defer` nanoseconds of the race before contending — modelling a
    /// schedule in which another processor reached the lock word first.
    /// The returned `wait` still measures from the *original* `now`, so the
    /// deferral is charged as contention, and the busy-interval bookkeeping
    /// stays identical to an acquirer that genuinely arrived late.
    pub fn acquire_deferred(
        &mut self,
        now: VirtTime,
        hold: VirtTime,
        defer: VirtTime,
    ) -> (VirtTime, VirtTime) {
        let (_, release) = self.acquire(now + defer, hold);
        // `acquire` accumulated the post-defer wait; the defer itself is
        // also contention from the true arrival's point of view.
        self.total_wait += defer;
        (release.since(now + hold), release)
    }

    /// Discards busy intervals entirely before `watermark` (they can no
    /// longer affect any acquirer). Call occasionally with the minimum
    /// processor clock to bound memory.
    pub fn prune(&mut self, watermark: VirtTime) {
        let w = watermark.as_ns();
        self.busy.retain(|_, &mut e| e >= w);
    }

    /// When the lock next becomes free after all recorded holds.
    pub fn free_at(&self) -> VirtTime {
        VirtTime::from_ns(self.busy.values().copied().max().unwrap_or(0))
    }

    /// (acquisitions, total contention wait, total hold time).
    pub fn counters(&self) -> (u64, VirtTime, VirtTime) {
        (self.acquisitions, self.total_wait, self.total_held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: u64) -> VirtTime {
        VirtTime::from_ns(v)
    }

    #[test]
    fn uncontended_acquire_has_no_wait() {
        let mut l = VirtualLock::new();
        let (wait, rel) = l.acquire(ns(100), ns(10));
        assert_eq!(wait, ns(0));
        assert_eq!(rel, ns(110));
    }

    #[test]
    fn overlapping_acquire_waits() {
        let mut l = VirtualLock::new();
        l.acquire(ns(100), ns(50)); // busy [100,150)
        let (wait, rel) = l.acquire(ns(120), ns(50));
        assert_eq!(wait, ns(30));
        assert_eq!(rel, ns(200));
        let (acq, total_wait, held) = l.counters();
        assert_eq!(acq, 2);
        assert_eq!(total_wait, ns(30));
        assert_eq!(held, ns(100));
    }

    #[test]
    fn earlier_acquirer_uses_gap_before_future_hold() {
        let mut l = VirtualLock::new();
        l.acquire(ns(1000), ns(50)); // busy [1000,1050)
        // A virtually-earlier acquirer fits entirely before that hold.
        let (wait, rel) = l.acquire(ns(100), ns(50));
        assert_eq!(wait, ns(0));
        assert_eq!(rel, ns(150));
    }

    #[test]
    fn gap_too_small_skips_past() {
        let mut l = VirtualLock::new();
        l.acquire(ns(100), ns(50)); // [100,150)
        l.acquire(ns(160), ns(50)); // [160,210)
        // Needs 50ns at t=120: [150,160) gap too small → granted at 210.
        let (wait, rel) = l.acquire(ns(120), ns(50));
        assert_eq!(wait, ns(90));
        assert_eq!(rel, ns(260));
    }

    #[test]
    fn consecutive_same_time_acquires_serialize() {
        let mut l = VirtualLock::new();
        let mut release = ns(0);
        for i in 0..10 {
            let (wait, rel) = l.acquire(ns(0), ns(7));
            assert_eq!(wait.as_ns(), 7 * i);
            release = rel;
        }
        assert_eq!(release, ns(70));
    }

    #[test]
    fn zero_hold_never_waits() {
        let mut l = VirtualLock::new();
        l.acquire(ns(0), ns(100));
        let (wait, rel) = l.acquire(ns(50), ns(0));
        assert_eq!(wait, ns(0));
        assert_eq!(rel, ns(50));
    }

    #[test]
    fn deferred_acquire_charges_the_lost_race() {
        let mut l = VirtualLock::new();
        // Uncontended but deferred by 20ns: wait is exactly the deferral.
        let (wait, rel) = l.acquire_deferred(ns(100), ns(10), ns(20));
        assert_eq!(wait, ns(20));
        assert_eq!(rel, ns(130));
        // Deferred into an existing hold: waits the deferral + the overlap.
        let (wait, rel) = l.acquire_deferred(ns(115), ns(10), ns(5));
        assert_eq!(wait, ns(15));
        assert_eq!(rel, ns(140));
        let (_, total_wait, _) = l.counters();
        assert_eq!(total_wait, ns(35));
    }

    #[test]
    fn deferred_acquire_with_zero_defer_matches_plain() {
        let mut a = VirtualLock::new();
        let mut b = VirtualLock::new();
        a.acquire(ns(50), ns(30));
        b.acquire(ns(50), ns(30));
        assert_eq!(
            a.acquire(ns(60), ns(10)),
            b.acquire_deferred(ns(60), ns(10), ns(0))
        );
    }

    #[test]
    fn prune_discards_stale_intervals() {
        let mut l = VirtualLock::new();
        for i in 0..100u64 {
            l.acquire(ns(i * 10), ns(5));
        }
        l.prune(ns(500));
        // Still correct for future acquires.
        let (wait, _) = l.acquire(ns(2000), ns(5));
        assert_eq!(wait, ns(0));
    }
}
