//! Deterministic virtual-time SMP machine model.
//!
//! The SC'98 paper measured its schedulers on an 8-processor Sun Enterprise
//! 5000 (167 MHz UltraSPARC, Solaris 2.5). This reproduction executes the
//! *real* benchmark code on user-level fibers, but advances **virtual time**
//! from an explicit cost model instead of reading a wall clock, because the
//! reproduction host has a single core (see DESIGN.md, "substitution"). The
//! crate provides the building blocks the threads runtime composes:
//!
//! * [`VirtTime`] — virtual nanoseconds.
//! * [`CostModel`] — thread-operation, memory-system and locality costs,
//!   calibrated to the paper's Figure 3 overhead table.
//! * [`CacheModel`] — a per-processor LRU model over app-declared regions,
//!   driving the thread-granularity/locality experiment (paper Figure 11).
//! * [`HeapModel`] / stack accounting — committed-memory tracking with a
//!   free-pool and a Solaris-style default-size stack cache, driving the
//!   memory high-water figures (paper Figures 5b, 7b, 9).
//! * [`VirtualLock`] — contention model for the global scheduler lock.
//! * [`Machine`] — P processors with independent clocks plus the above.
//!
//! Everything is deterministic: identical inputs produce identical virtual
//! timelines, which is what makes the reproduction's figures reproducible
//! and property-testable.

#![warn(missing_docs)]

mod cache;
mod cost;
mod heap;
mod machine;
mod perturb;
mod record;
mod stats;
mod time;
mod vlock;

pub use cache::CacheModel;
pub use cost::{CacheParams, CostModel, StackClass};
pub use heap::{HeapModel, StackPool};
pub use machine::{Machine, ProcId};
pub use perturb::Prng;
pub use record::{MachineRecording, MemEvent, MemEventKind};
pub use stats::{Bucket, HostPhaseStats, MemStats, PhaseStat, ProcStats, RunStats, TimeBreakdown};
pub use time::VirtTime;
pub use vlock::VirtualLock;
