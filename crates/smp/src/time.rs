//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) on the virtual timeline, in nanoseconds.
///
/// The model uses 64-bit nanoseconds: ~584 years of virtual time, far beyond
/// any experiment. Arithmetic is saturating-free (plain `+`) because
/// overflow would indicate a model bug, which debug builds catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct VirtTime(pub u64);

impl VirtTime {
    /// Time zero.
    pub const ZERO: VirtTime = VirtTime(0);

    /// Constructs from whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        VirtTime(ns)
    }

    /// Constructs from whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        VirtTime(us * 1_000)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        VirtTime(ms * 1_000_000)
    }

    /// Nanoseconds since time zero.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The later of two times.
    pub fn max(self, other: VirtTime) -> VirtTime {
        VirtTime(self.0.max(other.0))
    }

    /// Span from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: VirtTime) -> VirtTime {
        VirtTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for VirtTime {
    type Output = VirtTime;
    fn add(self, rhs: VirtTime) -> VirtTime {
        VirtTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtTime {
    fn add_assign(&mut self, rhs: VirtTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtTime {
    type Output = VirtTime;
    fn sub(self, rhs: VirtTime) -> VirtTime {
        VirtTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for VirtTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(VirtTime::from_us(20).as_ns(), 20_000);
        assert_eq!(VirtTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(VirtTime::from_ns(1500).to_string(), "1.500us");
        assert_eq!(VirtTime::from_ms(1500).to_string(), "1.500s");
    }

    #[test]
    fn since_is_saturating() {
        let a = VirtTime::from_ns(10);
        let b = VirtTime::from_ns(30);
        assert_eq!(b.since(a).as_ns(), 20);
        assert_eq!(a.since(b).as_ns(), 0);
    }
}
