//! Execution statistics: per-processor time breakdowns and memory metrics.

use crate::VirtTime;

/// Where a processor's virtual time went. This is the data behind the
/// reproduction of the paper's Figure 6 (execution time breakdown).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct TimeBreakdown {
    /// Useful application work (explicitly charged cycles).
    pub compute: VirtTime,
    /// Memory-system time: malloc/free base costs, first-touch page costs,
    /// stack reservation costs. Maps to the paper's "system calls related to
    /// memory allocation".
    pub memsys: VirtTime,
    /// Thread operations: create, join, context switches.
    pub threadop: VirtTime,
    /// Waiting for the scheduler lock (contention).
    pub sched_wait: VirtTime,
    /// Inside scheduler critical sections.
    pub sched_cs: VirtTime,
    /// Cache-miss stalls from the locality model.
    pub cache_miss: VirtTime,
    /// Synchronization operations (mutex/semaphore/condvar).
    pub sync: VirtTime,
    /// Idle: no ready thread available.
    pub idle: VirtTime,
}

impl TimeBreakdown {
    /// Total accounted time.
    pub fn total(&self) -> VirtTime {
        self.compute
            + self.memsys
            + self.threadop
            + self.sched_wait
            + self.sched_cs
            + self.cache_miss
            + self.sync
            + self.idle
    }

    /// Busy (non-idle) time.
    pub fn busy(&self) -> VirtTime {
        self.total() - self.idle
    }

    /// Element-wise sum, for aggregating processors.
    pub fn merge(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            compute: self.compute + other.compute,
            memsys: self.memsys + other.memsys,
            threadop: self.threadop + other.threadop,
            sched_wait: self.sched_wait + other.sched_wait,
            sched_cs: self.sched_cs + other.sched_cs,
            cache_miss: self.cache_miss + other.cache_miss,
            sync: self.sync + other.sync,
            idle: self.idle + other.idle,
        }
    }
}

/// Accounting bucket selector for [`TimeBreakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucket {
    /// Application compute.
    Compute,
    /// Memory system (alloc/free/pages/stacks).
    MemSys,
    /// Thread operations.
    ThreadOp,
    /// Scheduler lock contention wait.
    SchedWait,
    /// Scheduler critical section.
    SchedCs,
    /// Cache miss stall.
    CacheMiss,
    /// Synchronization primitive operation.
    Sync,
    /// Idle.
    Idle,
}

impl TimeBreakdown {
    /// Adds `dur` to the selected bucket.
    pub fn add(&mut self, bucket: Bucket, dur: VirtTime) {
        let slot = match bucket {
            Bucket::Compute => &mut self.compute,
            Bucket::MemSys => &mut self.memsys,
            Bucket::ThreadOp => &mut self.threadop,
            Bucket::SchedWait => &mut self.sched_wait,
            Bucket::SchedCs => &mut self.sched_cs,
            Bucket::CacheMiss => &mut self.cache_miss,
            Bucket::Sync => &mut self.sync,
            Bucket::Idle => &mut self.idle,
        };
        *slot += dur;
    }
}

/// Per-processor statistics.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ProcStats {
    /// Time breakdown for this processor.
    pub breakdown: TimeBreakdown,
    /// Threads dispatched onto this processor.
    pub dispatches: u64,
}

/// Memory metrics for a run (the paper's space figures).
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct MemStats {
    /// High-water committed footprint in bytes (heap data + stacks), the
    /// quantity plotted in Figures 5b/7b/9.
    pub footprint_hwm: u64,
    /// High-water of *live* bytes.
    pub live_hwm: u64,
    /// Live bytes at end of run.
    pub live_end: u64,
    /// Peak simultaneously-active (created, not yet exited) threads —
    /// the "Threads" column of Figure 8.
    pub live_threads_hwm: u64,
    /// Total threads created over the run.
    pub threads_created: u64,
    /// Dummy (no-op) threads inserted by the space-efficient allocator hook.
    pub dummy_threads: u64,
    /// malloc calls.
    pub allocs: u64,
    /// free calls.
    pub frees: u64,
    /// Bytes that required fresh page commitment.
    pub fresh_bytes: u64,
    /// Stack-cache hits.
    pub stack_cache_hits: u64,
    /// Fresh stack reservations.
    pub stack_fresh: u64,
    /// Cache-model hits across processors.
    pub cache_hits: u64,
    /// Cache-model misses across processors.
    pub cache_misses: u64,
    /// Frees that underflowed the live byte count (double frees in the
    /// modelled program). Zero in a correct run.
    pub free_underflows: u64,
    /// Footprint growths observed above the armed space bound
    /// (`Machine::arm_space_bound`); zero when unarmed or within bound.
    pub bound_violations: u64,
    /// Host (real) fiber-stack pool hits — spawns served a recycled stack.
    /// Filled in by the threads runtime; the virtual machine itself only
    /// models the Solaris default-size cache (`stack_cache_hits`).
    pub host_stack_hits: u64,
    /// Host fiber-stack pool misses (fresh host allocations).
    pub host_stack_misses: u64,
    /// High-water mark of bytes cached in the host fiber-stack pool. These
    /// bytes are part of the process footprint while cached.
    pub host_stack_cached_hwm: u64,
}

/// One engine phase's monotonic counter and accumulated *host* (real)
/// nanoseconds, as sampled by the host-phase profiler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct PhaseStat {
    /// Times the phase ran.
    pub count: u64,
    /// Total host nanoseconds spent in the phase.
    pub ns: u64,
}

impl PhaseStat {
    /// Closes one timed phase entry opened at `start`.
    pub fn record(&mut self, start: std::time::Instant) {
        self.count += 1;
        self.ns += start.elapsed().as_nanos() as u64;
    }

    /// Mean host nanoseconds per occurrence (`0.0` when the phase never ran).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.ns as f64 / self.count as f64
        }
    }
}

/// Host-side phase profile of the discrete-event engine: where the *real*
/// (wall-clock) time of the single driving host thread goes, phase by
/// phase. All zeros unless profiling was enabled for the run (see
/// `Config::with_host_profile` in the threads runtime) — the hooks cost one
/// `Option` discriminant test each when off.
///
/// Phases can nest (e.g. `sched_lock` charges clocks internally, so its
/// window contains `charge` windows): the per-phase totals are honest
/// wall-time of each instrumented window, not a disjoint partition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct HostPhaseStats {
    /// Whether the profiler was armed for this run.
    pub enabled: bool,
    /// Deadline event-heap pushes ([`crate::Machine::arm_deadline`]).
    pub heap_push: PhaseStat,
    /// Deadline event-heap pops ([`crate::Machine::pop_deadline`]).
    pub heap_pop: PhaseStat,
    /// Clock charge points ([`crate::Machine::charge`] — every virtual-time
    /// advance batched into a breakdown bucket).
    pub charge: PhaseStat,
    /// Scheduler-lock acquisitions, wait/CS accounting included
    /// ([`crate::Machine::sched_lock`] hold, entry to release).
    pub sched_lock: PhaseStat,
    /// Ready-queue pops: the engine asking its policy for the next thread.
    /// Filled in by the threads runtime.
    pub sched_pop: PhaseStat,
    /// Dispatch prologues (context-switch bookkeeping between a successful
    /// pop and the fiber resuming). Filled in by the threads runtime.
    pub dispatch: PhaseStat,
    /// Flight-recorder event and span allocations. Filled in by the threads
    /// runtime.
    pub trace_alloc: PhaseStat,
}

impl HostPhaseStats {
    /// Folds another profile into this one (used to merge the machine-side
    /// and runtime-side halves of the engine profile).
    pub fn absorb(&mut self, other: &HostPhaseStats) {
        self.enabled |= other.enabled;
        for (a, b) in [
            (&mut self.heap_push, &other.heap_push),
            (&mut self.heap_pop, &other.heap_pop),
            (&mut self.charge, &other.charge),
            (&mut self.sched_lock, &other.sched_lock),
            (&mut self.sched_pop, &other.sched_pop),
            (&mut self.dispatch, &other.dispatch),
            (&mut self.trace_alloc, &other.trace_alloc),
        ] {
            a.count += b.count;
            a.ns += b.ns;
        }
    }

    /// Named view of every phase, in display order.
    pub fn phases(&self) -> [(&'static str, PhaseStat); 7] {
        [
            ("heap_push", self.heap_push),
            ("heap_pop", self.heap_pop),
            ("charge", self.charge),
            ("sched_lock", self.sched_lock),
            ("sched_pop", self.sched_pop),
            ("dispatch", self.dispatch),
            ("trace_alloc", self.trace_alloc),
        ]
    }

    /// Total instrumented host nanoseconds across all phases (windows can
    /// nest, so this can exceed the disjoint wall time of the engine loop).
    pub fn total_ns(&self) -> u64 {
        self.phases().iter().map(|(_, p)| p.ns).sum()
    }
}

/// Complete result of one virtual-SMP run.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct RunStats {
    /// Virtual makespan: the maximum processor clock at termination.
    pub makespan: VirtTime,
    /// Number of virtual processors.
    pub processors: usize,
    /// Per-processor stats.
    pub procs: Vec<ProcStats>,
    /// Memory metrics.
    pub mem: MemStats,
    /// Scheduler lock: (acquisitions, total wait, total held).
    pub sched_lock_acquisitions: u64,
    /// Total time all processors spent waiting on the scheduler lock.
    pub sched_lock_wait: VirtTime,
    /// Host-side engine phase profile (all zeros unless armed).
    pub host_phase: HostPhaseStats,
}

impl RunStats {
    /// Aggregated breakdown across processors.
    pub fn total_breakdown(&self) -> TimeBreakdown {
        self.procs
            .iter()
            .fold(TimeBreakdown::default(), |acc, p| acc.merge(&p.breakdown))
    }

    /// Speedup relative to a serial makespan.
    pub fn speedup_vs(&self, serial: VirtTime) -> f64 {
        serial.as_ns() as f64 / self.makespan.as_ns().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_and_merge() {
        let mut a = TimeBreakdown::default();
        a.add(Bucket::Compute, VirtTime::from_ns(10));
        a.add(Bucket::Idle, VirtTime::from_ns(5));
        let mut b = TimeBreakdown::default();
        b.add(Bucket::Compute, VirtTime::from_ns(7));
        b.add(Bucket::MemSys, VirtTime::from_ns(3));
        let m = a.merge(&b);
        assert_eq!(m.compute, VirtTime::from_ns(17));
        assert_eq!(m.total(), VirtTime::from_ns(25));
        assert_eq!(m.busy(), VirtTime::from_ns(20));
    }

    #[test]
    fn speedup_math() {
        let stats = RunStats {
            makespan: VirtTime::from_ms(10),
            ..Default::default()
        };
        assert!((stats.speedup_vs(VirtTime::from_ms(80)) - 8.0).abs() < 1e-12);
    }
}
